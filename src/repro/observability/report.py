"""Render run manifests as human-readable timing/accuracy reports.

Backs ``sieve-repro report``: one manifest renders as a per-stage timing
table (sorted by self time, the honest "where did the wall clock go"
ordering) plus per-workload accuracy rows and cache statistics; two
manifests render as a side-by-side diff with every regression
:func:`repro.observability.manifest.diff_manifests` found.
"""

from __future__ import annotations

from repro.evaluation.reporting import format_table, percent
from repro.observability.manifest import Regression, RunManifest


def _seconds(value: float) -> str:
    return f"{value:.4f}s" if value < 10 else f"{value:.2f}s"


def render_manifest(manifest: RunManifest) -> str:
    """One manifest as header lines + stage and workload tables."""
    lines = [
        f"command          : {manifest.command}",
        f"created          : {manifest.created or '-'}",
        f"package          : {manifest.package_version} "
        f"({manifest.source_fingerprint[:12] or '-'})",
        f"total wall       : {_seconds(manifest.total_wall_s)} "
        f"(cpu {_seconds(manifest.total_cpu_s)})",
        f"instrumented self: {_seconds(manifest.stage_self_total())}",
    ]
    if manifest.cache is not None:
        cache = manifest.cache
        lines.append(
            f"engine           : jobs={cache.get('jobs', 1)}, cache "
            f"{cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses / "
            f"{cache.get('writes', 0)} writes / {cache.get('invalid', 0)} invalid"
        )
    for event in manifest.events:
        fields = ", ".join(f"{k}={v}" for k, v in event.items() if k != "kind")
        lines.append(f"event            : {event.get('kind')} ({fields})")

    if manifest.stages:
        stages = sorted(manifest.stages, key=lambda s: s.self_s, reverse=True)
        total = manifest.total_wall_s or manifest.stage_self_total() or 1.0
        lines.append("")
        lines.append(
            format_table(
                ["stage", "calls", "wall", "self", "cpu", "share", "errors"],
                [
                    (
                        stage.name,
                        stage.count,
                        _seconds(stage.wall_s),
                        _seconds(stage.self_s),
                        _seconds(stage.cpu_s),
                        percent(stage.self_s / total),
                        stage.errors or "-",
                    )
                    for stage in stages
                ],
            )
        )

    if manifest.workloads:
        keys = [k for k in manifest.workloads[0] if k != "workload"]
        lines.append("")
        lines.append(
            format_table(
                ["workload"] + keys,
                [
                    [row.get("workload")] + [_format_value(k, row.get(k)) for k in keys]
                    for row in manifest.workloads
                ],
            )
        )

    if manifest.aggregates:
        lines.append("")
        for key in sorted(manifest.aggregates):
            lines.append(f"{key}: {manifest.aggregates[key]:.6g}")
    return "\n".join(lines)


def _format_value(key: str, value: object) -> object:
    if isinstance(value, float) and (key.endswith("_error") or key.endswith("_cov")):
        return percent(value)
    return value


def render_diff(
    baseline: RunManifest,
    current: RunManifest,
    regressions: list[Regression],
) -> str:
    """Two manifests side by side, regressions flagged and listed."""
    flagged = {r.name for r in regressions if r.kind in ("stage-wall", "stage-missing")}
    current_stages = {stage.name: stage for stage in current.stages}
    rows = []
    for stage in sorted(baseline.stages, key=lambda s: s.wall_s, reverse=True):
        counterpart = current_stages.pop(stage.name, None)
        ratio = (
            f"{counterpart.wall_s / stage.wall_s:.2f}x"
            if counterpart is not None and stage.wall_s > 0
            else "-"
        )
        rows.append(
            (
                stage.name,
                _seconds(stage.wall_s),
                _seconds(counterpart.wall_s) if counterpart else "absent",
                ratio,
                "REGRESSED" if stage.name in flagged else "",
            )
        )
    for name, stage in sorted(current_stages.items()):  # new stages
        rows.append((name, "absent", _seconds(stage.wall_s), "-", "new"))

    lines = [
        f"baseline : {baseline.command} ({baseline.created or 'uncreated'})",
        f"current  : {current.command} ({current.created or 'uncreated'})",
        f"total    : {_seconds(baseline.total_wall_s)} -> "
        f"{_seconds(current.total_wall_s)}",
        "",
        format_table(["stage", "baseline", "current", "ratio", "flag"], rows),
        "",
    ]
    if regressions:
        lines.append(f"{len(regressions)} regression(s):")
        lines.extend(f"  {regression}" for regression in regressions)
    else:
        lines.append("no regressions.")
    return "\n".join(lines)
