"""Render run manifests as human-readable timing/accuracy reports.

Backs ``sieve-repro report``: one manifest renders as a per-stage timing
table (sorted by self time, the honest "where did the wall clock go"
ordering) plus per-workload accuracy rows and cache statistics; two
manifests render as a side-by-side diff with every regression
:func:`repro.observability.manifest.diff_manifests` found.
"""

from __future__ import annotations

from repro.evaluation.reporting import format_table, percent
from repro.observability.manifest import Regression, RunManifest


def _seconds(value: float) -> str:
    return f"{value:.4f}s" if value < 10 else f"{value:.2f}s"


def render_manifest(manifest: RunManifest) -> str:
    """One manifest as header lines + stage and workload tables."""
    lines = [
        f"command          : {manifest.command}",
        f"created          : {manifest.created or '-'}",
        f"package          : {manifest.package_version} "
        f"({manifest.source_fingerprint[:12] or '-'})",
        f"total wall       : {_seconds(manifest.total_wall_s)} "
        f"(cpu {_seconds(manifest.total_cpu_s)})",
        f"instrumented self: {_seconds(manifest.stage_self_total())}",
    ]
    if manifest.cache is not None:
        cache = manifest.cache
        lines.append(
            f"engine           : jobs={cache.get('jobs', 1)}, cache "
            f"{cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses / "
            f"{cache.get('writes', 0)} writes / {cache.get('invalid', 0)} invalid"
        )
    for event in manifest.events:
        fields = ", ".join(f"{k}={v}" for k, v in event.items() if k != "kind")
        lines.append(f"event            : {event.get('kind')} ({fields})")

    if manifest.stages:
        stages = sorted(manifest.stages, key=lambda s: s.self_s, reverse=True)
        total = manifest.total_wall_s or manifest.stage_self_total() or 1.0
        lines.append("")
        lines.append(
            format_table(
                ["stage", "calls", "wall", "self", "cpu", "share", "errors"],
                [
                    (
                        stage.name,
                        stage.count,
                        _seconds(stage.wall_s),
                        _seconds(stage.self_s),
                        _seconds(stage.cpu_s),
                        percent(stage.self_s / total),
                        stage.errors or "-",
                    )
                    for stage in stages
                ],
            )
        )

    if manifest.workloads:
        keys = [k for k in manifest.workloads[0] if k != "workload"]
        lines.append("")
        lines.append(
            format_table(
                ["workload"] + keys,
                [
                    [row.get("workload")] + [_format_value(k, row.get(k)) for k in keys]
                    for row in manifest.workloads
                ],
            )
        )

    if manifest.aggregates:
        lines.append("")
        for key in sorted(manifest.aggregates):
            lines.append(f"{key}: {manifest.aggregates[key]:.6g}")

    if manifest.attribution:
        lines.append("")
        lines.append(render_attribution(manifest.attribution))
    return "\n".join(lines)


def _format_value(key: str, value: object) -> object:
    if isinstance(value, float) and (key.endswith("_error") or key.endswith("_cov")):
        return percent(value)
    return value


def _signed_percent(value: float) -> str:
    return f"{value * 100.0:+.3f}%"


def render_attribution(entries, top: int = 8) -> str:
    """Per-workload error attributions as per-kernel/per-stratum tables.

    ``entries`` are attribution dicts (manifest form or
    :meth:`~repro.observability.attribution.ErrorAttribution.to_dict`).
    Rows are ranked by absolute contribution; ``top`` bounds each table.
    """
    lines = []
    for entry in entries:
        if lines:
            lines.append("")
        lines.append(
            f"attribution {entry['workload']} · {entry['method']}: "
            f"signed error {_signed_percent(entry['signed_error'])}"
        )
        kernels = sorted(
            entry.get("per_kernel", ()),
            key=lambda k: abs(k["contribution"]),
            reverse=True,
        )[:top]
        if kernels:
            lines.append(
                format_table(
                    ["kernel", "predicted", "measured", "contribution", "reps"],
                    [
                        (
                            k["kernel_name"],
                            f"{k['predicted_cycles']:.4g}",
                            f"{k['measured_cycles']:.4g}",
                            _signed_percent(k["contribution"]),
                            k.get("num_representatives", 0),
                        )
                        for k in kernels
                    ],
                )
            )
        groups = sorted(
            entry.get("per_group", ()),
            key=lambda g: abs(g["contribution"]),
            reverse=True,
        )[:top]
        if groups:
            note = "" if entry.get("groups_partition") else " (non-partitioning)"
            lines.append(f"per-group{note}:")
            lines.append(
                format_table(
                    ["group", "kernel", "size", "weight", "contribution"],
                    [
                        (
                            g["group"],
                            g["kernel_name"],
                            g["size"],
                            f"{g['weight']:.4f}",
                            _signed_percent(g["contribution"]),
                        )
                        for g in groups
                    ],
                )
            )
        unhealthy = sorted(
            (h for h in entry.get("health", ()) if h["cov_drift"] > 0),
            key=lambda h: h["cov_drift"],
            reverse=True,
        )[:top]
        if unhealthy:
            lines.append("strata above the CoV target:")
            lines.append(
                format_table(
                    ["stratum", "tier", "size", "cov", "drift", "rep dist", "balance"],
                    [
                        (
                            h["group"],
                            h["tier"],
                            h["size"],
                            f"{h['insn_cov']:.3f}",
                            f"{h['cov_drift']:+.3f}",
                            f"{h['rep_distance']:.3f}",
                            f"{h['split_balance']:.2f}",
                        )
                        for h in unhealthy
                    ],
                )
            )
    return "\n".join(lines)


def render_diff(
    baseline: RunManifest,
    current: RunManifest,
    regressions: list[Regression],
) -> str:
    """Two manifests side by side, regressions flagged and listed.

    Failing rows list as regressions; informational rows (new stages,
    walls with no usable baseline) list separately as notes so they are
    explicit without implying a broken build.
    """
    flagged = {
        r.name
        for r in regressions
        if r.kind in ("stage-wall", "stage-missing") and r.failed
    }
    current_stages = {stage.name: stage for stage in current.stages}
    rows = []
    for stage in sorted(baseline.stages, key=lambda s: s.wall_s, reverse=True):
        counterpart = current_stages.pop(stage.name, None)
        ratio = (
            f"{counterpart.wall_s / stage.wall_s:.2f}x"
            if counterpart is not None and stage.wall_s > 0
            else "-"
        )
        rows.append(
            (
                stage.name,
                _seconds(stage.wall_s),
                _seconds(counterpart.wall_s) if counterpart else "absent",
                ratio,
                "REGRESSED" if stage.name in flagged else "",
            )
        )
    for name, stage in sorted(current_stages.items()):  # new stages
        rows.append((name, "absent", _seconds(stage.wall_s), "-", "new"))

    lines = [
        f"baseline : {baseline.command} ({baseline.created or 'uncreated'})",
        f"current  : {current.command} ({current.created or 'uncreated'})",
        f"total    : {_seconds(baseline.total_wall_s)} -> "
        f"{_seconds(current.total_wall_s)}",
        "",
        format_table(["stage", "baseline", "current", "ratio", "flag"], rows),
        "",
    ]
    failures = [r for r in regressions if r.failed]
    notes = [r for r in regressions if not r.failed]
    if failures:
        lines.append(f"{len(failures)} regression(s):")
        lines.extend(f"  {regression}" for regression in failures)
    else:
        lines.append("no regressions.")
    if notes:
        lines.append(f"{len(notes)} note(s):")
        lines.extend(f"  {note}" for note in notes)

    attribution = _diff_attribution(baseline, current)
    if attribution:
        lines.append("")
        lines.append(attribution)
    return "\n".join(lines)


def _diff_attribution(baseline: RunManifest, current: RunManifest) -> str:
    """Signed-error drift per (workload, method), with the kernel that
    moved the most — empty when neither manifest carries attributions."""
    base = {(e["workload"], e["method"]): e for e in baseline.attribution}
    cur = {(e["workload"], e["method"]): e for e in current.attribution}
    shared = sorted(set(base) & set(cur))
    if not shared:
        return ""
    rows = []
    for key in shared:
        b, c = base[key], cur[key]
        b_kernels = {k["kernel_name"]: k["contribution"] for k in b.get("per_kernel", ())}
        c_kernels = {k["kernel_name"]: k["contribution"] for k in c.get("per_kernel", ())}
        mover, shift = "-", 0.0
        for name in set(b_kernels) | set(c_kernels):
            delta = c_kernels.get(name, 0.0) - b_kernels.get(name, 0.0)
            if abs(delta) > abs(shift):
                mover, shift = name, delta
        rows.append(
            (
                f"{key[0]} · {key[1]}",
                _signed_percent(b["signed_error"]),
                _signed_percent(c["signed_error"]),
                _signed_percent(c["signed_error"] - b["signed_error"]),
                f"{mover} ({_signed_percent(shift)})" if mover != "-" else "-",
            )
        )
    return "attribution drift:\n" + format_table(
        ["workload · method", "baseline", "current", "delta", "largest kernel shift"],
        rows,
    )


def render_findings(payload: dict) -> str:
    """A fuzz campaign's findings file as a summary plus one table.

    ``payload`` is the dict ``repro.fuzz.campaign`` writes to
    ``findings.json`` (schema-checked by ``load_findings``).
    """
    campaign = payload.get("campaign", {})
    summary = payload.get("summary", {})
    lines = [
        f"campaign  : seed={campaign.get('seed')} budget={campaign.get('budget')} "
        f"threshold={campaign.get('threshold')} chaos={campaign.get('chaos') or '-'}",
        f"candidates: {summary.get('scored', 0)} scored, "
        f"{summary.get('ok', 0)} ok, {summary.get('failed', 0)} failed "
        f"({', '.join(f'{k}={v}' for k, v in sorted(summary.get('statuses', {}).items()))})",
        f"findings  : {summary.get('findings', 0)} above threshold",
    ]
    findings = payload.get("findings", ())
    if findings:
        lines.append("")
        lines.append(
            format_table(
                ["idx", "base", "worst", "error", "score", "shrunk", "faults"],
                [
                    (
                        finding["index"],
                        finding["base_label"],
                        finding["score"]["worst_method"],
                        percent(finding["score"]["max_error"]),
                        f"{finding['score']['score']:.4f}",
                        f"{finding['shrunk_score']['score']:.4f}",
                        (
                            ",".join(
                                s["mode"]
                                for s in (finding["shrunk"].get("fault_plan") or {}).get(
                                    "specs", ()
                                )
                            )
                            or "-"
                        ),
                    )
                    for finding in findings
                ],
            )
        )
    return "\n".join(lines)
