"""Telemetry exporters: span/metric streams in standard formats.

Three consumers, three formats:

* **JSONL** — one JSON object per span. :class:`JsonlStreamSink` streams
  records to disk as they finish (register with
  :func:`repro.observability.spans.add_sink`; worker-shipped spans are
  appended at engine merge time, in task input order).
  :func:`export_jsonl` renders a finished record set *canonically*:
  events are keyed by a stable span path and sorted by ``(path, seq)``,
  so two runs with identical structure export byte-identical text. The
  ``structural`` mode drops every nondeterministic field (wall/CPU
  times, ids, process tags) — the ``--jobs 1`` vs ``--jobs 4``
  byte-identity test in ``tests/observability/test_export.py`` builds on
  it.
* **Chrome/Perfetto trace events** — :func:`chrome_trace` lays nested
  spans out as ``ph:"X"`` complete events on per-process tracks (main
  process on one pid, each pool-worker task batch on its own thread of a
  "workers" pid), ready for ``chrome://tracing`` or https://ui.perfetto.dev.
* **Prometheus textfile exposition** — :func:`prometheus_text` renders a
  :class:`~repro.observability.metrics.MetricsRegistry` snapshot
  (counters, gauges, histograms with cumulative ``le`` buckets) for the
  node-exporter textfile collector.

Canonical span paths
--------------------

A span's path is the ``/``-joined chain of ancestor names, each
qualified by its ``workload`` attribute (``engine.task[cactus/gru]/
sieve.predict[cactus/gru]``). Two infra spans are elided so serial and
pooled runs canonicalize identically: ``engine.pool`` /
``engine.serial_fallback`` segments are dropped, and paths are truncated
to start at their last ``engine.task`` segment (a worker's batch is
rootless after the per-task reset; a serial run nests the same spans
under ``engine.run``). ``seq`` numbers repeated paths in record order,
which both the serial and the merged parallel stream produce in task
input order.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import IO, Iterable, Mapping

from repro.observability.spans import SpanRecord

__all__ = [
    "JsonlStreamSink",
    "canonical_events",
    "chrome_trace",
    "export_jsonl",
    "parse_prometheus",
    "prometheus_text",
    "read_jsonl_spans",
    "record_to_dict",
    "records_from_dicts",
    "write_chrome_trace",
    "write_prometheus",
]

#: Engine fan-out plumbing, elided from canonical paths (a serial run
#: has no pool span; a degraded run has an extra fallback span).
_INFRA_SEGMENTS = frozenset({"engine.pool", "engine.serial_fallback"})

#: Fields that differ run-to-run (or between jobs=1 and jobs=N) and are
#: therefore excluded from structural exports.
_TIMED_FIELDS = ("wall_s", "cpu_s", "start_s", "proc", "span_id", "parent_id")


# ------------------------------------------------------------------ JSONL


def record_to_dict(record: SpanRecord) -> dict:
    """One span record as a JSON-ready dict (raw, stream form)."""
    return {
        "name": record.name,
        "wall_s": record.wall_s,
        "cpu_s": record.cpu_s,
        "span_id": record.span_id,
        "parent_id": record.parent_id,
        "depth": record.depth,
        "error": record.error,
        "proc": record.proc,
        "attrs": dict(record.attrs),
        "start_s": record.start_s,
    }


def records_from_dicts(dicts: Iterable[Mapping]) -> tuple[SpanRecord, ...]:
    """Rebuild span records from their dict form (JSONL line, manifest)."""
    return tuple(
        SpanRecord(
            name=data["name"],
            wall_s=float(data.get("wall_s", 0.0)),
            cpu_s=float(data.get("cpu_s", 0.0)),
            span_id=int(data.get("span_id", -1)),
            parent_id=int(data.get("parent_id", -1)),
            depth=int(data.get("depth", 0)),
            error=data.get("error"),
            proc=data.get("proc", "main"),
            attrs=dict(data.get("attrs", {})),
            start_s=float(data.get("start_s", 0.0)),
        )
        for data in dicts
    )


def read_jsonl_spans(path: str | Path) -> tuple[SpanRecord, ...]:
    """Round-trip a JSONL span stream back into records."""
    return records_from_dicts(
        json.loads(line)
        for line in Path(path).read_text().splitlines()
        if line.strip()
    )


class JsonlStreamSink:
    """Live sink appending one JSON line per finished span.

    Lines are written (and flushed) incrementally, so a crashed run
    leaves a readable prefix. The stream is in completion order — use
    :func:`export_jsonl` on the read-back records for the canonical,
    order-independent form.
    """

    def __init__(self, target: str | Path | IO[str]):
        if hasattr(target, "write"):
            self._handle: IO[str] = target  # type: ignore[assignment]
            self._owns = False
        else:
            self._handle = open(target, "w", encoding="utf-8")
            self._owns = True
        self.emitted = 0

    def emit(self, record: SpanRecord) -> None:
        self._handle.write(json.dumps(record_to_dict(record), sort_keys=True) + "\n")
        self._handle.flush()
        self.emitted += 1

    def close(self) -> None:
        if self._owns:
            self._handle.close()

    def __enter__(self) -> "JsonlStreamSink":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def _segment(record: SpanRecord) -> str:
    workload = record.attrs.get("workload")
    return f"{record.name}[{workload}]" if workload is not None else record.name


def canonical_events(
    records: Iterable[SpanRecord], *, structural: bool = False
) -> list[dict]:
    """Spans as path-keyed events, stably sorted by ``(path, seq)``.

    See the module docstring for the path canonicalization rules.
    ``structural=True`` drops timing/id/process fields, leaving only
    run-invariant structure.
    """
    records = tuple(records)
    by_id = {record.span_id: record for record in records}

    def path_of(record: SpanRecord) -> str:
        chain: list[SpanRecord] = []
        cursor: SpanRecord | None = record
        seen: set[int] = set()
        while cursor is not None and cursor.span_id not in seen:
            seen.add(cursor.span_id)
            chain.append(cursor)
            cursor = by_id.get(cursor.parent_id)
        chain.reverse()  # root .. leaf
        names = [r.name for r in chain]
        # Start at the last engine.task ancestor when there is one: a
        # serial run nests tasks under engine.run, a pool worker's batch
        # is rootless — both truncate to the same task-relative path.
        for index in range(len(chain) - 1, -1, -1):
            if names[index] == "engine.task":
                chain = chain[index:]
                break
        return "/".join(
            _segment(r) for r in chain if r.name not in _INFRA_SEGMENTS
        )

    events = []
    seq: dict[str, int] = {}
    for record in records:
        if record.name in _INFRA_SEGMENTS:
            continue
        path = path_of(record)
        seq[path] = seq.get(path, 0) + 1
        event = {
            "path": path,
            "seq": seq[path],
            "name": record.name,
            "depth": path.count("/"),
            "error": record.error,
            "attrs": dict(record.attrs),
        }
        if not structural:
            for field_name in _TIMED_FIELDS:
                event[field_name] = getattr(record, field_name)
        events.append(event)
    events.sort(key=lambda e: (e["path"], e["seq"]))
    return events


def export_jsonl(
    records: Iterable[SpanRecord], *, structural: bool = False
) -> str:
    """Canonical JSONL text for a finished record set."""
    return "".join(
        json.dumps(event, sort_keys=True) + "\n"
        for event in canonical_events(records, structural=structural)
    )


# ----------------------------------------------------------- Chrome trace


def chrome_trace(records: Iterable[SpanRecord]) -> dict:
    """Spans as a Chrome trace-event JSON object (``ph:"X"`` events).

    Track layout: the main process is pid 0 / tid 0; worker-shipped
    spans land on pid 1 with one thread per adopted task batch (a batch
    root is a worker span whose parent is not itself a worker span).
    Timestamps are normalized per track — ``start_s`` stamps share a
    clock origin only within one OS process.
    """
    records = tuple(records)
    by_id = {record.span_id: record for record in records}

    def batch_root(record: SpanRecord) -> int:
        cursor = record
        seen: set[int] = set()
        while cursor.span_id not in seen:
            seen.add(cursor.span_id)
            parent = by_id.get(cursor.parent_id)
            if parent is None or parent.proc != "worker":
                return cursor.span_id
            cursor = parent
        return cursor.span_id

    batches: dict[int, int] = {}  # batch root span id -> tid
    tracks: dict[tuple[int, int], float] = {}  # (pid, tid) -> clock origin
    placed: list[tuple[SpanRecord, int, int]] = []
    for record in records:
        if record.proc == "worker":
            root = batch_root(record)
            tid = batches.setdefault(root, len(batches) + 1)
            pid = 1
        else:
            pid, tid = 0, 0
        key = (pid, tid)
        tracks[key] = min(tracks.get(key, math.inf), record.start_s)
        placed.append((record, pid, tid))

    trace_events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "sieve-repro"},
        }
    ]
    if batches:
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": 1,
                "tid": 0,
                "args": {"name": "pool workers"},
            }
        )
        for root, tid in sorted(batches.items(), key=lambda item: item[1]):
            label = by_id[root].attrs.get("workload", f"batch {tid}")
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": f"task {label}"},
                }
            )
    for record, pid, tid in placed:
        origin = tracks[(pid, tid)]
        event = {
            "ph": "X",
            "name": record.name,
            "cat": record.proc,
            "pid": pid,
            "tid": tid,
            "ts": (record.start_s - origin) * 1e6,  # microseconds
            "dur": record.wall_s * 1e6,
            "args": dict(record.attrs),
        }
        if record.error:
            event["args"]["error"] = record.error
        trace_events.append(event)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, records: Iterable[SpanRecord]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(records), indent=1) + "\n")
    return path


# ------------------------------------------------------------- Prometheus

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(raw: str) -> str:
    name = _NAME_SANITIZER.sub("_", raw)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _parse_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a registry key (``name{a=b,c=d}``) into name + labels."""
    if key.endswith("}") and "{" in key:
        name, _, inner = key.partition("{")
        labels = {}
        for part in inner[:-1].split(","):
            label, _, value = part.partition("=")
            labels[label] = value
        return name, labels
    return key, {}


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _label_suffix(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_metric_name(k)}="{_escape_label(str(labels[k]))}"'
        for k in sorted(labels)
    )
    return f"{{{inner}}}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot: Mapping) -> str:
    """A registry snapshot in Prometheus textfile exposition format.

    ``snapshot`` is the output of
    :meth:`~repro.observability.metrics.MetricsRegistry.snapshot`.
    Metric families are emitted in sorted order with one ``# TYPE`` line
    each; histograms expand into cumulative ``_bucket{le=...}`` series
    plus ``_sum``/``_count``.
    """
    families: dict[str, list[str]] = {}

    def family(raw_name: str, kind: str, suffix: str = "") -> list[str]:
        name = _metric_name(raw_name) + suffix
        if name not in families:
            families[name] = [f"# TYPE {name} {kind}"]
        return families[name]

    for key, value in snapshot.get("counters", {}).items():
        raw, labels = _parse_key(key)
        lines = family(raw, "counter", "_total")
        lines.append(
            f"{_metric_name(raw)}_total{_label_suffix(labels)} {_format_value(value)}"
        )
    for key, value in snapshot.get("gauges", {}).items():
        raw, labels = _parse_key(key)
        lines = family(raw, "gauge")
        lines.append(
            f"{_metric_name(raw)}{_label_suffix(labels)} {_format_value(value)}"
        )
    for key, payload in snapshot.get("histograms", {}).items():
        raw, labels = _parse_key(key)
        name = _metric_name(raw)
        lines = family(raw, "histogram")
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_value(float(bound))
            lines.append(
                f"{name}_bucket{_label_suffix(bucket_labels)} {cumulative}"
            )
        bucket_labels = dict(labels)
        bucket_labels["le"] = "+Inf"
        lines.append(
            f"{name}_bucket{_label_suffix(bucket_labels)} {payload['count']}"
        )
        lines.append(
            f"{name}_sum{_label_suffix(labels)} {_format_value(payload['total'])}"
        )
        lines.append(f"{name}_count{_label_suffix(labels)} {payload['count']}")
    return "".join(
        "\n".join(families[name]) + "\n" for name in sorted(families)
    )


#: One Prometheus sample line: name, optional {labels}, value.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> dict[str, dict]:
    """Validate and parse Prometheus exposition text back into samples.

    The strict inverse check for :func:`prometheus_text`: every
    non-comment line must be a well-formed sample whose family was
    declared by a preceding ``# TYPE`` line, values must parse as floats
    (``+Inf``/``-Inf``/``NaN`` included), and histogram families must
    carry ``_sum``/``_count`` series. Returns ``{family: {"type": kind,
    "samples": [(name, labels, value), ...]}}``; raises
    :class:`ValueError` on any malformation — the service smoke job
    uses this to assert ``/v1/metrics`` stays standards-valid.
    """
    families: dict[str, dict] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line {line!r}")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
            if name in families:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
            families[name] = {"type": kind, "samples": []}
            continue
        if line.startswith("#"):
            continue  # HELP/comment lines are legal, uninterpreted
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            matched_span = "".join(
                f'{k}="{v}",' for k, v in _LABEL_PAIR.findall(raw_labels)
            ).rstrip(",")
            if matched_span != raw_labels.rstrip(","):
                raise ValueError(f"line {lineno}: malformed labels {raw_labels!r}")
            labels = {k: v for k, v in _LABEL_PAIR.findall(raw_labels)}
        raw_value = match.group("value")
        try:
            value = float(raw_value.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad sample value {raw_value!r}"
            ) from exc
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
                break
        if family not in families:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE line")
        families[family]["samples"].append((name, labels, value))
    for name, payload in families.items():
        if payload["type"] != "histogram":
            continue
        sample_names = {sample[0] for sample in payload["samples"]}
        for required in (f"{name}_sum", f"{name}_count", f"{name}_bucket"):
            if required not in sample_names:
                raise ValueError(f"histogram {name!r} is missing {required}")
    return families


def write_prometheus(path: str | Path, snapshot: Mapping) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(snapshot))
    return path
