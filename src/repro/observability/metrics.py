"""Process-wide metrics: counters, gauges and histograms.

The registry is the numeric side of the observability layer: spans say
*where time went*, metrics say *how often things happened* (cache misses
by reason, strata built, representatives selected, invocations modeled).

Determinism contract: every aggregation is order-independent where the
serial pipeline is (counters and histograms add; gauges take the value
from the *last* merge call, and the engine merges worker snapshots in
task input order), and metric keys fold their labels in sorted order —
so a ``jobs=4`` run merges to exactly the serial run's snapshot. The
property test in ``tests/observability/test_metrics.py`` enforces this
end to end through the evaluation engine.

Only deterministic values belong in histograms (sizes, counts — never
wall-clock durations; durations live in spans).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.observability import state

#: Default histogram bucket upper bounds: powers of 4 spanning 1 .. ~10^9
#: (sizes/counts); one overflow bucket catches the rest.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(4.0**i for i in range(16))


def metric_key(name: str, labels: Mapping[str, object]) -> str:
    """Fold labels into the metric name, sorted for determinism.

    >>> metric_key("cache.miss", {"reason": "absent"})
    'cache.miss{reason=absent}'
    >>> metric_key("cache.miss", {})
    'cache.miss'
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class Histogram:
    """Fixed-bound histogram with exact count/sum/min/max sidecars."""

    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)  # len(bounds) + 1
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        bucket = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                bucket = i
                break
        self.counts[bucket] += 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def merge(self, other: "Histogram") -> None:
        if tuple(other.bounds) != tuple(self.bounds):
            raise ValueError("cannot merge histograms with different bounds")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Histogram":
        return cls(
            bounds=tuple(payload["bounds"]),
            counts=list(payload["counts"]),
            count=int(payload["count"]),
            total=float(payload["total"]),
            min=math.inf if payload.get("min") is None else float(payload["min"]),
            max=-math.inf if payload.get("max") is None else float(payload["max"]),
        )


class MetricsRegistry:
    """Counters, gauges and histograms keyed by labeled metric names."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------- write

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self._gauges[metric_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        key = metric_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram()
        histogram.observe(value)

    # -------------------------------------------------------------- read

    @property
    def counters(self) -> dict[str, float]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, float]:
        return dict(self._gauges)

    def histogram(self, name: str, **labels) -> Histogram | None:
        return self._histograms.get(metric_key(name, labels))

    def counter(self, name: str, **labels) -> float:
        return self._counters.get(metric_key(name, labels), 0.0)

    # ---------------------------------------------- snapshot / merge

    def snapshot(self) -> dict:
        """JSON-able, deterministically ordered view of the registry."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].to_dict() for k in sorted(self._histograms)
            },
        }

    def merge(self, snapshot: Mapping) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram buckets add; gauges take the merged
        snapshot's value (callers merge in task input order, which makes
        the result identical to serial execution).
        """
        for key, value in snapshot.get("counters", {}).items():
            self._counters[key] = self._counters.get(key, 0.0) + value
        for key, value in snapshot.get("gauges", {}).items():
            self._gauges[key] = float(value)
        for key, payload in snapshot.get("histograms", {}).items():
            shipped = Histogram.from_dict(payload)
            mine = self._histograms.get(key)
            if mine is None:
                self._histograms[key] = shipped
            else:
                mine.merge(shipped)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (what the manifest snapshots)."""
    return _registry


# Module-level conveniences: no-ops when observability is off, so hot
# paths pay one boolean check.


def inc(name: str, value: float = 1.0, **labels) -> None:
    if state.enabled():
        _registry.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    if state.enabled():
        _registry.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    if state.enabled():
        _registry.observe(name, value, **labels)
