"""On/off switch shared by every observability primitive.

Observability is on by default and disabled with ``SIEVE_OBS=off`` (or
``0``/``false``/``no``). When disabled, :func:`repro.observability.spans.span`
returns a shared null context manager and the metrics helpers return
without touching the registry, so the instrumented hot paths pay only a
single module-level boolean check — the tier-1 timing contract.

Tests flip the switch programmatically with :func:`set_enabled`;
``set_enabled(None)`` restores the environment-derived default.
"""

from __future__ import annotations

import os

#: Values of ``SIEVE_OBS`` that turn observability off.
_OFF_VALUES = frozenset({"off", "0", "false", "no"})


def _env_enabled() -> bool:
    return os.environ.get("SIEVE_OBS", "on").strip().lower() not in _OFF_VALUES


_enabled: bool = _env_enabled()


def enabled() -> bool:
    """Whether spans and metrics are being recorded in this process."""
    return _enabled


def set_enabled(value: bool | None) -> None:
    """Force observability on/off; ``None`` re-reads ``SIEVE_OBS``."""
    global _enabled
    _enabled = _env_enabled() if value is None else bool(value)
