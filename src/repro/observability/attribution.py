"""Prediction-error attribution: *where* a method's error comes from.

The evaluation layer reports one scalar per (method, workload): the
absolute relative cycle-count error. That is the paper's headline metric
(Section IV-3), but it explains nothing — a fig3 regression today says a
number moved, not which kernel or stratum moved it. This module
decomposes the error.

Every built-in predictor exposes its prediction as a sum of signed
per-representative cycle terms (:class:`~repro.core.prediction.
PredictionResult.contributions`):

* Sieve:      ``C_pred = Σ_i N · ŵ_i / IPC_i``  (harmonic-mean sensitivity)
* PKS:        ``C_pred = Σ_i |cluster_i| · cycles_i``
* periodic /
  random:     ``C_pred = Σ_i cycles_i · n / s``  (Horvitz-Thompson terms)

Grouping those terms by kernel — and taking each kernel's measured
cycles from the golden reference, which partitions the measured total
exactly — gives signed per-kernel contributions

    contribution_k = (pred_k - meas_k) / C_meas

that sum to the workload's signed prediction error up to float
reassociation (the property test pins 1e-9 rtol). Per-group (stratum /
cluster) contributions follow the same construction through the method's
``group_rows`` hook; they partition the error exactly only for methods
whose groups partition the invocations (Sieve strata, PKS clusters), so
:attr:`ErrorAttribution.groups_partition` records whether they do.

For Sieve the attribution also carries stratification-health gauges per
stratum (occupancy, CoV drift against θ, representative distance from
the stratum mean, KDE split balance) — the "which stratum went wrong"
half of a diagnosis.

Everything here is pure deterministic arithmetic on values the
evaluation already computed; it runs regardless of ``SIEVE_OBS`` (it is
data, not telemetry) and costs one pass over the profile table.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.evaluation.imputation import cycles_in_table_order

if TYPE_CHECKING:
    from repro.core.prediction import PredictionResult
    from repro.core.types import SampleSelection
    from repro.evaluation.context import WorkloadContext
    from repro.methods.base import SamplingMethod

__all__ = [
    "ErrorAttribution",
    "GroupAttribution",
    "KernelAttribution",
    "StratumHealth",
    "attribute_error",
]


@dataclass(frozen=True)
class KernelAttribution:
    """One kernel's signed share of the workload prediction error.

    ``contribution`` is ``(predicted - measured) / measured_total``:
    positive means the method over-predicts this kernel's cycles.
    Kernel contributions partition the signed error exactly (up to
    float reassociation) because the golden reference partitions the
    measured total by kernel.
    """

    kernel_name: str
    predicted_cycles: float
    measured_cycles: float
    contribution: float
    num_representatives: int


@dataclass(frozen=True)
class GroupAttribution:
    """One stratum/cluster's signed share of the prediction error."""

    group: str
    kernel_name: str
    size: int
    weight: float
    predicted_cycles: float
    measured_cycles: float
    contribution: float


@dataclass(frozen=True)
class StratumHealth:
    """Stratification-health gauges for one Sieve stratum.

    ``cov_drift`` is ``insn_cov - θ`` (positive = the stratum violates
    the paper's dispersion target); ``rep_distance`` is the selected
    representative's relative distance from the stratum's mean
    instruction count; ``split_balance`` is this stratum's size over the
    largest sibling stratum of the same kernel (1.0 for an unsplit
    kernel, small values flag lopsided KDE splits).
    """

    group: str
    kernel_name: str
    tier: str
    size: int
    occupancy: float
    insn_cov: float
    cov_drift: float
    rep_distance: float
    split_balance: float


@dataclass(frozen=True)
class ErrorAttribution:
    """A method's prediction error, decomposed.

    ``signed_error`` is ``(C_pred - C_meas) / C_meas`` — its absolute
    value is the paper's error metric. ``per_kernel`` always sums back
    to it (within reassociation); ``per_group`` does too when
    ``groups_partition`` is true.
    """

    workload: str
    method: str
    predicted_cycles: float
    measured_cycles: float
    signed_error: float
    per_kernel: tuple[KernelAttribution, ...]
    per_group: tuple[GroupAttribution, ...]
    groups_partition: bool
    health: tuple[StratumHealth, ...] = ()

    def to_dict(self) -> dict:
        """JSON-ready form (manifest embedding, ``attribute --json``)."""
        return {
            "workload": self.workload,
            "method": self.method,
            "predicted_cycles": self.predicted_cycles,
            "measured_cycles": self.measured_cycles,
            "signed_error": self.signed_error,
            "per_kernel": [asdict(k) for k in self.per_kernel],
            "per_group": [asdict(g) for g in self.per_group],
            "groups_partition": self.groups_partition,
            "health": [asdict(h) for h in self.health],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ErrorAttribution":
        return cls(
            workload=data["workload"],
            method=data["method"],
            predicted_cycles=float(data["predicted_cycles"]),
            measured_cycles=float(data["measured_cycles"]),
            signed_error=float(data["signed_error"]),
            per_kernel=tuple(
                KernelAttribution(**k) for k in data.get("per_kernel", ())
            ),
            per_group=tuple(
                GroupAttribution(**g) for g in data.get("per_group", ())
            ),
            groups_partition=bool(data.get("groups_partition", False)),
            health=tuple(StratumHealth(**h) for h in data.get("health", ())),
        )


def attribute_error(
    method: SamplingMethod,
    selection: SampleSelection,
    prediction: PredictionResult,
    context: WorkloadContext,
    config: object | None = None,
) -> ErrorAttribution:
    """Decompose ``prediction``'s error against the context's clean truth.

    ``prediction.contributions`` must align one-to-one with
    ``selection.representatives`` (every built-in predictor guarantees
    this); a predictor that provides no decomposition yields empty
    ``per_kernel``/``per_group`` tables but still reports the signed
    total.
    """
    truth = context.truth
    measured_total = float(truth.total_cycles)
    signed_error = (prediction.predicted_cycles - measured_total) / measured_total

    contributions = prediction.contributions
    if len(contributions) != len(selection.representatives):
        contributions = ()

    per_kernel = _per_kernel(selection, contributions, truth, measured_total)
    per_group, partitions = _per_group(
        method, selection, contributions, context, measured_total
    )
    return ErrorAttribution(
        workload=selection.workload,
        method=selection.method,
        predicted_cycles=float(prediction.predicted_cycles),
        measured_cycles=measured_total,
        signed_error=float(signed_error),
        per_kernel=per_kernel,
        per_group=per_group,
        groups_partition=partitions,
        health=_stratum_health(selection, context, config),
    )


# --------------------------------------------------------------------- #
# Per-kernel: exact partition of the signed error


def _per_kernel(
    selection: SampleSelection,
    contributions: tuple[float, ...],
    truth,
    measured_total: float,
) -> tuple[KernelAttribution, ...]:
    if not contributions:
        return ()
    predicted: dict[str, float] = {}
    rep_counts: dict[str, int] = {}
    for rep, term in zip(selection.representatives, contributions):
        predicted[rep.kernel_name] = predicted.get(rep.kernel_name, 0.0) + term
        rep_counts[rep.kernel_name] = rep_counts.get(rep.kernel_name, 0) + 1
    # Measurement-declaration order first (it partitions C_meas), then any
    # kernels the method predicted for that the truth never measured.
    names = list(truth.per_kernel)
    names += sorted(k for k in predicted if k not in truth.per_kernel)
    rows = []
    for name in names:
        kernel = truth.per_kernel.get(name)
        meas = float(kernel.total_cycles) if kernel is not None else 0.0
        pred = predicted.get(name, 0.0)
        rows.append(
            KernelAttribution(
                kernel_name=name,
                predicted_cycles=pred,
                measured_cycles=meas,
                contribution=(pred - meas) / measured_total,
                num_representatives=rep_counts.get(name, 0),
            )
        )
    return tuple(rows)


# --------------------------------------------------------------------- #
# Per-group (stratum / cluster)


def _per_group(
    method: SamplingMethod,
    selection: SampleSelection,
    contributions: tuple[float, ...],
    context: WorkloadContext,
    measured_total: float,
) -> tuple[tuple[GroupAttribution, ...], bool]:
    if not contributions:
        return (), False
    table = method.profile_table(context)
    row_cycles = cycles_in_table_order(table, context.truth)
    groups = [np.asarray(g) for g in method.group_rows(selection)]
    if len(groups) != len(selection.representatives):
        return (), False
    rows = []
    for rep, term, group in zip(selection.representatives, contributions, groups):
        meas = float(row_cycles[group].sum()) if len(group) else 0.0
        rows.append(
            GroupAttribution(
                group=rep.group,
                kernel_name=rep.kernel_name,
                size=int(len(group)),
                weight=float(rep.weight),
                predicted_cycles=float(term),
                measured_cycles=meas,
                contribution=(term - meas) / measured_total,
            )
        )
    covered = (
        np.concatenate(groups) if groups else np.empty(0, dtype=np.int64)
    )
    partitions = len(covered) == len(table) and len(np.unique(covered)) == len(
        table
    )
    return tuple(rows), bool(partitions)


# --------------------------------------------------------------------- #
# Sieve stratification health


def _stratum_health(
    selection: SampleSelection,
    context: WorkloadContext,
    config: object | None,
) -> tuple[StratumHealth, ...]:
    strata = getattr(selection, "strata", None)
    if not strata:
        return ()
    theta = float(getattr(config, "theta", 0.0) or 0.0)
    insn = context.sieve_table.insn_count
    largest_sibling: dict[int, int] = {}
    for stratum in strata:
        largest_sibling[stratum.kernel_id] = max(
            largest_sibling.get(stratum.kernel_id, 0), stratum.size
        )
    rep_by_group = {rep.group: rep for rep in selection.representatives}
    gauges = []
    for stratum in strata:
        mean_insn = float(insn[stratum.rows].mean()) if stratum.size else 0.0
        rep = rep_by_group.get(stratum.label)
        if rep is not None and mean_insn > 0:
            rep_distance = abs(float(insn[rep.row]) - mean_insn) / mean_insn
        else:
            rep_distance = 0.0
        gauges.append(
            StratumHealth(
                group=stratum.label,
                kernel_name=stratum.kernel_name,
                tier=stratum.tier.name,
                size=stratum.size,
                occupancy=stratum.size / max(selection.num_invocations, 1),
                insn_cov=float(stratum.insn_cov),
                cov_drift=float(stratum.insn_cov) - theta,
                rep_distance=rep_distance,
                split_balance=stratum.size
                / max(largest_sibling[stratum.kernel_id], 1),
            )
        )
    return tuple(gauges)
