"""Structured tracing: ``span("stage", **attrs)`` context managers.

A span measures one pipeline stage: wall time (``time.perf_counter``),
CPU time (``time.process_time``) and nesting (parent/depth), plus
arbitrary JSON-able attributes. Finished spans land in a process-global,
bounded record list that :mod:`repro.observability.manifest` aggregates
into per-stage statistics.

Design constraints, in order:

* **Zero overhead when off.** With ``SIEVE_OBS=off`` (or
  :func:`repro.observability.state.set_enabled` ``(False)``) ``span()``
  returns one shared null context manager — no allocation, no clock
  reads. The no-op-overhead test in
  ``tests/observability/test_spans.py`` pins this.
* **Exception safe.** A span closes (and records the exception type in
  its ``error`` field) even when its body raises; the stack always
  unwinds, so one failing stage cannot corrupt the trace of the next.
* **Picklable records.** Worker processes ship their span records back
  to the parent through the evaluation engine's process pool;
  :func:`adopt` grafts them under the parent's fan-out span with fresh
  ids and a ``proc`` tag so self-time accounting stays per-process.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.observability import state

#: Upper bound on retained span records; older records are dropped FIFO
#: (with a count kept) so week-long sessions cannot grow without bound.
MAX_RECORDS = 500_000


@dataclass(frozen=True)
class SpanRecord:
    """One finished span. ``wall_s``/``cpu_s`` are durations, not stamps.

    ``start_s`` is the span's ``perf_counter`` reading at entry — an
    arbitrary-origin, *per-process* stamp. Exporters that lay spans on a
    timeline (:mod:`repro.observability.export`) normalize it per track;
    deterministic (structural) exports exclude it entirely.
    """

    name: str
    wall_s: float
    cpu_s: float
    span_id: int
    parent_id: int  # -1 for a root span
    depth: int
    error: str | None = None  # exception type name if the body raised
    proc: str = "main"  # "main", or "worker" for pool-shipped spans
    attrs: dict = field(default_factory=dict)
    start_s: float = 0.0  # per-process perf_counter stamp at __enter__


class _NullSpan:
    """Shared do-nothing context manager for disabled observability."""

    __slots__ = ()

    span_id = -1

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()

_lock = threading.Lock()
_records: list[SpanRecord] = []
_dropped = 0
_next_id = 0
_tls = threading.local()

#: Live sinks notified of every *in-process* finished span (adopted
#: worker records are skipped — their originating process already
#: streamed them). See :class:`repro.observability.export.JsonlStreamSink`.
_sinks: list = []


def add_sink(sink) -> None:
    """Register a live sink; it must expose ``emit(record: SpanRecord)``."""
    _sinks.append(sink)


def remove_sink(sink) -> None:
    try:
        _sinks.remove(sink)
    except ValueError:
        pass


def clear_sinks() -> None:
    """Drop every registered sink (pool workers after fork, tests)."""
    _sinks.clear()


def _stack() -> list[int]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def _allocate_id() -> int:
    global _next_id
    with _lock:
        span_id = _next_id
        _next_id += 1
    return span_id


def _append(record: SpanRecord) -> None:
    global _dropped
    with _lock:
        _records.append(record)
        if len(_records) > MAX_RECORDS:
            overflow = len(_records) - MAX_RECORDS
            del _records[:overflow]
            _dropped += overflow
    if _sinks and record.proc == "main":
        for sink in _sinks:
            sink.emit(record)


class _Span:
    """A live span; created by :func:`span`, recorded on ``__exit__``."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "depth", "_wall0", "_cpu0")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        stack = _stack()
        self.span_id = _allocate_id()
        self.parent_id = stack[-1] if stack else -1
        self.depth = len(stack)
        stack.append(self.span_id)
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        stack = _stack()
        # Unwind to (and past) this span even if an inner span leaked.
        while stack and stack[-1] != self.span_id:
            stack.pop()
        if stack:
            stack.pop()
        _append(
            SpanRecord(
                name=self.name,
                wall_s=wall,
                cpu_s=cpu,
                span_id=self.span_id,
                parent_id=self.parent_id,
                depth=self.depth,
                error=None if exc_type is None else exc_type.__name__,
                attrs=self.attrs,
                start_s=self._wall0,
            )
        )
        return False  # never swallow the body's exception


def span(name: str, **attrs) -> _Span | _NullSpan:
    """Open a span named ``name``; use as a context manager.

    >>> from repro.observability import spans
    >>> mark = spans.mark()
    >>> with spans.span("doctest.outer"):
    ...     with spans.span("doctest.inner", k=1):
    ...         pass
    >>> [r.name for r in spans.records(since=mark)]
    ['doctest.inner', 'doctest.outer']
    """
    if not state.enabled():
        return _NULL_SPAN
    return _Span(name, attrs)


def mark() -> int:
    """A position in the record list; pass to ``records(since=...)``.

    Marks taken before records were dropped under :data:`MAX_RECORDS`
    pressure degrade gracefully (they clamp to the oldest retained
    record).
    """
    with _lock:
        return len(_records) + _dropped


def records(since: int = 0) -> tuple[SpanRecord, ...]:
    """Finished spans (completion order), optionally from a mark on."""
    with _lock:
        start = max(0, since - _dropped)
        return tuple(_records[start:])


def dropped() -> int:
    """Records evicted so far under the :data:`MAX_RECORDS` bound."""
    return _dropped


def reset() -> None:
    """Drop all records and live-stack state (tests, pool workers)."""
    global _dropped, _next_id
    with _lock:
        _records.clear()
        _dropped = 0
        _next_id = 0
    _tls.stack = []


def adopt(
    shipped: Iterable[SpanRecord], parent_id: int = -1, proc: str = "worker"
) -> tuple[SpanRecord, ...]:
    """Graft records shipped from another process into this one.

    Ids are reassigned from this process's counter (preserving the
    internal parent/child links of the batch); roots of the shipped batch
    are re-parented under ``parent_id``; every record is tagged ``proc``
    so self-time accounting never subtracts cross-process children.
    """
    shipped = tuple(shipped)
    id_map = {record.span_id: _allocate_id() for record in shipped}
    adopted = []
    for record in shipped:
        adopted.append(
            replace(
                record,
                span_id=id_map[record.span_id],
                parent_id=id_map.get(record.parent_id, parent_id),
                proc=proc,
            )
        )
    for record in adopted:
        _append(record)
    # _append only streams in-process ("main") records; adopted batches
    # are streamed here instead, in adoption order — the engine adopts in
    # task input order, so the stream stays deterministic under --jobs.
    if _sinks:
        for record in adopted:
            for sink in _sinks:
                sink.emit(record)
    return tuple(adopted)


def capture_spans() -> "_SpanCapture":
    """Context manager collecting the spans finished inside it (tests).

    >>> with capture_spans() as caught:
    ...     with span("doctest.captured"):
    ...         pass
    >>> [r.name for r in caught]
    ['doctest.captured']
    """
    return _SpanCapture()


class _SpanCapture:
    __slots__ = ("_mark", "_caught")

    def __enter__(self) -> list[SpanRecord]:
        self._mark = mark()
        self._caught: list[SpanRecord] = []
        return self._caught

    def __exit__(self, *exc) -> bool:
        self._caught.extend(records(since=self._mark))
        return False
