"""Run manifests: one JSON artifact describing one pipeline run.

A :class:`RunManifest` captures everything needed to ask "did this PR
make the pipeline slower or less accurate?": the command and its config,
the package version and source fingerprint (so a manifest is traceable
to exact code), cache hit/miss statistics, per-stage timing statistics
aggregated from :mod:`repro.observability.spans`, per-workload accuracy
rows, the metrics registry snapshot, structured events (e.g. a process
pool dying) and any degraded-path diagnostics.

Manifests round-trip through JSON losslessly (``to_json``/``from_json``)
and diff against each other (:func:`diff_manifests`) — the committed
``benchmarks/baselines/BENCH_*.json`` files are manifests, and the CI
``bench-regression`` job is exactly one such diff.

Stage accounting: ``wall_s`` is inclusive; ``self_s`` subtracts the wall
time of *same-process* direct children, so the self times of all stages
sum to the instrumented total even with worker-shipped spans grafted in.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.observability import metrics, spans
from repro.observability.export import record_to_dict as _span_dict

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1


@lru_cache(maxsize=1)
def package_fingerprint() -> str:
    """Content hash of the installed ``repro`` package source."""
    import repro
    from repro.utils.hashing import tree_fingerprint

    return tree_fingerprint(Path(repro.__file__).resolve().parent)


def package_version() -> str:
    import repro

    return repro.__version__


# ------------------------------------------------------------------ events

_events: list[dict] = []


def record_event(kind: str, **fields) -> dict:
    """Record a structured, manifest-bound event (always on: events are
    rare and load-bearing — a pool failure must reach the manifest even
    when tracing is disabled)."""
    event = {"kind": kind, **fields}
    _events.append(event)
    return event


def events(since: int = 0) -> tuple[dict, ...]:
    return tuple(_events[since:])


def events_mark() -> int:
    return len(_events)


def reset_events() -> None:
    _events.clear()


def extend_events(shipped: Iterable[Mapping]) -> None:
    """Merge events shipped from a worker process (engine pool merge)."""
    _events.extend(dict(event) for event in shipped)


# ------------------------------------------------------------------ stages


@dataclass(frozen=True)
class StageStat:
    """Aggregate timing of every span sharing one name."""

    name: str
    count: int
    wall_s: float  # inclusive
    self_s: float  # wall minus same-process direct children
    cpu_s: float
    errors: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StageStat":
        return cls(
            name=payload["name"],
            count=int(payload["count"]),
            wall_s=float(payload["wall_s"]),
            self_s=float(payload["self_s"]),
            cpu_s=float(payload["cpu_s"]),
            errors=int(payload.get("errors", 0)),
        )


def aggregate_stages(records: Iterable[spans.SpanRecord]) -> tuple[StageStat, ...]:
    """Group span records by name, computing inclusive and self time."""
    records = tuple(records)
    child_wall: dict[tuple[int, str], float] = {}
    for record in records:
        key = (record.parent_id, record.proc)
        child_wall[key] = child_wall.get(key, 0.0) + record.wall_s

    grouped: dict[str, list[float]] = {}
    for record in records:
        children = child_wall.get((record.span_id, record.proc), 0.0)
        self_s = max(0.0, record.wall_s - children)
        entry = grouped.setdefault(record.name, [0, 0.0, 0.0, 0.0, 0])
        entry[0] += 1
        entry[1] += record.wall_s
        entry[2] += self_s
        entry[3] += record.cpu_s
        entry[4] += 1 if record.error else 0
    return tuple(
        StageStat(
            name=name,
            count=entry[0],
            wall_s=entry[1],
            self_s=entry[2],
            cpu_s=entry[3],
            errors=entry[4],
        )
        for name, entry in sorted(grouped.items())
    )


# ---------------------------------------------------------------- manifest


@dataclass(frozen=True)
class RunManifest:
    """The JSON artifact for one run. See the module docstring."""

    command: str
    schema: int = MANIFEST_SCHEMA
    created: str = ""  # ISO-8601, set by the CLI; empty in tests
    package_version: str = ""
    source_fingerprint: str = ""
    config: dict = field(default_factory=dict)
    total_wall_s: float = 0.0
    total_cpu_s: float = 0.0
    stages: tuple[StageStat, ...] = ()
    workloads: tuple[dict, ...] = ()
    aggregates: dict = field(default_factory=dict)
    cache: dict | None = None
    metrics: dict = field(default_factory=dict)
    events: tuple[dict, ...] = ()
    diagnostics: tuple[dict, ...] = ()
    #: Raw span records (dict form) when the run asked for an exportable
    #: trace; empty by default — bench baselines stay lean.
    spans: tuple[dict, ...] = ()
    #: Per-workload prediction-error attributions
    #: (:meth:`repro.observability.attribution.ErrorAttribution.to_dict`).
    attribution: tuple[dict, ...] = ()

    def stage(self, name: str) -> StageStat | None:
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    def stage_self_total(self) -> float:
        """Sum of per-stage self times (≈ instrumented wall time)."""
        return sum(stage.self_s for stage in self.stages)

    # ------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["stages"] = [stage.to_dict() for stage in self.stages]
        payload["workloads"] = [dict(row) for row in self.workloads]
        payload["events"] = [dict(event) for event in self.events]
        payload["diagnostics"] = [dict(d) for d in self.diagnostics]
        payload["spans"] = [dict(record) for record in self.spans]
        payload["attribution"] = [dict(entry) for entry in self.attribution]
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunManifest":
        return cls(
            command=payload["command"],
            schema=int(payload.get("schema", MANIFEST_SCHEMA)),
            created=payload.get("created", ""),
            package_version=payload.get("package_version", ""),
            source_fingerprint=payload.get("source_fingerprint", ""),
            config=dict(payload.get("config", {})),
            total_wall_s=float(payload.get("total_wall_s", 0.0)),
            total_cpu_s=float(payload.get("total_cpu_s", 0.0)),
            stages=tuple(
                StageStat.from_dict(stage) for stage in payload.get("stages", [])
            ),
            workloads=tuple(dict(row) for row in payload.get("workloads", [])),
            aggregates=dict(payload.get("aggregates", {})),
            cache=dict(payload["cache"]) if payload.get("cache") else None,
            metrics=dict(payload.get("metrics", {})),
            events=tuple(dict(event) for event in payload.get("events", [])),
            diagnostics=tuple(dict(d) for d in payload.get("diagnostics", [])),
            spans=tuple(dict(record) for record in payload.get("spans", [])),
            attribution=tuple(
                dict(entry) for entry in payload.get("attribution", [])
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        return cls.from_json(Path(path).read_text())


def collect_manifest(
    command: str,
    *,
    config: Mapping | None = None,
    engine=None,  # duck-typed EvaluationEngine (avoids a layering cycle)
    workloads: Sequence[Mapping] = (),
    aggregates: Mapping | None = None,
    diagnostics: Sequence[Mapping] = (),
    since: int = 0,
    events_since: int = 0,
    total_wall_s: float | None = None,
    total_cpu_s: float | None = None,
    created: str = "",
    include_spans: bool = False,
    attribution: Sequence[Mapping] = (),
) -> RunManifest:
    """Assemble a manifest from the telemetry recorded since ``since``.

    ``total_wall_s`` defaults to the summed wall time of the root spans
    in the window (for the CLI that is the single span wrapping the
    command handler). ``include_spans=True`` embeds the window's raw
    span records so exporters (``trace export``) can rebuild a timeline
    from the saved manifest; ``attribution`` carries per-workload
    error-attribution dicts
    (:meth:`repro.observability.attribution.ErrorAttribution.to_dict`).
    """
    window = spans.records(since=since)
    if total_wall_s is None:
        total_wall_s = sum(r.wall_s for r in window if r.depth == 0 and r.proc == "main")
    if total_cpu_s is None:
        total_cpu_s = sum(r.cpu_s for r in window if r.depth == 0 and r.proc == "main")
    cache = None
    if engine is not None:
        stats = engine.cache_stats
        cache = {
            "jobs": engine.config.jobs,
            "enabled": stats is not None,
            "hits": stats.hits if stats else 0,
            "misses": stats.misses if stats else 0,
            "writes": stats.writes if stats else 0,
            "invalid": stats.invalid if stats else 0,
        }
        if engine.cache is not None:
            cache["directory"] = str(engine.cache.directory)
    return RunManifest(
        command=command,
        created=created,
        package_version=package_version(),
        source_fingerprint=package_fingerprint(),
        config=dict(config or {}),
        total_wall_s=total_wall_s,
        total_cpu_s=total_cpu_s,
        stages=aggregate_stages(window),
        workloads=tuple(dict(row) for row in workloads),
        aggregates=dict(aggregates or {}),
        cache=cache,
        metrics=metrics.get_registry().snapshot(),
        events=events(since=events_since),
        diagnostics=tuple(dict(d) for d in diagnostics),
        spans=tuple(
            _span_dict(record) for record in window
        )
        if include_spans
        else (),
        attribution=tuple(dict(entry) for entry in attribution),
    )


# -------------------------------------------------------------------- diff


@dataclass(frozen=True)
class Regression:
    """One baseline-vs-current deviation the diff wants eyes on.

    ``severity`` separates build-failing deviations (``"fail"``) from
    explicitly-reported-but-informational ones (``"info"``: a brand-new
    stage, a wall measured against a zero baseline) — gates must count
    only ``fail`` rows (see :func:`regression_failures`).
    """

    # "total-wall" | "stage-wall" | "stage-missing" | "stage-new"
    # | "accuracy" | "aggregate"
    kind: str
    name: str
    baseline: float
    current: float
    detail: str
    severity: str = "fail"

    @property
    def failed(self) -> bool:
        return self.severity == "fail"

    def __str__(self) -> str:
        return f"[{self.kind}] {self.name}: {self.detail}"


def regression_failures(regressions: Iterable[Regression]) -> list[Regression]:
    """The subset of a diff's rows that should gate a build."""
    return [r for r in regressions if r.failed]


def _accuracy_drifted(base: float, cur: float, atol: float, rtol: float) -> bool:
    return abs(cur - base) > atol + rtol * abs(base)


def diff_manifests(
    baseline: RunManifest,
    current: RunManifest,
    *,
    max_slowdown: float = 1.25,
    min_seconds: float = 0.05,
    accuracy_atol: float = 1e-9,
    accuracy_rtol: float = 1e-6,
) -> list[Regression]:
    """Regressions of ``current`` relative to ``baseline``.

    Wall-time checks fire when a stage (or the total) is more than
    ``max_slowdown``× slower *and* at least ``min_seconds`` slower — the
    absolute floor keeps sub-millisecond stages from tripping the gate
    on scheduler noise. Accuracy checks compare every ``*_error`` field
    of matching per-workload rows and every shared aggregate key; the
    pipeline is seed-deterministic, so the tolerance only absorbs float
    reassociation, not algorithmic drift.

    Stages that exist on only one side are reported explicitly: removed
    stages as failing ``stage-missing`` rows (when they spent more than
    ``min_seconds`` in the baseline), brand-new stages as informational
    ``stage-new`` rows. A wall measured against a (near-)zero baseline
    is likewise an informational row — no ratio is computed against
    nothing — instead of a silent skip.
    """
    regressions: list[Regression] = []
    # Below this, a baseline wall is "not measured" — a ratio against it
    # would be noise amplified to millions of x.
    zero_wall = 1e-6

    def check_wall(kind: str, name: str, base: float, cur: float) -> None:
        if base <= zero_wall:
            if cur > min_seconds:
                regressions.append(
                    Regression(
                        kind=kind,
                        name=name,
                        baseline=base,
                        current=cur,
                        detail=(
                            f"no usable baseline wall ({base:.3f}s); current "
                            f"{cur:.3f}s is a new measurement, not a regression"
                        ),
                        severity="info",
                    )
                )
            return
        if cur > base * max_slowdown and cur - base > min_seconds:
            regressions.append(
                Regression(
                    kind=kind,
                    name=name,
                    baseline=base,
                    current=cur,
                    detail=(
                        f"{cur:.3f}s vs baseline {base:.3f}s "
                        f"({cur / base:.2f}x, limit {max_slowdown:.2f}x)"
                    ),
                )
            )

    check_wall("total-wall", "total", baseline.total_wall_s, current.total_wall_s)
    current_stages = {stage.name: stage for stage in current.stages}
    baseline_names = {stage.name for stage in baseline.stages}
    for stage in baseline.stages:
        counterpart = current_stages.get(stage.name)
        if counterpart is None:
            if stage.wall_s > min_seconds:
                regressions.append(
                    Regression(
                        kind="stage-missing",
                        name=stage.name,
                        baseline=stage.wall_s,
                        current=0.0,
                        detail=(
                            f"stage removed: ran {stage.wall_s:.3f}s in baseline "
                            "but never in current run"
                        ),
                    )
                )
            continue
        check_wall("stage-wall", stage.name, stage.wall_s, counterpart.wall_s)
    for stage in current.stages:
        if stage.name not in baseline_names and stage.wall_s > min_seconds:
            regressions.append(
                Regression(
                    kind="stage-new",
                    name=stage.name,
                    baseline=0.0,
                    current=stage.wall_s,
                    detail=(
                        f"new stage: {stage.wall_s:.3f}s in current run, absent "
                        "from baseline — no history to regress against"
                    ),
                    severity="info",
                )
            )

    current_rows = {row.get("workload"): row for row in current.workloads}
    for row in baseline.workloads:
        counterpart = current_rows.get(row.get("workload"))
        if counterpart is None:
            regressions.append(
                Regression(
                    kind="accuracy",
                    name=str(row.get("workload")),
                    baseline=0.0,
                    current=0.0,
                    detail="workload present in baseline but absent from current run",
                )
            )
            continue
        for key, base_value in row.items():
            if not key.endswith("_error") or not isinstance(base_value, (int, float)):
                continue
            cur_value = counterpart.get(key)
            if cur_value is None or _accuracy_drifted(
                base_value, cur_value, accuracy_atol, accuracy_rtol
            ):
                regressions.append(
                    Regression(
                        kind="accuracy",
                        name=f"{row['workload']}.{key}",
                        baseline=float(base_value),
                        current=float(cur_value) if cur_value is not None else float("nan"),
                        detail=(
                            f"{cur_value!r} vs baseline {base_value!r} "
                            f"(tolerance atol={accuracy_atol:g}, rtol={accuracy_rtol:g})"
                        ),
                    )
                )

    for key, base_value in baseline.aggregates.items():
        if not isinstance(base_value, (int, float)):
            continue
        cur_value = current.aggregates.get(key)
        if cur_value is None or _accuracy_drifted(
            base_value, cur_value, accuracy_atol, accuracy_rtol
        ):
            regressions.append(
                Regression(
                    kind="aggregate",
                    name=key,
                    baseline=float(base_value),
                    current=float(cur_value) if cur_value is not None else float("nan"),
                    detail=(
                        f"{cur_value!r} vs baseline {base_value!r} "
                        f"(tolerance atol={accuracy_atol:g}, rtol={accuracy_rtol:g})"
                    ),
                )
            )
    return regressions
