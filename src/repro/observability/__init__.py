"""Zero-dependency tracing, metrics and run manifests (DESIGN.md §9).

Three primitives, one artifact:

* :func:`span` — ``with span("stage", **attrs):`` measures wall/CPU time
  and nesting of one pipeline stage (:mod:`repro.observability.spans`);
* :class:`MetricsRegistry` — process-wide counters/gauges/histograms
  with deterministic aggregation (:mod:`repro.observability.metrics`);
* :class:`RunManifest` — a single JSON artifact per run: config, package
  fingerprint, cache statistics, per-stage timings, per-workload
  accuracy, events and diagnostics
  (:mod:`repro.observability.manifest`), rendered and diffed by
  :mod:`repro.observability.report`.

``SIEVE_OBS=off`` turns the whole layer into a no-op.
"""

from repro.observability.manifest import (
    MANIFEST_SCHEMA,
    Regression,
    RunManifest,
    StageStat,
    aggregate_stages,
    collect_manifest,
    diff_manifests,
    record_event,
    regression_failures,
)
from repro.observability.metrics import MetricsRegistry, get_registry
from repro.observability.spans import SpanRecord, capture_spans, span
from repro.observability.state import enabled, set_enabled

__all__ = [
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "Regression",
    "RunManifest",
    "SpanRecord",
    "StageStat",
    "aggregate_stages",
    "capture_spans",
    "collect_manifest",
    "diff_manifests",
    "enabled",
    "get_registry",
    "record_event",
    "regression_failures",
    "set_enabled",
    "span",
]
