"""Sampling-method registry: one protocol for every comparator.

``get_method("sieve")`` resolves a :class:`SamplingMethod`; the built-in
methods and any ``sieve_repro.methods`` entry points load lazily on the
first lookup. See :mod:`repro.methods.base` for the contract and
:mod:`repro.methods.builtin` for the shipped implementations.
"""

from repro.methods.base import MethodRequest, SamplingMethod
from repro.methods.registry import (
    ENTRY_POINT_GROUP,
    get_method,
    list_methods,
    method_entries,
    register_method,
    unregister_method,
)

__all__ = [
    "ENTRY_POINT_GROUP",
    "MethodRequest",
    "SamplingMethod",
    "get_method",
    "list_methods",
    "method_entries",
    "register_method",
    "unregister_method",
]
