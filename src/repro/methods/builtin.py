"""Built-in sampling methods: the paper's comparison, behind the registry.

Each adapter wraps an existing pipeline without changing its numerics —
``evaluate_method("sieve", ...)`` is byte-identical to driving
:class:`~repro.core.pipeline.SievePipeline` by hand (the equivalence
property tests pin this). PCA and k-means stay internals of PKS; they
are not methods.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.baselines.periodic import PeriodicSampler
from repro.baselines.pks import PksConfig, PksPipeline
from repro.baselines.pks_two_level import TwoLevelPksConfig, TwoLevelPksPipeline
from repro.baselines.random_sampling import RandomSampler
from repro.core.config import SieveConfig
from repro.core.pipeline import SievePipeline
from repro.methods.base import SamplingMethod
from repro.methods.registry import register_method
from repro.profiling.two_level import TwoLevelProfiler

if TYPE_CHECKING:
    from repro.core.prediction import PredictionResult
    from repro.core.types import SampleSelection
    from repro.evaluation.context import WorkloadContext
    from repro.gpu.hardware import WorkloadMeasurement
    from repro.profiling.table import ProfileTable


@register_method
class SieveMethod(SamplingMethod):
    """Stratified sampling on the NVBit instruction-count profile."""

    name = "sieve"
    config_schema = SieveConfig
    description = "Sieve: KDE-stratified sampling on instruction counts"
    streams_incrementally = True

    def select(self, context: WorkloadContext, config: SieveConfig) -> SampleSelection:
        return SievePipeline(config).select(context.sieve_table)

    def begin_stream(self, stream, config: SieveConfig | None = None):
        from repro.streaming.sieve import SieveStream

        return SieveStream(stream, self.resolve_config(config))

    def predict(
        self,
        selection: SampleSelection,
        measurement: WorkloadMeasurement,
        config: SieveConfig,
    ) -> PredictionResult:
        return SievePipeline(config).predict(selection, measurement)

    def group_rows(self, selection: SampleSelection) -> Iterable[np.ndarray]:
        return (stratum.rows for stratum in selection.strata)


@register_method
class PksMethod(SamplingMethod):
    """Principal Kernel Selection on the Nsight 12-metric profile."""

    name = "pks"
    config_schema = PksConfig
    description = "PKS: PCA + k-means clustering with golden-reference k"

    def select(self, context: WorkloadContext, config: PksConfig) -> SampleSelection:
        return PksPipeline(config).select(context.pks_table, context.golden)

    def predict(
        self,
        selection: SampleSelection,
        measurement: WorkloadMeasurement,
        config: PksConfig,
    ) -> PredictionResult:
        return PksPipeline(config).predict(selection, measurement)

    def profile_table(self, context: WorkloadContext) -> ProfileTable:
        return context.pks_table

    def group_rows(self, selection: SampleSelection) -> Iterable[np.ndarray]:
        return selection.cluster_rows


@register_method
class PksTwoLevelMethod(SamplingMethod):
    """PKS on a two-level profile (the PKA cost mitigation).

    Re-profiles the context's run with the two-level scheme (detailed
    prefix + light remainder); cluster rows index the detailed prefix,
    which is chronologically aligned with the full Nsight table.
    """

    name = "pks-two-level"
    config_schema = TwoLevelPksConfig
    description = "PKS clustering a detailed prefix, extrapolated to the rest"

    def select(
        self, context: WorkloadContext, config: TwoLevelPksConfig
    ) -> SampleSelection:
        profile = TwoLevelProfiler(config.detailed_budget).profile(context.run)
        return TwoLevelPksPipeline(config.pks).select(profile, context.golden)

    def predict(
        self,
        selection: SampleSelection,
        measurement: WorkloadMeasurement,
        config: TwoLevelPksConfig,
    ) -> PredictionResult:
        return TwoLevelPksPipeline(config.pks).predict(selection, measurement)

    def profile_table(self, context: WorkloadContext) -> ProfileTable:
        return context.pks_table

    def group_rows(self, selection: SampleSelection) -> Iterable[np.ndarray]:
        return selection.cluster_rows


@register_method
class PeriodicMethod(SamplingMethod):
    """Systematic sampling: every period-th invocation (SMARTS-style)."""

    name = "periodic"
    config_schema = PeriodicSampler
    description = "periodic baseline: every period-th invocation"
    streams_incrementally = True

    def begin_stream(self, stream, config: PeriodicSampler | None = None):
        from repro.streaming.periodic import PeriodicStream

        return PeriodicStream(stream, self.resolve_config(config))

    def select(
        self, context: WorkloadContext, config: PeriodicSampler
    ) -> SampleSelection:
        return config.select(context.sieve_table)

    def predict(
        self,
        selection: SampleSelection,
        measurement: WorkloadMeasurement,
        config: PeriodicSampler,
    ) -> PredictionResult:
        return config.predict(selection, measurement)


@register_method
class RandomMethod(SamplingMethod):
    """Simple random sampling with a fixed budget (ablation floor)."""

    name = "random"
    config_schema = RandomSampler
    description = "random baseline: uniform sample, Horvitz-Thompson estimate"

    def select(
        self, context: WorkloadContext, config: RandomSampler
    ) -> SampleSelection:
        return config.select(context.sieve_table)

    def predict(
        self,
        selection: SampleSelection,
        measurement: WorkloadMeasurement,
        config: RandomSampler,
    ) -> PredictionResult:
        return config.predict(selection, measurement)
