"""The sampling-method contract every comparator implements.

The paper's evaluation is a *method comparison*: Sieve against PKS
against statistical baselines, on the same workloads, judged by the same
metrics. :class:`SamplingMethod` is the one surface the evaluation
layer, engine, CLI and benches program against — a method turns an
evaluation context into a :class:`~repro.core.types.SampleSelection` and
a selection plus a measurement into a
:class:`~repro.core.prediction.PredictionResult`. Everything downstream
(accuracy, dispersion, speedup, caching, manifests) is method-agnostic.

:class:`MethodRequest` is the serializable "method name + config" pair
that experiment specs and :class:`~repro.evaluation.engine.EvaluationTask`
carry; it is what gets content-hashed into cache keys.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.utils.errors import MethodConfigError

if TYPE_CHECKING:
    from repro.core.prediction import PredictionResult
    from repro.core.types import SampleSelection
    from repro.evaluation.context import WorkloadContext
    from repro.gpu.hardware import WorkloadMeasurement
    from repro.profiling.table import ProfileTable
    from repro.streaming.base import MethodStream, StreamContext


@dataclass(frozen=True)
class MethodRequest:
    """One method invocation to evaluate: registry name + typed config.

    ``config`` is ``None`` (method defaults) or an instance of the
    method's ``config_schema`` dataclass — frozen, picklable and
    content-hashable, so a request can ship to a pool worker and feed a
    cache key. ``alias`` renames the request's result column when one
    experiment runs the same method under several configs (e.g. the
    Figure 5 PKS policy study).
    """

    method: str
    config: object | None = None
    alias: str | None = None

    @property
    def key(self) -> str:
        """The result-dict / manifest column this request reports under."""
        return self.alias or self.method


class SamplingMethod(ABC):
    """One workload-sampling comparator (Sieve, PKS, a baseline, ...).

    Subclasses set ``name`` (the registry key) and ``config_schema`` (the
    frozen dataclass type of their tunables, or ``None`` for
    configuration-free methods), and implement ``select``/``predict``.
    The remaining hooks have defaults that suit simple baselines.
    """

    #: Registry key; must be unique across all registered methods.
    name: str = ""
    #: Frozen dataclass type of this method's config, or None.
    config_schema: type | None = None
    #: One-line description shown by ``sieve-repro methods list``.
    description: str = ""
    #: True when ``begin_stream`` is a real incremental implementation
    #: rather than the buffer-everything fallback.
    streams_incrementally: bool = False

    # ------------------------------------------------------------------ #
    # Required surface

    @abstractmethod
    def select(self, context: WorkloadContext, config: object) -> SampleSelection:
        """Reduce the workload to representative invocations + weights."""

    @abstractmethod
    def predict(
        self,
        selection: SampleSelection,
        measurement: WorkloadMeasurement,
        config: object,
    ) -> PredictionResult:
        """Predict application cycles from the representatives."""

    # ------------------------------------------------------------------ #
    # Hooks with baseline-friendly defaults

    def default_config(self) -> object | None:
        """A fresh default config (``None`` for config-free methods)."""
        return self.config_schema() if self.config_schema is not None else None

    def resolve_config(self, config: object | None) -> object | None:
        """Validate ``config`` against the schema, defaulting when absent.

        Raises :class:`~repro.utils.errors.MethodConfigError` on a type
        mismatch so a misrouted config fails loudly before any work (or
        cache probe) happens.
        """
        if config is None:
            return self.default_config()
        if self.config_schema is None:
            raise MethodConfigError(
                f"method {self.name!r} takes no config, got "
                f"{type(config).__name__}"
            )
        if not isinstance(config, self.config_schema):
            raise MethodConfigError(
                f"method {self.name!r} expects {self.config_schema.__name__}, "
                f"got {type(config).__name__}"
            )
        return config

    def begin_stream(
        self, stream: StreamContext, config: object | None = None
    ) -> MethodStream:
        """Start an incremental selection over a chunked profile feed.

        The default buffers every observed chunk and delegates to
        ``select`` at finalize — correct for any method, incremental for
        none (``streams_incrementally`` says which). Methods with a true
        streaming implementation (sieve, periodic) override this to
        return their operator.
        """
        from repro.streaming.base import BufferingStream

        return BufferingStream(self, stream, self.resolve_config(config))

    def profile_table(self, context: WorkloadContext) -> ProfileTable:
        """The profile whose row order aligns with this method's selection.

        Dispersion statistics index golden cycle counts by profile-table
        row; methods that select from the Nsight (12-metric) table
        override this to return ``context.pks_table``.
        """
        return context.sieve_table

    def group_rows(self, selection: SampleSelection) -> Iterable[np.ndarray]:
        """Row groups (stratum/cluster members) behind each representative.

        Feeds the Figure 4 within-group cycle-dispersion metric. The
        default — one singleton group per representative — gives zero
        dispersion, which is the honest answer for methods that keep no
        group structure (random/periodic sampling).
        """
        return (np.array([rep.row]) for rep in selection.representatives)
