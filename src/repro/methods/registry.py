"""Registry mapping method names to :class:`SamplingMethod` instances.

Built-in methods (Sieve, PKS, PKS-two-level, periodic, random) register
themselves when :mod:`repro.methods.builtin` loads; third-party
comparators register either with the :func:`register_method` decorator or
through a ``sieve_repro.methods`` entry point::

    [project.entry-points."sieve_repro.methods"]
    my-method = "my_package.sampling:MySamplingMethod"

Both built-ins and entry points load lazily on first lookup, so importing
:mod:`repro.methods` stays cheap and free of import cycles (the built-in
adapters pull in the full Sieve/PKS pipelines).
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.methods.base import SamplingMethod
from repro.utils.errors import MethodRegistryError, UnknownMethodError

#: Entry-point group scanned for third-party methods.
ENTRY_POINT_GROUP = "sieve_repro.methods"

_REGISTRY: dict[str, SamplingMethod] = {}
_loaded = False

M = TypeVar("M", bound=type)


def register_method(cls: M) -> M:
    """Class decorator: instantiate ``cls`` and add it to the registry.

    The class must subclass :class:`SamplingMethod` with a non-empty,
    unique ``name``. Returns the class unchanged so it stays importable.
    """
    if not (isinstance(cls, type) and issubclass(cls, SamplingMethod)):
        raise MethodRegistryError(
            f"@register_method expects a SamplingMethod subclass, got {cls!r}"
        )
    method = cls()
    if not method.name:
        raise MethodRegistryError(f"{cls.__name__} has an empty method name")
    if method.name in _REGISTRY:
        raise MethodRegistryError(
            f"method {method.name!r} is already registered "
            f"(by {type(_REGISTRY[method.name]).__name__})"
        )
    _REGISTRY[method.name] = method
    return cls


def unregister_method(name: str) -> None:
    """Remove ``name`` from the registry (test/plugin teardown helper)."""
    _REGISTRY.pop(name, None)


def _load_entry_points() -> None:
    from importlib.metadata import entry_points

    import repro.robustness.diagnostics as diagnostics

    try:
        points = entry_points(group=ENTRY_POINT_GROUP)
    except Exception as exc:  # metadata backends vary; never fatal
        diagnostics.emit(
            "methods.registry", f"entry-point scan failed: {exc!r}"
        )
        return
    for point in points:
        try:
            loaded = point.load()
            if isinstance(loaded, type) and issubclass(loaded, SamplingMethod):
                if loaded().name not in _REGISTRY:
                    register_method(loaded)
            else:
                raise MethodRegistryError(
                    f"entry point {point.name!r} is not a SamplingMethod"
                )
        except Exception as exc:
            # A broken plugin must not take down the built-in methods.
            diagnostics.emit(
                "methods.registry",
                f"failed to load method entry point {point.name!r}: {exc!r}",
            )


def _ensure_loaded() -> None:
    global _loaded
    if _loaded:
        return
    _loaded = True
    import repro.methods.builtin  # noqa: F401  (registers via decorator)

    _load_entry_points()


def get_method(name: str) -> SamplingMethod:
    """Resolve a registered method by name.

    Raises :class:`~repro.utils.errors.UnknownMethodError` (typed, loud)
    when ``name`` is not registered — callers like
    ``EvaluationTask.cache_key`` rely on this to refuse minting cache
    keys for methods that cannot run.
    """
    _ensure_loaded()
    method = _REGISTRY.get(name)
    if method is None:
        raise UnknownMethodError(
            f"unknown sampling method {name!r}; registered: "
            f"{', '.join(list_methods()) or '(none)'}"
        )
    return method


def list_methods() -> tuple[str, ...]:
    """All registered method names, sorted."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY))


def method_entries() -> tuple[SamplingMethod, ...]:
    """All registered method instances, sorted by name."""
    _ensure_loaded()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))
