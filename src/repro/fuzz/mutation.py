"""Deterministic mutation space over workload-generator parameters.

A candidate is a function of ``(campaign seed, index)`` and *nothing
else* — no sequential RNG state threads between candidates — so a
resumed campaign regenerates candidate ``i`` identically whether or not
candidates ``0..i-1`` ran in this process. That property is what makes
checkpoint/resume a simple "skip already-scored indices" loop.

Mutations start from a random Table I catalog spec and perturb 2-5
knobs inside ranges the spec validator accepts, then clamp the
structural couplings (``alias_groups <= num_kernels``,
``num_invocations >= num_kernels``). Candidates optionally carry a
composed :class:`~repro.robustness.faults.FaultPlan` of data-surface
corruption, the same plans the resilience benchmark injects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.robustness.faults import FaultPlan, FaultSpec
from repro.utils.seeding import rng_for
from repro.workloads.catalog import all_specs
from repro.workloads.spec import WorkloadSpec

#: Continuous knobs drawn uniformly from [lo, hi].
UNIFORM_KNOBS: dict[str, tuple[float, float]] = {
    "invocation_skew": (0.0, 2.5),
    "metric_direction_sigma": (0.02, 1.5),
    "heterogeneity": (0.02, 1.5),
    "drift_fraction": (0.0, 0.85),
    "chrono_size_correlation": (0.0, 1.0),
    "dominant_kernel_share": (0.0, 0.9),
    "turing_biased_fraction": (0.0, 1.0),
    "measurement_noise_cov": (0.0, 0.15),
    "behavior.tier2_cov": (0.02, 0.6),
    "behavior.tier3_mode_cov": (0.0, 0.45),
    "behavior.tier3_count_exponent": (0.0, 2.5),
}

#: Scale-like knobs drawn log-uniformly from [lo, hi].
LOG_UNIFORM_KNOBS: dict[str, tuple[float, float]] = {
    "insn_kernel_sigma": (0.2, 2.5),
    "drift_factor": (0.05, 1.0),
    "turing_factor": (0.5, 2.0),
    "behavior.tier3_spread": (2.0, 150.0),
}

#: Integer knobs drawn from [lo, hi] inclusive.
INT_KNOBS: dict[str, tuple[int, int]] = {
    "behavior.tier3_modes": (2, 10),
    "num_kernels": (2, 40),
    "alias_groups": (1, 40),  # clamped to num_kernels after mutation
}

#: Redrawn wholesale rather than per-scalar.
COMPOSITE_KNOBS = ("tier_fractions",)

#: Data-surface fault modes candidates may compose (the ``task`` surface
#: — hang/crash/task_error — is chaos the *campaign* layers on, not part
#: of the candidate's identity).
DATA_FAULT_MODES = (
    "drop",
    "truncate",
    "duplicate",
    "nan",
    "negative",
    "cycle_noise",
    "clock_drift",
    "zero_cycles",
)


def mutable_knobs() -> tuple[str, ...]:
    """Every knob name the mutator may touch, sorted (deterministic)."""
    return tuple(
        sorted(
            [*UNIFORM_KNOBS, *LOG_UNIFORM_KNOBS, *INT_KNOBS, *COMPOSITE_KNOBS]
        )
    )


@dataclass(frozen=True)
class Candidate:
    """One fuzz candidate: a mutated spec plus its provenance."""

    index: int
    seed: str
    base_label: str
    spec: WorkloadSpec
    fault_plan: FaultPlan | None = None

    @property
    def label(self) -> str:
        return self.spec.label

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "base_label": self.base_label,
            "spec": self.spec.to_dict(),
            "fault_plan": plan_to_dict(self.fault_plan),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Candidate":
        return cls(
            index=int(payload["index"]),
            seed=str(payload["seed"]),
            base_label=str(payload["base_label"]),
            spec=WorkloadSpec.from_dict(payload["spec"]),
            fault_plan=plan_from_dict(payload.get("fault_plan")),
        )


def plan_to_dict(plan: FaultPlan | None) -> dict | None:
    """JSON-ready form of a fault plan (checkpoints, findings files)."""
    if plan is None:
        return None
    return {
        "seed": plan.seed,
        "specs": [{"mode": s.mode, "rate": s.rate} for s in plan.specs],
    }


def plan_from_dict(payload: dict | None) -> FaultPlan | None:
    if payload is None:
        return None
    return FaultPlan(
        specs=tuple(
            FaultSpec(mode=s["mode"], rate=float(s["rate"]))
            for s in payload["specs"]
        ),
        seed=int(payload["seed"]),
    )


def _flatten(payload: dict, prefix: str = "") -> dict:
    """``{"behavior": {"tier2_cov": x}}`` -> ``{"behavior.tier2_cov": x}``."""
    flat: dict = {}
    for key, value in payload.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, prefix=f"{dotted}."))
        else:
            flat[dotted] = value
    return flat


def _set_knob(fields: dict, knob: str, value: object) -> None:
    """Set a (possibly dotted) knob inside a ``WorkloadSpec.to_dict``."""
    if "." in knob:
        outer, _, inner = knob.partition(".")
        fields[outer] = dict(fields[outer])
        fields[outer][inner] = value
    else:
        fields[knob] = value


def get_knob(spec: WorkloadSpec, knob: str) -> object:
    """Read a (possibly dotted) knob off a spec."""
    target: object = spec
    for part in knob.split("."):
        target = getattr(target, part)
    return target


def _draw(rng: np.random.Generator, knob: str) -> object:
    if knob in UNIFORM_KNOBS:
        lo, hi = UNIFORM_KNOBS[knob]
        return float(lo + (hi - lo) * rng.random())
    if knob in LOG_UNIFORM_KNOBS:
        lo, hi = LOG_UNIFORM_KNOBS[knob]
        return float(np.exp(np.log(lo) + (np.log(hi) - np.log(lo)) * rng.random()))
    if knob in INT_KNOBS:
        lo, hi = INT_KNOBS[knob]
        return int(rng.integers(lo, hi + 1))
    if knob == "tier_fractions":
        raw = rng.random(3) + 0.05  # keep every tier plausible
        return [float(f) for f in raw / raw.sum()]
    raise KeyError(f"unknown mutation knob {knob!r}")


def _clamp_structure(fields: dict) -> None:
    """Re-establish cross-knob invariants after mutation."""
    kernels = int(fields["num_kernels"])
    fields["alias_groups"] = max(1, min(int(fields["alias_groups"]), kernels))
    fields["num_invocations"] = max(int(fields["num_invocations"]), kernels)
    # Renormalize in case a previous serialization drifted.
    fractions = [float(f) for f in fields["tier_fractions"]]
    total = sum(fractions)
    fields["tier_fractions"] = [f / total for f in fractions]


def candidate_spec(seed: str, index: int) -> tuple[WorkloadSpec, str]:
    """Deterministically mutate one catalog spec into a fuzz candidate.

    Returns the mutated spec (suite ``fuzz``, name ``<seed>-<index>``)
    plus the base catalog label it started from. Depends only on
    ``(seed, index)``.
    """
    rng = rng_for("fuzz", seed, "candidate", index)
    bases = sorted(all_specs(), key=lambda s: s.label)
    base = bases[int(rng.integers(len(bases)))]
    fields = base.to_dict()
    fields["suite"] = "fuzz"
    fields["name"] = f"{seed}-{index:04d}"
    knobs = mutable_knobs()
    count = 2 + int(rng.integers(4))  # 2..5 knobs per candidate
    chosen = rng.choice(len(knobs), size=min(count, len(knobs)), replace=False)
    for position in sorted(int(p) for p in chosen):
        knob = knobs[position]
        _set_knob(fields, knob, _draw(rng, knob))
    _clamp_structure(fields)
    return WorkloadSpec.from_dict(fields), base.label


def candidate_fault_plan(
    seed: str, index: int, fault_rate: float
) -> FaultPlan | None:
    """Optionally compose a data-corruption plan for candidate ``index``.

    With probability ``fault_rate`` the candidate carries 1-2 modes from
    :data:`DATA_FAULT_MODES` at small rates; plans are seeded by the
    candidate index so injection inside the workers is reproducible.
    """
    rng = rng_for("fuzz", seed, "faults", index)
    if fault_rate <= 0 or rng.random() >= fault_rate:
        return None
    count = 1 + int(rng.integers(2))
    chosen = rng.choice(len(DATA_FAULT_MODES), size=count, replace=False)
    specs = tuple(
        FaultSpec(
            mode=DATA_FAULT_MODES[int(position)],
            rate=float(0.01 + 0.14 * rng.random()),
        )
        for position in sorted(int(p) for p in chosen)
    )
    return FaultPlan(specs=specs, seed=index)


def make_candidate(seed: str, index: int, fault_rate: float = 0.35) -> Candidate:
    """Build candidate ``index`` of campaign ``seed`` (pure function)."""
    spec, base_label = candidate_spec(seed, index)
    return Candidate(
        index=index,
        seed=seed,
        base_label=base_label,
        spec=spec,
        fault_plan=candidate_fault_plan(seed, index, fault_rate),
    )
