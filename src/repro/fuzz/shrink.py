"""Greedy shrinking of fuzz findings to minimal reproducers.

A raw finding mutates several knobs and may drag a fault plan along; the
interesting signal is usually one or two of those. Shrinking walks a
deterministic proposal list — drop fault specs, reset each mutated knob
back to its base-catalog value, halve the structural size — and keeps
any simplification whose score stays above the retention floor. The
walk restarts from the head after every acceptance (a knob that could
not be reset before may become resettable once another is), so the
result is a local minimum of the proposal order, reached identically on
every run because proposals and evaluation are both deterministic.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from repro.fuzz.mutation import Candidate, _flatten, _set_knob
from repro.fuzz.scoring import CandidateScore
from repro.workloads.catalog import spec_for
from repro.workloads.spec import WorkloadSpec

#: A shrink keeps this fraction of the original score (but never less
#: than the campaign threshold) to count as "still reproduces".
RETENTION = 0.75


def _proposals(candidate: Candidate, base: WorkloadSpec) -> Iterator[Candidate]:
    """Simpler variants of ``candidate``, most aggressive first."""
    # 1) Shed the fault plan: whole plan, then one spec at a time.
    plan = candidate.fault_plan
    if plan is not None:
        yield replace(candidate, fault_plan=None)
        if len(plan.specs) > 1:
            for drop in range(len(plan.specs)):
                specs = tuple(
                    s for i, s in enumerate(plan.specs) if i != drop
                )
                yield replace(candidate, fault_plan=replace(plan, specs=specs))
    # 2) Reset each mutated knob to its base-catalog value.
    current = _flatten(candidate.spec.to_dict())
    target = _flatten(base.to_dict())
    for knob in sorted(current):
        if knob in ("name", "suite"):
            continue  # identity stays the candidate's
        if current[knob] == target[knob]:
            continue
        fields = candidate.spec.to_dict()
        _set_knob(fields, knob, target[knob])
        # Keep structural invariants when resetting coupled knobs.
        fields["alias_groups"] = max(
            1, min(int(fields["alias_groups"]), int(fields["num_kernels"]))
        )
        fields["num_invocations"] = max(
            int(fields["num_invocations"]), int(fields["num_kernels"])
        )
        try:
            yield replace(candidate, spec=WorkloadSpec.from_dict(fields))
        except ValueError:
            continue  # coupled reset left an invalid spec; skip it
    # 3) Halve the structural size (smaller reproducers run faster).
    spec = candidate.spec
    if spec.num_invocations > 4 * spec.num_kernels:
        fields = spec.to_dict()
        fields["num_invocations"] = max(
            spec.num_kernels, spec.num_invocations // 2
        )
        yield replace(candidate, spec=WorkloadSpec.from_dict(fields))
    if spec.num_kernels > 2:
        fields = spec.to_dict()
        fields["num_kernels"] = max(2, spec.num_kernels // 2)
        fields["alias_groups"] = min(
            int(fields["alias_groups"]), int(fields["num_kernels"])
        )
        yield replace(candidate, spec=WorkloadSpec.from_dict(fields))


def shrink_candidate(
    candidate: Candidate,
    original: CandidateScore,
    evaluate: Callable[[Candidate], CandidateScore | None],
    threshold: float,
    max_steps: int = 24,
) -> tuple[Candidate, CandidateScore, int]:
    """Greedily simplify ``candidate`` while it still scores adversarial.

    ``evaluate`` runs a candidate through the engine and scores it
    (``None`` = the task failed; such proposals are rejected). Returns
    the shrunk candidate, its score and the number of evaluations spent.
    The retention floor is ``max(threshold, RETENTION * original)``.
    """
    floor = max(threshold, RETENTION * original.score)
    current, current_score = candidate, original
    base = spec_for(candidate.base_label)
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for proposal in _proposals(current, base):
            if steps >= max_steps:
                break
            steps += 1
            score = evaluate(proposal)
            if score is not None and score.score >= floor:
                current, current_score = proposal, score
                improved = True
                break  # restart proposals from the simpler candidate
    return current, current_score, steps
