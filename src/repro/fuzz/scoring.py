"""Candidate scoring: prediction error + stratification-health violations.

The fuzzer hunts workloads that make samplers *wrong*, not merely slow,
so the score leads with the worst method's absolute prediction error.
Sieve's stratification-health gauges (:class:`~repro.observability.
attribution.StratumHealth`) then add a structural term: a candidate
whose strata violate the CoV target, park their representative far from
the stratum mean, or split lopsidedly is adversarial even at moderate
error — it sits where the method's assumptions bend, which is exactly
where small implementation changes regress first.

Everything here is pure float arithmetic on values the evaluation
already computed; identical results score identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.evaluation.runner import MethodResult
from repro.observability.attribution import ErrorAttribution


@dataclass(frozen=True)
class GaugeViolations:
    """Aggregated stratification-health violations for one evaluation.

    ``cov_drift`` sums the positive part of each stratum's CoV drift
    (how far above θ its dispersion sits); ``rep_distance`` is the worst
    representative's relative distance from its stratum mean;
    ``split_imbalance`` is ``1 - min(split_balance)`` (0 when every KDE
    split is balanced); ``strata`` counts strata violating any gauge.
    """

    cov_drift: float = 0.0
    rep_distance: float = 0.0
    split_imbalance: float = 0.0
    strata: int = 0

    def to_dict(self) -> dict:
        return {
            "cov_drift": self.cov_drift,
            "rep_distance": self.rep_distance,
            "split_imbalance": self.split_imbalance,
            "strata": self.strata,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GaugeViolations":
        return cls(
            cov_drift=float(payload["cov_drift"]),
            rep_distance=float(payload["rep_distance"]),
            split_imbalance=float(payload["split_imbalance"]),
            strata=int(payload["strata"]),
        )


@dataclass(frozen=True)
class ScoreWeights:
    """How strongly each gauge violation inflates the score."""

    cov_drift: float = 0.5
    rep_distance: float = 0.25
    split_imbalance: float = 0.25


def gauge_violations(attribution: ErrorAttribution | None) -> GaugeViolations:
    """Collapse an attribution's per-stratum health into violation totals."""
    if attribution is None or not attribution.health:
        return GaugeViolations()
    cov_drift = sum(max(0.0, h.cov_drift) for h in attribution.health)
    rep_distance = max(h.rep_distance for h in attribution.health)
    split_imbalance = max(
        0.0, 1.0 - min(h.split_balance for h in attribution.health)
    )
    strata = sum(
        1
        for h in attribution.health
        if h.cov_drift > 0.0 or h.rep_distance > 0.5 or h.split_balance < 0.1
    )
    return GaugeViolations(
        cov_drift=float(cov_drift),
        rep_distance=float(rep_distance),
        split_imbalance=float(split_imbalance),
        strata=strata,
    )


@dataclass(frozen=True)
class CandidateScore:
    """One candidate's adversarial score and its components."""

    score: float
    max_error: float
    worst_method: str
    errors: tuple[tuple[str, float], ...]  # (method, abs error), sorted
    violations: GaugeViolations

    def to_dict(self) -> dict:
        return {
            "score": self.score,
            "max_error": self.max_error,
            "worst_method": self.worst_method,
            "errors": {method: error for method, error in self.errors},
            "violations": self.violations.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CandidateScore":
        return cls(
            score=float(payload["score"]),
            max_error=float(payload["max_error"]),
            worst_method=str(payload["worst_method"]),
            errors=tuple(sorted(
                (str(m), float(e)) for m, e in payload["errors"].items()
            )),
            violations=GaugeViolations.from_dict(payload["violations"]),
        )


def score_results(
    results: Mapping[str, MethodResult],
    weights: ScoreWeights = ScoreWeights(),
) -> CandidateScore:
    """Score one candidate's method results (higher = more adversarial)."""
    errors = tuple(sorted((method, abs(r.error)) for method, r in results.items()))
    # Worst method: highest error, ties broken lexicographically (stable
    # across dict orderings).
    worst_method, max_error = max(errors, key=lambda item: (item[1], item[0]))
    sieve = results.get("sieve")
    violations = gauge_violations(sieve.attribution if sieve else None)
    score = (
        max_error
        + weights.cov_drift * violations.cov_drift
        + weights.rep_distance * violations.rep_distance
        + weights.split_imbalance * violations.split_imbalance
    )
    return CandidateScore(
        score=float(score),
        max_error=float(max_error),
        worst_method=worst_method,
        errors=errors,
        violations=violations,
    )
