"""Seeded fuzzing of the workload generator's parameter space.

The campaign (:mod:`repro.fuzz.campaign`) mutates catalog specs into
candidate workloads (:mod:`repro.fuzz.mutation`), runs every requested
sampling method on each through the resilient engine, scores candidates
by prediction error plus stratification-health gauge violations
(:mod:`repro.fuzz.scoring`), and greedily shrinks the worst offenders to
minimal reproducers (:mod:`repro.fuzz.shrink`). Survivors graduate into
the committed adversarial suite (:mod:`repro.workloads.adversarial`).
"""

from repro.fuzz.campaign import CampaignResult, FuzzConfig, run_campaign
from repro.fuzz.mutation import Candidate, make_candidate
from repro.fuzz.scoring import CandidateScore, GaugeViolations, ScoreWeights, score_results
from repro.fuzz.shrink import shrink_candidate

__all__ = [
    "Candidate",
    "CampaignResult",
    "CandidateScore",
    "FuzzConfig",
    "GaugeViolations",
    "ScoreWeights",
    "make_candidate",
    "run_campaign",
    "score_results",
    "shrink_candidate",
]
