"""The fuzzing campaign: generate → evaluate → score → shrink → report.

A campaign is identified by ``(seed, budget)`` and is deterministic end
to end: candidate ``i`` is a pure function of ``(seed, i)``
(:mod:`repro.fuzz.mutation`), evaluation is the engine's seeded
pipeline, scoring is arithmetic, and shrinking walks a deterministic
proposal order. Two runs of the same campaign therefore write
byte-identical ``findings.json`` files — the property the CI smoke job
pins — and a killed campaign resumes from its checkpoint by simply
skipping already-scored indices.

Candidates run through :meth:`~repro.evaluation.engine.EvaluationEngine.
run_isolated`, so a candidate that hangs or crashes the worker (chaos
mode injects exactly those) costs one deadline or one task, never the
campaign.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.evaluation.engine import (
    EngineConfig,
    EvaluationEngine,
    EvaluationTask,
    RetryPolicy,
)
from repro.fuzz.mutation import Candidate, make_candidate, plan_to_dict
from repro.fuzz.scoring import CandidateScore, ScoreWeights, score_results
from repro.fuzz.shrink import shrink_candidate
from repro.observability import manifest as obs_manifest
from repro.observability import metrics
from repro.observability.spans import span
from repro.robustness import diagnostics
from repro.robustness.faults import FaultPlan, parse_fault_plan
from repro.utils.errors import CheckpointError, FuzzError
from repro.utils.hashing import stable_hash
from repro.utils.validation import require

CHECKPOINT_SCHEMA = 1
FINDINGS_SCHEMA = 1


@dataclass(frozen=True)
class FuzzConfig:
    """Everything that identifies and sizes one fuzzing campaign."""

    seed: str = "sieve-fuzz"
    budget: int = 32
    methods: tuple[str, ...] = ("sieve", "pks")
    max_invocations: int = 2000
    #: Score above which a candidate is a finding.
    threshold: float = 0.12
    #: Findings to shrink and report (highest score first).
    top_k: int = 3
    #: Probability a candidate composes a data-corruption fault plan.
    fault_rate: float = 0.35
    #: Task-surface chaos (``"crash:0.2,hang:0.05"``) layered on every
    #: candidate — exercises the engine's isolation, never the data.
    chaos: str | None = None
    shrink_steps: int = 24
    jobs: int = 1
    deadline_s: float | None = 120.0
    max_attempts: int = 3
    weights: ScoreWeights = ScoreWeights()
    out_dir: Path = field(default_factory=lambda: Path("fuzz-out"))
    #: Stop (checkpointing) after scoring this many new candidates —
    #: the hook the resume tests use to simulate a killed campaign.
    stop_after: int | None = None

    def __post_init__(self) -> None:
        require(self.budget >= 1, "budget must be >= 1", FuzzError)
        require(len(self.methods) >= 1, "need at least one method", FuzzError)
        require(self.threshold >= 0, "threshold must be >= 0", FuzzError)
        require(self.top_k >= 0, "top_k must be >= 0", FuzzError)
        require(0 <= self.fault_rate <= 1, "fault_rate in [0, 1]", FuzzError)
        require(self.jobs >= 1, "jobs must be >= 1", FuzzError)

    def fingerprint(self) -> str:
        """Identity of the campaign's *candidate stream* and scoring.

        A checkpoint written under one fingerprint cannot resume a
        campaign with a different one (the scores would not be
        comparable). The budget is deliberately excluded: extending a
        campaign's budget keeps every already-scored candidate valid.
        """
        return stable_hash(
            "fuzz-campaign",
            self.seed,
            list(self.methods),
            self.max_invocations,
            self.threshold,
            self.fault_rate,
            self.chaos,
            self.weights,
        )

    def chaos_plan(self) -> tuple | None:
        """Parsed task-surface chaos specs (validated once)."""
        if not self.chaos:
            return None
        plan = parse_fault_plan(self.chaos, seed=0)
        for spec in plan.specs:
            require(
                spec.mode in ("hang", "crash", "task_error"),
                f"chaos accepts task-surface modes only, got {spec.mode!r}",
                FuzzError,
            )
        return plan.specs


@dataclass
class CampaignResult:
    """What a campaign produced (or where it stopped)."""

    findings: list[dict]
    scored: int
    failed: int
    findings_path: Path | None
    checkpoint_path: Path
    stopped_early: bool = False


def _task_for(candidate: Candidate, config: FuzzConfig) -> EvaluationTask:
    """The engine task evaluating one candidate (chaos layered on)."""
    plan = candidate.fault_plan
    chaos_specs = config.chaos_plan()
    if chaos_specs:
        base_specs = plan.specs if plan is not None else ()
        plan = FaultPlan(specs=(*base_specs, *chaos_specs), seed=candidate.index)
    return EvaluationTask(
        label=candidate.label,
        max_invocations=config.max_invocations,
        fault_plan=plan,
        methods=config.methods,
        spec=candidate.spec,
    )


def _register_in_perfstore(kind: str, config: FuzzConfig, payload: dict) -> None:
    """Attach a campaign artifact to the perf version store (env-gated).

    No-op unless ``SIEVE_PERFSTORE_DIR`` is set; failures degrade to a
    diagnostic — fuzz campaigns must never die on telemetry.
    """
    from repro.perfstore.store import maybe_attach

    maybe_attach(kind, f"{config.seed}-{config.fingerprint()[:8]}", payload)


def _atomic_write_json(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
    with os.fdopen(fd, "w") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _load_checkpoint(path: Path, config: FuzzConfig) -> dict[int, dict]:
    """Scored-candidate records from a previous run of this campaign."""
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            f"unreadable checkpoint {path}: {exc}", path=str(path)
        ) from exc
    if payload.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            "checkpoint schema mismatch",
            path=str(path),
            found=payload.get("schema"),
            expected=CHECKPOINT_SCHEMA,
        )
    if payload.get("fingerprint") != config.fingerprint():
        raise CheckpointError(
            "checkpoint belongs to a different campaign configuration "
            "(seed/methods/threshold/chaos changed); delete it or match "
            "the original flags",
            path=str(path),
        )
    return {int(index): record for index, record in payload["scored"].items()}


def _save_checkpoint(
    path: Path, config: FuzzConfig, scored: dict[int, dict]
) -> None:
    _atomic_write_json(
        path,
        {
            "schema": CHECKPOINT_SCHEMA,
            "fingerprint": config.fingerprint(),
            "seed": config.seed,
            "scored": {str(index): scored[index] for index in sorted(scored)},
        },
    )


def _score_outcomes(
    engine: EvaluationEngine,
    candidates: list[Candidate],
    config: FuzzConfig,
    policy: RetryPolicy,
) -> list[dict]:
    """Evaluate a batch of candidates; one scored record per candidate."""
    tasks = [_task_for(candidate, config) for candidate in candidates]
    outcomes = engine.run_isolated(tasks, policy)
    records = []
    for candidate, outcome in zip(candidates, outcomes):
        record = {
            "index": candidate.index,
            "label": candidate.label,
            "base_label": candidate.base_label,
            "status": outcome.status,
            "score": None,
        }
        if outcome.ok:
            record["score"] = score_results(
                outcome.results, config.weights
            ).to_dict()
        metrics.inc("fuzz.candidates", status=outcome.status)
        records.append(record)
    return records


def run_campaign(
    config: FuzzConfig,
    engine: EvaluationEngine | None = None,
    resume: bool = False,
) -> CampaignResult:
    """Run (or resume) a fuzzing campaign; see the module docstring.

    Writes ``checkpoint.json`` after every batch and, on completion,
    ``findings.json`` (byte-deterministic for a fixed config) under
    ``config.out_dir``.
    """
    out_dir = Path(config.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    checkpoint_path = out_dir / "checkpoint.json"
    findings_path = out_dir / "findings.json"
    if engine is None:
        engine = EvaluationEngine(
            EngineConfig(
                jobs=config.jobs,
                quarantine_path=out_dir / "quarantine.json",
            )
        )
    policy = RetryPolicy(
        max_attempts=config.max_attempts,
        deadline_s=config.deadline_s,
        backoff_base_s=0.01,
    )
    scored = _load_checkpoint(checkpoint_path, config) if resume else {}
    if not resume and checkpoint_path.exists():
        diagnostics.emit(
            "fuzz",
            f"overwriting existing checkpoint {checkpoint_path} "
            "(pass --resume to continue it)",
        )
    with span("fuzz.campaign", seed=config.seed, budget=config.budget):
        obs_manifest.record_event(
            "fuzz.campaign_start",
            seed=config.seed,
            budget=config.budget,
            resumed=len(scored),
            chaos=config.chaos,
        )
        remaining = [i for i in range(config.budget) if i not in scored]
        batch_size = max(4, 2 * engine.config.jobs)
        new_scores = 0
        stopped_early = False
        with span("fuzz.scoring", candidates=len(remaining)):
            for start in range(0, len(remaining), batch_size):
                if config.stop_after is not None and new_scores >= config.stop_after:
                    stopped_early = True
                    break
                batch_indices = remaining[start : start + batch_size]
                if config.stop_after is not None:
                    batch_indices = batch_indices[: config.stop_after - new_scores]
                candidates = [
                    make_candidate(config.seed, i, config.fault_rate)
                    for i in batch_indices
                ]
                for record in _score_outcomes(engine, candidates, config, policy):
                    scored[record["index"]] = record
                    new_scores += 1
                _save_checkpoint(checkpoint_path, config, scored)
            else:
                stopped_early = (
                    config.stop_after is not None
                    and len(scored) < config.budget
                )
        failed = sum(1 for r in scored.values() if r["status"] != "ok")
        if stopped_early:
            obs_manifest.record_event(
                "fuzz.campaign_paused", scored=len(scored), budget=config.budget
            )
            _register_in_perfstore(
                "fuzz-checkpoint",
                config,
                {
                    "seed": config.seed,
                    "fingerprint": config.fingerprint(),
                    "scored": len(scored),
                    "budget": config.budget,
                    "checkpoint": str(checkpoint_path),
                },
            )
            return CampaignResult(
                findings=[],
                scored=len(scored),
                failed=failed,
                findings_path=None,
                checkpoint_path=checkpoint_path,
                stopped_early=True,
            )
        # --- select findings -------------------------------------------
        hits = [
            record
            for record in scored.values()
            if record["score"] is not None
            and record["score"]["score"] >= config.threshold
        ]
        hits.sort(key=lambda r: (-r["score"]["score"], r["index"]))
        hits = hits[: config.top_k]
        # --- shrink each finding to a minimal reproducer ----------------
        findings = []
        with span("fuzz.shrink", findings=len(hits)):
            for record in hits:
                candidate = make_candidate(
                    config.seed, record["index"], config.fault_rate
                )
                original = CandidateScore.from_dict(record["score"])

                def evaluate(proposal: Candidate) -> CandidateScore | None:
                    outcome = engine.run_isolated(
                        [_task_for(proposal, config)], policy
                    )[0]
                    if not outcome.ok:
                        return None
                    return score_results(outcome.results, config.weights)

                shrunk, shrunk_score, steps = shrink_candidate(
                    candidate,
                    original,
                    evaluate,
                    config.threshold,
                    max_steps=config.shrink_steps,
                )
                finding = {
                    "index": record["index"],
                    "label": record["label"],
                    "base_label": record["base_label"],
                    "score": record["score"],
                    "candidate": candidate.to_dict(),
                    "shrunk": shrunk.to_dict(),
                    "shrunk_score": shrunk_score.to_dict(),
                    "shrink_steps": steps,
                    "repro": (
                        f"sieve-repro fuzz --seed {config.seed} "
                        f"--budget {config.budget} "
                        f"--threshold {config.threshold:g} "
                        f"--max-invocations {config.max_invocations}"
                    ),
                }
                findings.append(finding)
                metrics.inc("fuzz.findings")
                obs_manifest.record_event(
                    "fuzz.finding",
                    index=record["index"],
                    label=record["label"],
                    score=record["score"]["score"],
                    shrunk_score=shrunk_score.score,
                )
        # --- report -----------------------------------------------------
        statuses: dict[str, int] = {}
        for record in scored.values():
            statuses[record["status"]] = statuses.get(record["status"], 0) + 1
        payload = {
            "schema": FINDINGS_SCHEMA,
            "campaign": {
                "seed": config.seed,
                "budget": config.budget,
                "methods": list(config.methods),
                "max_invocations": config.max_invocations,
                "threshold": config.threshold,
                "top_k": config.top_k,
                "fault_rate": config.fault_rate,
                "chaos": config.chaos,
                "fingerprint": config.fingerprint(),
            },
            "summary": {
                "scored": len(scored),
                "ok": len(scored) - failed,
                "failed": failed,
                "statuses": statuses,
                "findings": len(findings),
            },
            "findings": findings,
        }
        _atomic_write_json(findings_path, payload)
        _register_in_perfstore("fuzz-findings", config, payload)
        obs_manifest.record_event(
            "fuzz.campaign_complete",
            scored=len(scored),
            failed=failed,
            findings=len(findings),
        )
        return CampaignResult(
            findings=findings,
            scored=len(scored),
            failed=failed,
            findings_path=findings_path,
            checkpoint_path=checkpoint_path,
        )


def load_findings(path: Path | str) -> dict:
    """Load and schema-check a findings file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise FuzzError(f"unreadable findings file {path}: {exc}") from exc
    require(
        payload.get("schema") == FINDINGS_SCHEMA,
        f"findings schema mismatch in {path}",
        FuzzError,
    )
    return payload


def candidate_results(
    engine: EvaluationEngine, candidate: Candidate, config: FuzzConfig
) -> Mapping[str, object] | None:
    """Convenience: evaluate one candidate, returning method results."""
    outcome = engine.run_isolated(
        [_task_for(candidate, config)],
        RetryPolicy(
            max_attempts=config.max_attempts,
            deadline_s=config.deadline_s,
            backoff_base_s=0.01,
        ),
    )[0]
    return outcome.results if outcome.ok else None
