"""Statistical diff of two run *sets* — the noise-aware regression gate.

Where :func:`repro.observability.manifest.diff_manifests` compares two
single manifests with a ratio threshold, :func:`gate_manifests` compares
*samples*: every stored run of the baseline version against every run of
the current one, one :class:`GateRow` per metric (total wall, each
stage's wall, each workload's ``*_error`` fields, each numeric
aggregate), each carrying a verdict from
:func:`repro.perfstore.stats.degradation_test` plus both distribution
summaries so reports can show bootstrap CIs.

Stages present on only one side get explicit ``new`` / ``removed`` rows
instead of a silent skip or a near-zero division: ``removed`` (the
baseline spent real time there and the current run never entered it) is
a failure like the legacy diff's ``stage-missing``; ``new`` is
informational — a freshly added stage has no baseline to regress from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.observability import metrics
from repro.observability.manifest import RunManifest
from repro.perfstore.stats import (
    DistributionSummary,
    GateVerdict,
    degradation_test,
    summarize,
)
from repro.utils.validation import require

#: Row severities: only ``fail`` rows gate a build.
SEVERITY_FAIL = "fail"
SEVERITY_INFO = "info"


@dataclass(frozen=True)
class GateRow:
    """One metric's comparison across the two run sets."""

    #: "total-wall" | "stage-wall" | "stage-new" | "stage-removed"
    #: | "accuracy" | "aggregate" | "workload-new" | "workload-removed"
    kind: str
    name: str
    #: "regressed" | "improved" | "indistinguishable" | "new" | "removed"
    verdict: str
    severity: str
    detail: str
    baseline: DistributionSummary | None = None
    current: DistributionSummary | None = None
    p_slower: float | None = None
    p_faster: float | None = None
    #: "rank" | "single-sample" | "presence"
    mode: str = "presence"

    @property
    def failed(self) -> bool:
        return self.severity == SEVERITY_FAIL

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "verdict": self.verdict,
            "severity": self.severity,
            "detail": self.detail,
            "baseline": self.baseline.to_dict() if self.baseline else None,
            "current": self.current.to_dict() if self.current else None,
            "p_slower": self.p_slower,
            "p_faster": self.p_faster,
            "mode": self.mode,
        }


@dataclass(frozen=True)
class GateReport:
    """Everything the gate decided, plus enough context to render it."""

    baseline_label: str
    current_label: str
    n_baseline: int
    n_current: int
    rows: tuple[GateRow, ...] = ()
    figure: str = ""

    @property
    def failures(self) -> tuple[GateRow, ...]:
        return tuple(row for row in self.rows if row.failed)

    @property
    def regressed(self) -> bool:
        return bool(self.failures)

    @property
    def verdict(self) -> str:
        """Overall: worst row wins (regressed > improved > indistinguishable)."""
        if self.regressed:
            return "regressed"
        if any(row.verdict == "improved" for row in self.rows):
            return "improved"
        return "indistinguishable"

    def to_dict(self) -> dict:
        return {
            "baseline": self.baseline_label,
            "current": self.current_label,
            "n_baseline": self.n_baseline,
            "n_current": self.n_current,
            "figure": self.figure,
            "verdict": self.verdict,
            "rows": [row.to_dict() for row in self.rows],
        }


def _verdict_row(
    kind: str, name: str, verdict: GateVerdict, *, fail_on: str = "regressed"
) -> GateRow:
    return GateRow(
        kind=kind,
        name=name,
        verdict=verdict.verdict,
        severity=SEVERITY_FAIL if verdict.verdict == fail_on else SEVERITY_INFO,
        detail=verdict.detail,
        baseline=verdict.baseline,
        current=verdict.current,
        p_slower=verdict.p_slower,
        p_faster=verdict.p_faster,
        mode=verdict.mode,
    )


def _stage_walls(runs: Sequence[RunManifest]) -> dict[str, list[float]]:
    walls: dict[str, list[float]] = {}
    for manifest in runs:
        for stage in manifest.stages:
            walls.setdefault(stage.name, []).append(stage.wall_s)
    return walls


def _workload_errors(
    runs: Sequence[RunManifest],
) -> dict[str, dict[str, list[float]]]:
    """``{workload: {error_key: [value per run where present]}}``."""
    table: dict[str, dict[str, list[float]]] = {}
    for manifest in runs:
        for row in manifest.workloads:
            workload = str(row.get("workload"))
            for key, value in row.items():
                if key.endswith("_error") and isinstance(value, (int, float)):
                    table.setdefault(workload, {}).setdefault(key, []).append(
                        float(value)
                    )
    return table


def _aggregate_values(runs: Sequence[RunManifest]) -> dict[str, list[float]]:
    values: dict[str, list[float]] = {}
    for manifest in runs:
        for key, value in manifest.aggregates.items():
            if isinstance(value, (int, float)):
                values.setdefault(key, []).append(float(value))
    return values


def gate_manifests(
    baseline: Sequence[RunManifest],
    current: Sequence[RunManifest],
    *,
    alpha: float = 0.05,
    min_ratio: float = 1.10,
    min_seconds: float = 0.05,
    fallback_slowdown: float = 1.25,
    accuracy_min_ratio: float = 1.01,
    accuracy_min_abs: float = 1e-6,
    baseline_label: str = "baseline",
    current_label: str = "current",
    figure: str = "",
) -> GateReport:
    """Gate ``current`` runs against ``baseline`` runs statistically.

    Wall metrics regress when the rank test is significant at ``alpha``
    *and* the median moved by ``min_ratio``× and ``min_seconds``
    absolute; accuracy/aggregate metrics use the (much tighter)
    ``accuracy_*`` floors because the pipeline is seed-deterministic —
    any systematic shift is algorithmic drift, not noise. With a single
    run on either side every row degrades to the labeled
    ``single-sample`` heuristic (``fallback_slowdown``).

    The overall verdict lands on the ``perfstore.gate`` metric.
    """
    baseline = list(baseline)
    current = list(current)
    require(bool(baseline), "gate_manifests needs at least one baseline run")
    require(bool(current), "gate_manifests needs at least one current run")
    rows: list[GateRow] = []

    def wall_test(base_vals: Sequence[float], cur_vals: Sequence[float]) -> GateVerdict:
        return degradation_test(
            base_vals,
            cur_vals,
            alpha=alpha,
            min_ratio=min_ratio,
            min_abs=min_seconds,
            fallback_slowdown=fallback_slowdown,
        )

    def accuracy_test(
        base_vals: Sequence[float], cur_vals: Sequence[float]
    ) -> GateVerdict:
        return degradation_test(
            base_vals,
            cur_vals,
            alpha=alpha,
            min_ratio=accuracy_min_ratio,
            min_abs=accuracy_min_abs,
            fallback_slowdown=fallback_slowdown,
        )

    rows.append(
        _verdict_row(
            "total-wall",
            "total",
            wall_test(
                [m.total_wall_s for m in baseline],
                [m.total_wall_s for m in current],
            ),
        )
    )

    base_stages = _stage_walls(baseline)
    cur_stages = _stage_walls(current)
    for name in sorted(set(base_stages) | set(cur_stages)):
        base_vals = base_stages.get(name)
        cur_vals = cur_stages.get(name)
        if base_vals and cur_vals:
            rows.append(_verdict_row("stage-wall", name, wall_test(base_vals, cur_vals)))
        elif base_vals:
            summary = summarize(base_vals)
            significant = summary.median > min_seconds
            rows.append(
                GateRow(
                    kind="stage-removed",
                    name=name,
                    verdict="removed",
                    severity=SEVERITY_FAIL if significant else SEVERITY_INFO,
                    detail=(
                        f"stage ran in baseline (median {summary.median:.3f}s over "
                        f"{summary.n} run(s)) but never in current"
                    ),
                    baseline=summary,
                    current=None,
                )
            )
        else:
            summary = summarize(cur_vals)
            rows.append(
                GateRow(
                    kind="stage-new",
                    name=name,
                    verdict="new",
                    severity=SEVERITY_INFO,
                    detail=(
                        f"stage is new in current (median {summary.median:.3f}s over "
                        f"{summary.n} run(s)); no baseline to compare"
                    ),
                    baseline=None,
                    current=summary,
                )
            )

    base_workloads = _workload_errors(baseline)
    cur_workloads = _workload_errors(current)
    for workload in sorted(set(base_workloads) | set(cur_workloads)):
        base_metrics = base_workloads.get(workload)
        cur_metrics = cur_workloads.get(workload)
        if base_metrics and cur_metrics:
            for key in sorted(set(base_metrics) | set(cur_metrics)):
                base_vals = base_metrics.get(key)
                cur_vals = cur_metrics.get(key)
                name = f"{workload}.{key}"
                if base_vals and cur_vals:
                    rows.append(
                        _verdict_row("accuracy", name, accuracy_test(base_vals, cur_vals))
                    )
                elif base_vals:
                    rows.append(
                        GateRow(
                            kind="accuracy",
                            name=name,
                            verdict="removed",
                            severity=SEVERITY_FAIL,
                            detail="metric present in baseline runs but absent from current",
                            baseline=summarize(base_vals),
                        )
                    )
                else:
                    rows.append(
                        GateRow(
                            kind="accuracy",
                            name=name,
                            verdict="new",
                            severity=SEVERITY_INFO,
                            detail="metric is new in current runs",
                            current=summarize(cur_vals),
                        )
                    )
        elif base_metrics:
            rows.append(
                GateRow(
                    kind="workload-removed",
                    name=workload,
                    verdict="removed",
                    severity=SEVERITY_FAIL,
                    detail="workload present in baseline runs but absent from current",
                )
            )
        else:
            rows.append(
                GateRow(
                    kind="workload-new",
                    name=workload,
                    verdict="new",
                    severity=SEVERITY_INFO,
                    detail="workload is new in current runs",
                )
            )

    base_aggregates = _aggregate_values(baseline)
    cur_aggregates = _aggregate_values(current)
    for key in sorted(set(base_aggregates) | set(cur_aggregates)):
        base_vals = base_aggregates.get(key)
        cur_vals = cur_aggregates.get(key)
        if base_vals and cur_vals:
            rows.append(_verdict_row("aggregate", key, accuracy_test(base_vals, cur_vals)))
        elif base_vals:
            rows.append(
                GateRow(
                    kind="aggregate",
                    name=key,
                    verdict="removed",
                    severity=SEVERITY_FAIL,
                    detail="aggregate present in baseline runs but absent from current",
                    baseline=summarize(base_vals),
                )
            )
        else:
            rows.append(
                GateRow(
                    kind="aggregate",
                    name=key,
                    verdict="new",
                    severity=SEVERITY_INFO,
                    detail="aggregate is new in current runs",
                    current=summarize(cur_vals),
                )
            )

    report = GateReport(
        baseline_label=baseline_label,
        current_label=current_label,
        n_baseline=len(baseline),
        n_current=len(current),
        rows=tuple(rows),
        figure=figure,
    )
    metrics.inc("perfstore.gate", verdict=report.verdict)
    return report


def _ci(summary: DistributionSummary | None) -> str:
    if summary is None:
        return "-"
    if summary.n == 1:
        return f"{summary.median:.4g}"
    return f"{summary.median:.4g} CI[{summary.ci_low:.4g}, {summary.ci_high:.4g}]"


def render_gate_report(report: GateReport, *, verbose: bool = False) -> str:
    """Human-readable gate report.

    Non-verbose output shows every decided row (regressed / improved /
    new / removed) and folds the indistinguishable bulk into one count;
    ``verbose=True`` prints everything.
    """
    lines = [
        f"perf gate: {report.current_label} (n={report.n_current}) vs "
        f"{report.baseline_label} (n={report.n_baseline})"
        + (f" [{report.figure}]" if report.figure else "")
    ]
    quiet = 0
    for row in report.rows:
        if not verbose and row.verdict == "indistinguishable":
            quiet += 1
            continue
        marker = "FAIL" if row.failed else row.verdict
        lines.append(
            f"  [{row.kind}] {row.name}: {marker} — {row.detail} "
            f"({_ci(row.baseline)} -> {_ci(row.current)})"
        )
    if quiet:
        lines.append(f"  ({quiet} metric(s) statistically indistinguishable)")
    lines.append(f"verdict: {report.verdict.upper()}")
    return "\n".join(lines)
