"""Perun-style performance version store.

Profiles (run manifests) attach to VCS versions; multiple runs per
version are first-class, so degradation checks between versions are
*statistical* (rank tests + bootstrap confidence intervals over repeated
runs) instead of single-sample ratio thresholds.

Layers:

* :mod:`repro.perfstore.store` — content-addressed object store keyed by
  ``(version, figure, config_fingerprint)`` with an append-only run log
  per key and a compact index;
* :mod:`repro.perfstore.stats` — distribution summaries (median, MAD,
  bootstrap CIs) and the noise-aware degradation test;
* :mod:`repro.perfstore.gate` — statistical diff of two run *sets*
  (per-stage walls, per-workload accuracy, aggregates) with explicit
  new/removed-stage reporting;
* :mod:`repro.perfstore.lineage` — "when did stratify get slower":
  version-ordered logs and bisect hints;
* :mod:`repro.perfstore.promote` — one-command promotion of fuzz
  findings into the committed adversarial suite.
"""

from __future__ import annotations

from repro.perfstore.gate import GateReport, GateRow, gate_manifests, render_gate_report
from repro.perfstore.lineage import (
    bisect_hint,
    extract_metric,
    parse_selector,
    perf_log,
    render_bisect_hint,
    render_perf_log,
    version_order,
)
from repro.perfstore.promote import promote_findings, render_promotion
from repro.perfstore.stats import (
    DistributionSummary,
    GateVerdict,
    bootstrap_ci,
    degradation_test,
    mann_whitney_p,
    summarize,
)
from repro.perfstore.store import (
    IngestReceipt,
    PerfStore,
    StoredRun,
    current_version,
    default_store_dir,
    figure_from_command,
    maybe_record,
    register_metrics,
    store_from_env,
)

__all__ = [
    "DistributionSummary",
    "GateReport",
    "GateRow",
    "GateVerdict",
    "IngestReceipt",
    "PerfStore",
    "StoredRun",
    "bisect_hint",
    "bootstrap_ci",
    "current_version",
    "default_store_dir",
    "degradation_test",
    "extract_metric",
    "figure_from_command",
    "gate_manifests",
    "mann_whitney_p",
    "maybe_record",
    "parse_selector",
    "perf_log",
    "promote_findings",
    "register_metrics",
    "render_bisect_hint",
    "render_gate_report",
    "render_perf_log",
    "render_promotion",
    "store_from_env",
    "summarize",
    "version_order",
]
