"""Distribution summaries and the noise-aware degradation test.

The store keeps *every* run of a version, so a comparison is between two
samples, not two numbers. Three pieces:

* :func:`summarize` — median/MAD plus a deterministic bootstrap
  confidence interval over the median (seeded through
  :mod:`repro.utils.seeding`, so summaries are reproducible);
* :func:`mann_whitney_p` — one-sided Mann-Whitney rank test, *exact*
  over all label assignments for small samples (ties handled by the
  usual 0.5 credit), normal approximation with tie correction beyond;
* :func:`degradation_test` — the gate: "regressed" only when the rank
  test is significant **and** the median moved past a practical floor
  (relative and absolute), so scheduler noise on one run can neither
  fire the gate nor hide a real slowdown. With a single sample on
  either side it falls back to the legacy ratio heuristic and says so.

The exact test's granularity sets the floor on detectable significance:
with 3 runs per side the smallest one-sided p is 1/20 = 0.05, which is
why the default ``alpha`` is inclusive at 0.05 — three cleanly slower
runs are enough to fail a build, two are not.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from itertools import combinations
from typing import Mapping, Sequence

import numpy as np

from repro.utils.seeding import rng_for
from repro.utils.validation import require

#: Exact-test cutoff: enumerate all C(n, n_a) assignments while the pooled
#: sample stays at most this large (C(16, 8) = 12870 — trivially cheap).
EXACT_POOL_LIMIT = 16

#: Bootstrap defaults: resamples of the median at 95% confidence.
DEFAULT_RESAMPLES = 400
DEFAULT_CONFIDENCE = 0.95


@dataclass(frozen=True)
class DistributionSummary:
    """What the store knows about one metric across a version's runs."""

    n: int
    mean: float
    median: float
    #: Median absolute deviation (robust spread; 0.0 for n <= 1).
    mad: float
    min: float
    max: float
    #: Bootstrap CI over the median; degenerate (== median) for n == 1.
    ci_low: float
    ci_high: float
    confidence: float = DEFAULT_CONFIDENCE

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DistributionSummary":
        return cls(**{k: payload[k] for k in cls.__dataclass_fields__ if k in payload})

    def overlaps(self, other: "DistributionSummary") -> bool:
        """Whether the two bootstrap CIs intersect."""
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high


def bootstrap_ci(
    values: Sequence[float],
    *,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: str = "perfstore-bootstrap",
) -> tuple[float, float]:
    """Percentile bootstrap CI over the median, deterministically seeded.

    The RNG is derived from the *values themselves* (plus ``seed``), so
    the same sample always yields the same interval — summaries are
    stable artifacts, not run-to-run noise.
    """
    data = np.asarray(list(values), dtype=np.float64)
    require(data.size >= 1, "bootstrap_ci needs at least one value")
    if data.size == 1:
        return float(data[0]), float(data[0])
    rng = rng_for(seed, data.size, *(repr(float(v)) for v in data))
    draws = rng.integers(0, data.size, size=(resamples, data.size))
    medians = np.median(data[draws], axis=1)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(medians, [tail, 1.0 - tail])
    return float(low), float(high)


def summarize(
    values: Sequence[float],
    *,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: str = "perfstore-bootstrap",
) -> DistributionSummary:
    """A :class:`DistributionSummary` of ``values`` (order-invariant)."""
    data = sorted(float(v) for v in values)
    require(len(data) >= 1, "summarize needs at least one value")
    arr = np.asarray(data)
    median = float(np.median(arr))
    ci_low, ci_high = bootstrap_ci(
        data, confidence=confidence, resamples=resamples, seed=seed
    )
    return DistributionSummary(
        n=len(data),
        mean=float(arr.mean()),
        median=median,
        mad=float(np.median(np.abs(arr - median))) if len(data) > 1 else 0.0,
        min=data[0],
        max=data[-1],
        ci_low=ci_low,
        ci_high=ci_high,
        confidence=confidence,
    )


def _u_statistic(current: np.ndarray, baseline: np.ndarray) -> float:
    """Mann-Whitney U counting current-beats-baseline pairs (0.5 ties)."""
    greater = (current[:, None] > baseline[None, :]).sum()
    ties = (current[:, None] == baseline[None, :]).sum()
    return float(greater) + 0.5 * float(ties)


def mann_whitney_p(
    current: Sequence[float], baseline: Sequence[float]
) -> float:
    """One-sided p-value for H1: ``current`` is stochastically *greater*.

    Exact over every assignment of pooled values to the two labels when
    the pooled sample is small (ties included — the permutation
    distribution is computed on the observed pooled values, not a
    continuity assumption); normal approximation with tie correction
    otherwise. Symmetric use: pass the arguments swapped to test
    "current is smaller".
    """
    cur = np.asarray(list(current), dtype=np.float64)
    base = np.asarray(list(baseline), dtype=np.float64)
    require(cur.size >= 1 and base.size >= 1, "mann_whitney_p needs both samples")
    u_observed = _u_statistic(cur, base)
    pooled = np.concatenate([cur, base])
    n_cur, n_total = cur.size, pooled.size
    if n_total <= EXACT_POOL_LIMIT:
        at_least = 0
        total = 0
        for picks in combinations(range(n_total), n_cur):
            mask = np.zeros(n_total, dtype=bool)
            mask[list(picks)] = True
            u = _u_statistic(pooled[mask], pooled[~mask])
            total += 1
            # Tolerance: U is a multiple of 0.5; avoid float-compare drama.
            if u >= u_observed - 1e-9:
                at_least += 1
        return at_least / total
    # Normal approximation with tie correction (large samples only).
    n_base = base.size
    mean_u = n_cur * n_base / 2.0
    _, tie_counts = np.unique(pooled, return_counts=True)
    tie_term = float(((tie_counts**3 - tie_counts)).sum()) / (
        n_total * (n_total - 1)
    )
    var_u = n_cur * n_base / 12.0 * ((n_total + 1) - tie_term)
    if var_u <= 0.0:
        return 1.0 if u_observed <= mean_u else 0.0
    z = (u_observed - mean_u - 0.5) / math.sqrt(var_u)
    return 0.5 * math.erfc(z / math.sqrt(2.0))


@dataclass(frozen=True)
class GateVerdict:
    """The degradation test's answer for one metric."""

    #: ``regressed`` | ``improved`` | ``indistinguishable``
    verdict: str
    baseline: DistributionSummary
    current: DistributionSummary
    #: One-sided p-values (None on the single-sample fallback path).
    p_slower: float | None
    p_faster: float | None
    #: Which decision procedure ran: ``rank`` or ``single-sample``.
    mode: str
    detail: str

    @property
    def regressed(self) -> bool:
        return self.verdict == "regressed"

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["baseline"] = self.baseline.to_dict()
        payload["current"] = self.current.to_dict()
        return payload


def degradation_test(
    baseline: Sequence[float],
    current: Sequence[float],
    *,
    alpha: float = 0.05,
    min_ratio: float = 1.10,
    min_abs: float = 0.02,
    fallback_slowdown: float = 1.25,
    seed: str = "perfstore-bootstrap",
) -> GateVerdict:
    """Noise-aware replacement for the single-sample slowdown threshold.

    With >= 2 runs on both sides, ``regressed`` requires *both*
    statistical significance (one-sided Mann-Whitney ``p <= alpha``) and
    practical significance (median moved by ``min_ratio``x and
    ``min_abs`` in absolute terms); ``improved`` is the mirror image.
    Everything else is ``indistinguishable`` — including a genuinely
    significant shift too small to matter. With a single run on either
    side the rank test has no power, so the verdict falls back to the
    legacy ratio heuristic (``fallback_slowdown`` + ``min_abs``) and
    labels itself ``single-sample``.
    """
    base_summary = summarize(baseline, seed=seed)
    cur_summary = summarize(current, seed=seed)
    base_med, cur_med = base_summary.median, cur_summary.median
    delta = cur_med - base_med

    def practical(direction: int) -> bool:
        moved = delta if direction > 0 else -delta
        slower_med = cur_med if direction > 0 else base_med
        faster_med = base_med if direction > 0 else cur_med
        return moved >= min_abs and slower_med >= faster_med * min_ratio

    if base_summary.n >= 2 and cur_summary.n >= 2:
        p_slower = mann_whitney_p(current, baseline)
        p_faster = mann_whitney_p(baseline, current)
        if p_slower <= alpha and practical(+1):
            verdict = "regressed"
            detail = (
                f"median {base_med:.4f} -> {cur_med:.4f} "
                f"({cur_med / base_med:.2f}x, p={p_slower:.3g} <= {alpha:g})"
                if base_med > 0
                else f"median {base_med:.4f} -> {cur_med:.4f} (p={p_slower:.3g})"
            )
        elif p_faster <= alpha and practical(-1):
            verdict = "improved"
            detail = (
                f"median {base_med:.4f} -> {cur_med:.4f} (p={p_faster:.3g})"
            )
        else:
            verdict = "indistinguishable"
            detail = (
                f"median {base_med:.4f} -> {cur_med:.4f} "
                f"(p_slower={p_slower:.3g}, p_faster={p_faster:.3g}; "
                f"practical floor {min_ratio:.2f}x / {min_abs:g})"
            )
        return GateVerdict(
            verdict=verdict,
            baseline=base_summary,
            current=cur_summary,
            p_slower=p_slower,
            p_faster=p_faster,
            mode="rank",
            detail=detail,
        )

    # Single-sample fallback: the old --max-slowdown heuristic, labeled.
    if base_med > 0 and cur_med > base_med * fallback_slowdown and delta > min_abs:
        verdict = "regressed"
    elif cur_med > 0 and base_med > cur_med * fallback_slowdown and -delta > min_abs:
        verdict = "improved"
    else:
        verdict = "indistinguishable"
    ratio = f"{cur_med / base_med:.2f}x" if base_med > 0 else "n/a"
    return GateVerdict(
        verdict=verdict,
        baseline=base_summary,
        current=cur_summary,
        p_slower=None,
        p_faster=None,
        mode="single-sample",
        detail=(
            f"median {base_med:.4f} -> {cur_med:.4f} ({ratio}; "
            f"single-sample heuristic, limit {fallback_slowdown:.2f}x)"
        ),
    )
