"""One-command promotion of fuzz findings into the adversarial suite.

``sieve-repro fuzz promote --findings <dir>/findings.json`` turns each
shrunk finding into an :class:`repro.workloads.adversarial.
AdversarialEntry`: the spec is re-homed into the ``adversarial`` suite
under a collision-free name, the per-method errors are re-measured live
(pinned errors must reproduce on *this* checkout, not the campaign's),
and provenance — campaign seed, candidate index, score, repro command —
lands in the entry's note. Entries are appended to the promoted-catalog
sidecar (:func:`repro.workloads.adversarial.promoted_catalog_path`),
which the suite loads dynamically, and the promotion is registered in
the perfstore as an attachment when ``SIEVE_PERFSTORE_DIR`` is set.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from repro.fuzz.campaign import load_findings
from repro.fuzz.mutation import Candidate
from repro.observability import metrics
from repro.perfstore.store import maybe_attach
from repro.robustness import diagnostics
from repro.utils.errors import PromotionError
from repro.workloads.adversarial import (
    AdversarialEntry,
    _all_entries,
    load_promoted_entries,
    promoted_catalog_path,
    save_promoted_entries,
)


def _unique_name(name: str, taken: set[str]) -> str:
    """``name``, or ``name-p2``/``-p3``... until it no longer collides."""
    if name not in taken:
        return name
    for i in range(2, 1000):
        candidate = f"{name}-p{i}"
        if candidate not in taken:
            return candidate
    raise PromotionError("cannot uniquify promoted entry name", name=name)


def promote_findings(
    findings_path: Path | str,
    *,
    engine=None,  # duck-typed EvaluationEngine
    catalog_path: Path | str | None = None,
    limit: int = 0,
    min_score: float = 0.0,
) -> list[AdversarialEntry]:
    """Promote the shrunk findings in ``findings_path``; see module doc.

    Findings already represented in the suite — same campaign
    fingerprint and candidate index — are skipped, so promotion is
    idempotent. ``limit`` caps how many findings promote (0 = all,
    highest score first); ``min_score`` drops weak ones. Returns the
    newly promoted entries (possibly empty).
    """
    from repro.evaluation.engine import (
        EngineConfig,
        EvaluationEngine,
        EvaluationTask,
    )

    payload = load_findings(findings_path)
    campaign = payload.get("campaign", {})
    campaign_id = str(
        campaign.get("fingerprint") or campaign.get("seed") or "unknown-campaign"
    )
    findings = sorted(
        payload.get("findings", []),
        key=lambda f: -float(f.get("shrunk_score", f["score"])["score"]),
    )
    if min_score > 0.0:
        findings = [
            f
            for f in findings
            if float(f.get("shrunk_score", f["score"])["score"]) >= min_score
        ]
    if limit > 0:
        findings = findings[:limit]
    if not findings:
        return []

    catalog_path = (
        Path(catalog_path) if catalog_path is not None else promoted_catalog_path()
    )
    existing_promoted = list(load_promoted_entries(catalog_path))
    already = {
        (entry.campaign, entry.source_index)
        for entry in existing_promoted
        if entry.campaign
    }
    taken = {entry.spec.name for entry in _all_entries()}

    if engine is None:
        engine = EvaluationEngine(EngineConfig(jobs=1, use_cache=False))

    methods = tuple(campaign.get("methods", ("sieve", "pks")))
    max_invocations = int(campaign.get("max_invocations", 1200))

    promoted: list[AdversarialEntry] = []
    for finding in findings:
        key = (campaign_id, int(finding["index"]))
        if key in already:
            diagnostics.emit(
                "promote",
                f"skipping finding #{finding['index']}: already promoted "
                f"from campaign {campaign_id[:12]}",
                severity="info",
            )
            continue
        shrunk = Candidate.from_dict(finding["shrunk"])
        name = _unique_name(shrunk.spec.name, taken)
        spec = replace(shrunk.spec, name=name, suite="adversarial")
        task = EvaluationTask(
            label=spec.label,
            max_invocations=max_invocations,
            fault_plan=shrunk.fault_plan,
            methods=methods,
            spec=spec,
        )
        try:
            results = engine.run([task])[0]
        except Exception as exc:
            raise PromotionError(
                f"finding #{finding['index']} no longer evaluates: {exc}",
                label=spec.label,
            ) from exc
        expected_errors = {
            method: abs(results[method].error) for method in sorted(methods)
        }
        score = float(finding.get("shrunk_score", finding["score"])["score"])
        entry = AdversarialEntry(
            spec=spec,
            max_invocations=max_invocations,
            expected_errors=expected_errors,
            fault_plan=shrunk.fault_plan,
            campaign=campaign_id,
            source_index=int(finding["index"]),
            note=(
                f"Promoted from fuzz campaign seed={campaign.get('seed')!r} "
                f"candidate #{finding['index']} (shrunk from "
                f"{finding['base_label']}, score {score:.4f}, "
                f"{finding.get('shrink_steps', 0)} shrink steps). "
                f"Repro: {finding.get('repro', 'n/a')}"
            ),
        )
        promoted.append(entry)
        existing_promoted.append(entry)
        taken.add(name)
        already.add(key)
        metrics.inc("fuzz.promoted")

    if promoted:
        save_promoted_entries(existing_promoted, catalog_path)
        maybe_attach(
            "promotion",
            f"{campaign_id[:16]}",
            {
                "campaign": dict(campaign),
                "promoted": [entry.to_dict() for entry in promoted],
                "catalog": str(catalog_path),
            },
        )
    return promoted


def render_promotion(promoted: list[AdversarialEntry]) -> str:
    if not promoted:
        return "no new findings to promote (all skipped or below --min-score)"
    lines = [f"promoted {len(promoted)} finding(s) into the adversarial suite:"]
    for entry in promoted:
        errors = ", ".join(
            f"{method}={value:.4f}" for method, value in entry.expected_errors.items()
        )
        lines.append(f"  {entry.label}: {errors} (from candidate #{entry.source_index})")
    lines.append(f"catalog: {promoted_catalog_path()}")
    return "\n".join(lines)
