"""Content-addressed, VCS-keyed store of performance/accuracy profiles.

Layout (everything JSON, everything written atomically)::

    <root>/
      index.json                      compact rebuildable index
      objects/<aa>/<sha256>.json      content-addressed RunManifest blobs
      versions/<version>/<figure>/<fingerprint>/runs.jsonl
                                      append-only run log (one line per run)
      versions/<version>/attachments/<kind>/<name>.json
                                      non-manifest artifacts (fuzz findings,
                                      campaign checkpoints)

A *version* is normally a commit SHA (``git rev-parse HEAD``), but any
label works — the store never requires git. The run log is append-only
and multiple runs per ``(version, figure, fingerprint)`` are first-class:
that is what turns a CI gate from a point comparison into a statistical
one. Objects are deduplicated by content hash, so re-ingesting the same
manifest appends a log line but stores no new bytes.

``figure`` names what was measured (``fig3``, ``scale``, ``service``,
...); the ``fingerprint`` hashes the manifest's config so runs are only
ever compared against runs of the same experiment shape.
"""

from __future__ import annotations

import json
import os
import subprocess
import tempfile
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Iterable, Mapping

from repro.observability import metrics
from repro.observability.manifest import RunManifest
from repro.robustness import diagnostics
from repro.utils.errors import PerfStoreError
from repro.utils.hashing import stable_hash
from repro.utils.validation import require

INDEX_SCHEMA = 1

#: Environment knobs: where the store lives, and a version override for
#: environments where HEAD is not the thing being measured (CI merge
#: commits, detached worktrees).
STORE_DIR_ENV = "SIEVE_PERFSTORE_DIR"
VERSION_ENV = "SIEVE_PERFSTORE_VERSION"

#: Figures whose names are not ``fig<N>`` but are first-class manifests.
_KNOWN_FIGURES = frozenset({"scale", "streaming", "service", "fuzz"})


def default_store_dir() -> Path:
    """``$SIEVE_PERFSTORE_DIR`` or ``~/.cache/sieve-repro/perfstore``."""
    configured = os.environ.get(STORE_DIR_ENV)
    if configured:
        return Path(configured)
    return Path.home() / ".cache" / "sieve-repro" / "perfstore"


def _git(*args: str) -> str | None:
    """Best-effort git invocation; None when git or the repo is absent."""
    try:
        proc = subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    out = proc.stdout.strip()
    return out or None


def current_version() -> str:
    """The version new profiles attach to: env override, then HEAD.

    Outside a git checkout the package source fingerprint stands in, so
    the store still works (keys just stop being commit SHAs).
    """
    override = os.environ.get(VERSION_ENV)
    if override:
        return override
    head = _git("rev-parse", "HEAD")
    if head:
        return head
    from repro.observability.manifest import package_fingerprint

    return f"nogit-{package_fingerprint()[:12]}"


def figure_from_command(command: str) -> str:
    """Derive the store's figure key from a manifest's command string.

    ``"bench fig3"`` and ``"sieve-repro fig3"`` both map to ``fig3``;
    ``"bench scale"`` to ``scale``. Anything unrecognized is sanitized
    wholesale so every manifest has *some* stable figure key.
    """
    tokens = [t for t in command.split() if t]
    if tokens:
        last = tokens[-1]
        if last in _KNOWN_FIGURES or (
            last.startswith("fig") and last[3:].isdigit()
        ):
            return last
    slug = "".join(c if c.isalnum() else "-" for c in command.lower()).strip("-")
    return slug or "unknown"


def config_fingerprint(figure: str, config: Mapping) -> str:
    """Identity of an experiment shape: figure + manifest config."""
    return stable_hash("perfstore-config", figure, dict(config))[:16]


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
    with os.fdopen(fd, "w") as handle:
        handle.write(text)
    os.replace(tmp, path)


def _append_line(path: Path, line: str) -> None:
    """Atomic append: one O_APPEND write per log line."""
    path.parent.mkdir(parents=True, exist_ok=True)
    data = (line.rstrip("\n") + "\n").encode("utf-8")
    fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


@dataclass(frozen=True)
class IngestReceipt:
    """What :meth:`PerfStore.ingest` recorded."""

    version: str
    figure: str
    fingerprint: str
    object_id: str
    #: 1-based position in this key's append-only run log.
    seq: int
    #: Whether the object was new (False = content-dedup hit).
    stored_object: bool


@dataclass(frozen=True)
class StoredRun:
    """One line of a run log, with its manifest loaded."""

    version: str
    figure: str
    fingerprint: str
    seq: int
    object_id: str
    created: str
    manifest: RunManifest = field(compare=False)


class PerfStore:
    """See the module docstring. All paths live under ``root``."""

    def __init__(self, root: Path | str):
        self.root = Path(root)

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    # ------------------------------------------------------------- index

    def _load_index(self) -> dict:
        if not self.index_path.exists():
            return {"schema": INDEX_SCHEMA, "next_order": 1, "versions": {}}
        try:
            payload = json.loads(self.index_path.read_text())
        except (OSError, ValueError) as exc:
            raise PerfStoreError(
                f"unreadable perfstore index: {exc}", store=str(self.root)
            ) from exc
        if payload.get("schema") != INDEX_SCHEMA:
            raise PerfStoreError(
                "perfstore index schema mismatch",
                store=str(self.root),
                found=payload.get("schema"),
                expected=INDEX_SCHEMA,
            )
        return payload

    def _save_index(self, index: dict) -> None:
        ordered = {
            "schema": INDEX_SCHEMA,
            "next_order": index.get("next_order", 1),
            "versions": {
                version: {
                    "order": entry["order"],
                    "figures": {
                        figure: {
                            fp: dict(stats)
                            for fp, stats in sorted(entry["figures"][figure].items())
                        }
                        for figure in sorted(entry["figures"])
                    },
                }
                for version, entry in sorted(
                    index["versions"].items(), key=lambda kv: kv[1]["order"]
                )
            },
        }
        _atomic_write_text(
            self.index_path, json.dumps(ordered, indent=2, sort_keys=False) + "\n"
        )

    # ------------------------------------------------------------ ingest

    def _object_path(self, object_id: str) -> Path:
        return self.root / "objects" / object_id[:2] / f"{object_id}.json"

    def _log_path(self, version: str, figure: str, fingerprint: str) -> Path:
        return self.root / "versions" / version / figure / fingerprint / "runs.jsonl"

    def ingest(
        self,
        manifest: RunManifest,
        *,
        figure: str | None = None,
        version: str | None = None,
    ) -> IngestReceipt:
        """Record one run under ``(version, figure, config_fingerprint)``.

        The manifest blob is content-addressed (identical re-ingests
        store nothing new); the run log always grows by one line, so
        repeated runs of one commit accumulate into a sample.
        """
        figure = figure or figure_from_command(manifest.command)
        version = version or current_version()
        require(bool(version), "perfstore version must be non-empty", PerfStoreError)
        require(
            "/" not in version and "/" not in figure,
            "version and figure must not contain '/'",
            PerfStoreError,
        )
        fingerprint = config_fingerprint(figure, manifest.config)
        blob = manifest.to_json()
        object_id = sha256(blob.encode("utf-8")).hexdigest()
        object_path = self._object_path(object_id)
        stored_object = not object_path.exists()
        if stored_object:
            _atomic_write_text(object_path, blob)
        log_path = self._log_path(version, figure, fingerprint)
        seq = self._log_length(log_path) + 1
        _append_line(
            log_path,
            json.dumps(
                {
                    "seq": seq,
                    "object": object_id,
                    "created": manifest.created,
                },
                sort_keys=True,
            ),
        )
        index = self._load_index()
        entry = index["versions"].setdefault(
            version, {"order": index["next_order"], "figures": {}}
        )
        if entry["order"] == index["next_order"]:
            index["next_order"] += 1
        stats = entry["figures"].setdefault(figure, {}).setdefault(
            fingerprint, {"runs": 0, "last_object": ""}
        )
        stats["runs"] = seq
        stats["last_object"] = object_id
        self._save_index(index)
        metrics.inc("perfstore.ingest", figure=figure)
        return IngestReceipt(
            version=version,
            figure=figure,
            fingerprint=fingerprint,
            object_id=object_id,
            seq=seq,
            stored_object=stored_object,
        )

    @staticmethod
    def _log_length(path: Path) -> int:
        if not path.exists():
            return 0
        with path.open() as handle:
            return sum(1 for line in handle if line.strip())

    # ------------------------------------------------------------ lookup

    def versions(self) -> list[str]:
        """Stored versions in first-ingest order (oldest first)."""
        index = self._load_index()
        return [
            version
            for version, _ in sorted(
                index["versions"].items(), key=lambda kv: kv[1]["order"]
            )
        ]

    def figures(self, version: str) -> list[str]:
        index = self._load_index()
        entry = index["versions"].get(version)
        return sorted(entry["figures"]) if entry else []

    def fingerprints(self, version: str, figure: str) -> list[str]:
        index = self._load_index()
        entry = index["versions"].get(version)
        if not entry:
            return []
        return sorted(entry["figures"].get(figure, {}))

    def summary(self) -> dict[str, dict[str, int]]:
        """``{version: {figure: total_runs}}`` in first-ingest order."""
        index = self._load_index()
        return {
            version: {
                figure: sum(stats["runs"] for stats in fps.values())
                for figure, fps in entry["figures"].items()
            }
            for version, entry in sorted(
                index["versions"].items(), key=lambda kv: kv[1]["order"]
            )
        }

    def load_object(self, object_id: str) -> RunManifest:
        path = self._object_path(object_id)
        try:
            return RunManifest.from_json(path.read_text())
        except (OSError, ValueError, KeyError) as exc:
            raise PerfStoreError(
                f"unreadable perfstore object {object_id[:12]}: {exc}",
                store=str(self.root),
            ) from exc

    def runs(
        self,
        version: str,
        figure: str,
        fingerprint: str | None = None,
    ) -> list[StoredRun]:
        """Every stored run for the key, log order (ingest order).

        With ``fingerprint=None`` and exactly one fingerprint stored for
        ``(version, figure)``, that one is used; with several, runs from
        all of them are concatenated in sorted-fingerprint order (the
        caller is asking for "everything this commit has for fig3").
        """
        fps = (
            [fingerprint]
            if fingerprint is not None
            else self.fingerprints(version, figure)
        )
        found: list[StoredRun] = []
        for fp in fps:
            log_path = self._log_path(version, figure, fp)
            if not log_path.exists():
                continue
            for line in log_path.read_text().splitlines():
                if not line.strip():
                    continue
                record = json.loads(line)
                found.append(
                    StoredRun(
                        version=version,
                        figure=figure,
                        fingerprint=fp,
                        seq=int(record["seq"]),
                        object_id=record["object"],
                        created=record.get("created", ""),
                        manifest=self.load_object(record["object"]),
                    )
                )
        metrics.inc("perfstore.lookup", result="hit" if found else "miss")
        return found

    def latest_version(self, figure: str | None = None) -> str | None:
        """Most recently first-ingested version (optionally having ``figure``)."""
        for version in reversed(self.versions()):
            if figure is None or figure in self.figures(version):
                return version
        return None

    # ----------------------------------------------------------- resolve

    def resolve(self, rev: str) -> str:
        """Map a revision (SHA, prefix, branch, ``HEAD~2``...) to a stored version.

        Exact stored labels win; then ``git rev-parse`` (so symbolic
        revs work in a checkout); then unique-prefix match against
        stored versions. Unknown revisions raise :class:`PerfStoreError`
        listing what *is* stored.
        """
        stored = self.versions()
        if rev in stored:
            return rev
        resolved = _git("rev-parse", "--verify", "--quiet", f"{rev}^{{commit}}")
        if resolved and resolved in stored:
            return resolved
        candidates = [
            v for v in stored if v.startswith(rev) or (resolved and v.startswith(resolved))
        ]
        if len(candidates) == 1:
            return candidates[0]
        if len(candidates) > 1:
            raise PerfStoreError(
                f"revision {rev!r} is ambiguous in the perfstore",
                store=str(self.root),
                candidates=",".join(c[:12] for c in candidates),
            )
        known = ", ".join(v[:12] for v in stored) or "(empty store)"
        raise PerfStoreError(
            f"revision {rev!r} has no stored profile; known versions: {known}",
            store=str(self.root),
        )

    # ------------------------------------------------------- attachments

    def attach(
        self,
        kind: str,
        name: str,
        payload: Mapping,
        *,
        version: str | None = None,
    ) -> Path:
        """Store a non-manifest JSON artifact (fuzz findings, checkpoints)
        under the version, atomically. Overwrites the same (kind, name)."""
        version = version or current_version()
        safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in name)
        path = (
            self.root / "versions" / version / "attachments" / kind / f"{safe}.json"
        )
        _atomic_write_text(
            path, json.dumps(dict(payload), indent=2, sort_keys=True) + "\n"
        )
        metrics.inc("perfstore.ingest", figure=f"attachment:{kind}")
        return path

    def attachments(self, version: str, kind: str) -> dict[str, dict]:
        """All attachments of ``kind`` for ``version``, keyed by name."""
        directory = self.root / "versions" / version / "attachments" / kind
        if not directory.is_dir():
            return {}
        return {
            path.stem: json.loads(path.read_text())
            for path in sorted(directory.glob("*.json"))
        }


def store_from_env(default: Path | str | None = None) -> PerfStore:
    """A store at ``$SIEVE_PERFSTORE_DIR`` (or ``default``/the cache dir)."""
    configured = os.environ.get(STORE_DIR_ENV)
    if configured:
        return PerfStore(configured)
    return PerfStore(default if default is not None else default_store_dir())


def maybe_record(
    manifest: RunManifest, *, figure: str | None = None
) -> IngestReceipt | None:
    """Auto-record hook: ingest when ``SIEVE_PERFSTORE_DIR`` is set.

    Benches and smoke scripts call this after writing ``BENCH_*.json``;
    failures degrade to a diagnostic — recording telemetry must never
    fail the measured run.
    """
    directory = os.environ.get(STORE_DIR_ENV)
    if not directory:
        return None
    try:
        receipt = PerfStore(directory).ingest(manifest, figure=figure)
    except Exception as exc:  # noqa: BLE001 — telemetry must not kill runs
        diagnostics.emit("perfstore", f"auto-record failed: {exc!r}")
        return None
    diagnostics.emit(
        "perfstore",
        f"recorded {receipt.figure} run {receipt.seq} for "
        f"{receipt.version[:12]} ({directory})",
        severity="info",
    )
    return receipt


def maybe_attach(kind: str, name: str, payload: Mapping) -> Path | None:
    """Auto-attach hook for non-manifest artifacts (same env gate)."""
    directory = os.environ.get(STORE_DIR_ENV)
    if not directory:
        return None
    try:
        return PerfStore(directory).attach(kind, name, payload)
    except Exception as exc:  # noqa: BLE001
        diagnostics.emit("perfstore", f"auto-attach failed: {exc!r}")
        return None


def register_metrics() -> None:
    """Zero-register the perfstore counters so exporters surface them
    before the first ingest/lookup/gate (a service that never touched
    the store still shows ``perfstore_*_total 0`` in ``/v1/metrics``)."""
    metrics.inc("perfstore.ingest", 0)
    for result in ("hit", "miss"):
        metrics.inc("perfstore.lookup", 0, result=result)
    for verdict in ("regressed", "improved", "indistinguishable"):
        metrics.inc("perfstore.gate", 0, verdict=verdict)
