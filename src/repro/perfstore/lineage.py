"""Walking stored versions: "when did stratify get slower?".

The store keys runs by version (commit SHA); this module orders those
versions — by git ancestry when a checkout is available, by first-ingest
order otherwise — and answers two questions over that order:

* :func:`perf_log` — a per-version table of one metric's distribution
  (median, MAD, bootstrap CI), oldest first; and
* :func:`bisect_hint` — the first version-to-version transition whose
  degradation test says ``regressed``, i.e. the commit range a real
  ``git bisect`` should start from.

Metrics are named by *selector* strings shared with the CLI:
``total`` (total wall), ``stage:<name>`` (a stage's wall),
``agg:<key>`` (a numeric aggregate), ``workload:<name>.<key>``
(a per-workload ``*_error`` field).
"""

from __future__ import annotations

from typing import Sequence

from repro.observability.manifest import RunManifest
from repro.perfstore.stats import degradation_test, summarize
from repro.perfstore.store import PerfStore, _git
from repro.utils.errors import PerfStoreError


def parse_selector(selector: str) -> tuple[str, str]:
    """Split a selector into ``(kind, argument)``; validates the kind."""
    if selector == "total":
        return "total", ""
    for prefix in ("stage", "agg", "workload"):
        if selector.startswith(prefix + ":"):
            arg = selector[len(prefix) + 1 :]
            if not arg:
                raise PerfStoreError(f"empty {prefix} selector", selector=selector)
            return prefix, arg
    raise PerfStoreError(
        "unknown metric selector (expected total, stage:<name>, agg:<key> "
        "or workload:<name>.<key>)",
        selector=selector,
    )


def extract_metric(manifest: RunManifest, selector: str) -> float | None:
    """The selector's value in one run, or None when the run lacks it."""
    kind, arg = parse_selector(selector)
    if kind == "total":
        return manifest.total_wall_s
    if kind == "stage":
        stage = manifest.stage(arg)
        return stage.wall_s if stage is not None else None
    if kind == "agg":
        value = manifest.aggregates.get(arg)
        return float(value) if isinstance(value, (int, float)) else None
    workload, _, key = arg.partition(".")
    if not key:
        raise PerfStoreError(
            "workload selector needs workload:<name>.<key>", selector=selector
        )
    for row in manifest.workloads:
        if str(row.get("workload")) == workload:
            value = row.get(key)
            return float(value) if isinstance(value, (int, float)) else None
    return None


def version_order(store: PerfStore, figure: str | None = None) -> list[str]:
    """Stored versions oldest-first: git topo order when resolvable,
    first-ingest order for anything git does not know about."""
    stored = [
        v
        for v in store.versions()
        if figure is None or figure in store.figures(v)
    ]
    history = _git("rev-list", "--topo-order", "--reverse", "HEAD")
    if not history:
        return stored
    ranked = {sha: i for i, sha in enumerate(history.splitlines())}
    known = [v for v in stored if v in ranked]
    unknown = [v for v in stored if v not in ranked]
    return sorted(known, key=ranked.__getitem__) + unknown


def _metric_values(store: PerfStore, version: str, figure: str, selector: str) -> list[float]:
    values = [
        value
        for run in store.runs(version, figure)
        if (value := extract_metric(run.manifest, selector)) is not None
    ]
    return values


def perf_log(
    store: PerfStore,
    figure: str,
    *,
    selector: str = "total",
    limit: int = 0,
) -> list[dict]:
    """Per-version distribution of one metric, oldest first.

    ``limit`` keeps only the newest N versions (0 = all). Versions whose
    runs lack the metric entirely still appear (``n == 0``) so gaps in a
    lineage are visible rather than silently compacted.
    """
    parse_selector(selector)
    entries: list[dict] = []
    for version in version_order(store, figure):
        values = _metric_values(store, version, figure, selector)
        entries.append(
            {
                "version": version,
                "figure": figure,
                "selector": selector,
                "n": len(values),
                "summary": summarize(values).to_dict() if values else None,
            }
        )
    if limit > 0:
        entries = entries[-limit:]
    return entries


def bisect_hint(
    store: PerfStore,
    figure: str,
    *,
    selector: str = "total",
    alpha: float = 0.05,
    min_ratio: float = 1.10,
    min_abs: float = 0.02,
) -> dict:
    """First regressed version-to-version transition for the metric.

    Runs the degradation test on every consecutive pair of stored
    versions (in lineage order) and reports each transition's verdict;
    ``first_regression`` names the ``(good, bad)`` pair to hand to
    ``git bisect``, or None when the lineage never regresses.
    """
    parse_selector(selector)
    ordered = version_order(store, figure)
    if len(ordered) < 2:
        raise PerfStoreError(
            "bisect-hint needs at least two stored versions",
            store=str(store.root),
            figure=figure,
            stored=len(ordered),
        )
    transitions: list[dict] = []
    first_regression: dict | None = None
    for older, newer in zip(ordered, ordered[1:]):
        base_vals = _metric_values(store, older, figure, selector)
        cur_vals = _metric_values(store, newer, figure, selector)
        if not base_vals or not cur_vals:
            transitions.append(
                {
                    "from": older,
                    "to": newer,
                    "verdict": "no-data",
                    "detail": f"metric missing ({len(base_vals)} vs {len(cur_vals)} runs)",
                }
            )
            continue
        verdict = degradation_test(
            base_vals, cur_vals, alpha=alpha, min_ratio=min_ratio, min_abs=min_abs
        )
        transitions.append(
            {
                "from": older,
                "to": newer,
                "verdict": verdict.verdict,
                "mode": verdict.mode,
                "detail": verdict.detail,
            }
        )
        if first_regression is None and verdict.verdict == "regressed":
            first_regression = transitions[-1]
    return {
        "figure": figure,
        "selector": selector,
        "transitions": transitions,
        "first_regression": first_regression,
    }


def render_perf_log(entries: Sequence[dict]) -> str:
    """Fixed-width text table for ``sieve-repro perf log``."""
    if not entries:
        return "(no stored versions)"
    lines = [
        f"{'version':<14} {'n':>3} {'median':>12} {'mad':>10} "
        f"{'ci-low':>12} {'ci-high':>12}"
    ]
    for entry in entries:
        summary = entry["summary"]
        if summary is None:
            lines.append(f"{entry['version'][:12]:<14} {0:>3} {'(no data)':>12}")
            continue
        lines.append(
            f"{entry['version'][:12]:<14} {summary['n']:>3} "
            f"{summary['median']:>12.4f} {summary['mad']:>10.4f} "
            f"{summary['ci_low']:>12.4f} {summary['ci_high']:>12.4f}"
        )
    return "\n".join(lines)


def render_bisect_hint(hint: dict) -> str:
    lines = [f"bisect hint for {hint['figure']} [{hint['selector']}]:"]
    for transition in hint["transitions"]:
        lines.append(
            f"  {transition['from'][:12]} -> {transition['to'][:12]}: "
            f"{transition['verdict']} — {transition['detail']}"
        )
    first = hint["first_regression"]
    if first:
        lines.append(
            f"first regression between {first['from'][:12]} (good) and "
            f"{first['to'][:12]} (bad) — start `git bisect` there"
        )
    else:
        lines.append("no regressed transition found")
    return "\n".join(lines)
