"""Experiment drivers: declarative specs, one thin driver per figure.

The unifying abstraction is :class:`ExperimentSpec` — *which methods*
(registry names or configured :class:`~repro.methods.MethodRequest`\\ s)
run on *which workloads* (explicit labels and/or whole suites) under
*which cap and fault plan*. A single :func:`run_experiment` executes any
spec through the evaluation engine, so every figure driver reduces to
"build spec, post-process rows":

* Figures 3/4/6/8 are ``compare_methods`` (the default Sieve-vs-PKS
  spec) plus an aggregate function;
* Figure 5 is one spec with three aliased PKS requests (one per
  selection policy) and Sieve;
* Figure 10 is one spec with one aliased Sieve request per theta;
* Figure 9 runs the default comparison, then re-predicts each
  selection on a second architecture.

Each driver takes an optional ``max_invocations`` cap (tests use small
caps; benches run the full Table I scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.baselines.pks import PKS_SELECTION_POLICIES, PksConfig
from repro.core.config import SieveConfig
from repro.evaluation.context import build_context
from repro.evaluation.engine import (
    EngineConfig,
    EvaluationEngine,
    EvaluationTask,
)
from repro.evaluation.metrics import harmonic_mean, relative_speedup_error
from repro.evaluation.runner import (
    MethodResult,
    hardware_speedup_between,
    predicted_speedup_between,
    sieve_tier_fractions,
)
from repro.gpu.arch import TURING_RTX2080TI
from repro.methods import MethodRequest
from repro.profiling.metrics import PKS_METRICS
from repro.robustness.faults import FaultPlan
from repro.utils.errors import EngineError
from repro.utils.validation import require
from repro.workloads.catalog import (
    CHALLENGING_SUITES,
    SIMPLE_SUITES,
    all_specs,
    specs_for_suites,
)
from repro.workloads.generator import generate

#: Fig 9 excludes MLPerf and Cactus' rfl ("Due to infrastructure
#: limitations on the RTX 2080Ti we were unable to run the MLPerf
#: workloads as well as Cactus' rfl").
RELATIVE_STUDY_LABELS: tuple[str, ...] = (
    "cactus/gru",
    "cactus/gst",
    "cactus/gms",
    "cactus/lmc",
    "cactus/lmr",
    "cactus/dcg",
    "cactus/lgt",
    "cactus/nst",
    "cactus/spt",
)


def _challenging_labels() -> list[str]:
    return [spec.label for spec in specs_for_suites(CHALLENGING_SUITES)]


def _simple_labels() -> list[str]:
    return [spec.label for spec in specs_for_suites(SIMPLE_SUITES)]


# --------------------------------------------------------------------- #
# The declarative experiment layer


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative experiment: methods x workloads x cap x fault plan.

    ``methods`` entries are registry names (``"sieve"``) or configured
    :class:`~repro.methods.MethodRequest`\\ s; aliases disambiguate
    several requests of the same method (Figure 5 runs three PKS
    configurations side by side). Workloads come from explicit
    ``labels``, whole ``suites``, or both (labels first, suite
    expansion after, duplicates dropped).

    A spec is pure data — hashable, comparable, trivially serialized —
    and :meth:`tasks` lowers it onto engine tasks, so one
    :func:`run_experiment` executes every figure's spec through the
    same cache/pool machinery.
    """

    name: str
    methods: tuple[str | MethodRequest, ...] = ("sieve", "pks")
    labels: tuple[str, ...] = ()
    suites: tuple[str, ...] = ()
    max_invocations: int | None = None
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        require(len(self.methods) >= 1, "spec must request a method", EngineError)
        require(
            bool(self.labels) or bool(self.suites),
            f"experiment {self.name!r} names no labels and no suites",
            EngineError,
        )

    def resolved_labels(self) -> tuple[str, ...]:
        """Explicit labels first, then suite expansion, duplicates dropped."""
        labels = list(self.labels)
        labels += [spec.label for spec in specs_for_suites(self.suites)]
        return tuple(dict.fromkeys(labels))

    def tasks(self) -> list[EvaluationTask]:
        """Lower the spec onto one engine task per workload.

        Task construction validates every method request against the
        registry, so an unknown method fails here — before any work or
        cache traffic happens.
        """
        return [
            EvaluationTask(
                label=label,
                max_invocations=self.max_invocations,
                fault_plan=self.fault_plan,
                methods=self.methods,
            )
            for label in self.resolved_labels()
        ]


@dataclass(frozen=True)
class ExperimentRow:
    """One workload's results, keyed by method request key (name or alias)."""

    workload: str
    results: Mapping[str, MethodResult]
    from_cache: bool = False

    def __getitem__(self, key: str) -> MethodResult:
        return self.results[key]


def run_experiment(
    spec: ExperimentSpec,
    engine: EvaluationEngine | None = None,
) -> list[ExperimentRow]:
    """Execute a spec through the evaluation engine, one row per workload.

    ``engine`` routes the per-workload work through a
    :class:`repro.evaluation.engine.EvaluationEngine` (process-pool
    fan-out + on-disk result cache); the default is serial and uncached,
    which reproduces the historical behaviour exactly.
    """
    if engine is None:
        engine = EvaluationEngine(EngineConfig(jobs=1, use_cache=False))
    return [
        ExperimentRow(
            workload=result.label,
            results=result.results,
            from_cache=result.from_cache,
        )
        for result in engine.run(spec.tasks())
    ]


def collect_attributions(rows) -> list[dict]:
    """Error-attribution dicts from experiment/comparison rows, in order.

    Accepts :class:`ExperimentRow`\\ s (results keyed by request key) and
    :class:`ComparisonRow`\\ s alike; results without an attribution
    (foreign methods, pre-attribution cache entries) are skipped. The
    output feeds ``RunManifest.attribution`` and the per-figure
    ``ATTRIBUTION_*.json`` bench artifacts.
    """
    collected: list[dict] = []
    for row in rows:
        if isinstance(row, ComparisonRow):
            results: Mapping[str, MethodResult] = {
                "sieve": row.sieve,
                "pks": row.pks,
            }
        else:
            results = row.results
        for key in results:
            attribution = getattr(results[key], "attribution", None)
            if attribution is not None:
                collected.append(attribution.to_dict())
    return collected


# --------------------------------------------------------------------- #
# Table I / Table II


def table1_inventory(max_invocations: int | None = None) -> list[dict]:
    """Workload inventory: suite, name, #kernels, #invocations (Table I).

    Regenerates every workload and cross-checks the realized counts
    against the spec (they must match exactly at full scale).
    """
    rows = []
    for spec in all_specs():
        run = generate(spec, max_invocations=max_invocations)
        rows.append(
            {
                "suite": spec.suite,
                "workload": spec.name,
                "kernels": len(run.kernels),
                "invocations": run.num_invocations,
                "paper_kernels": spec.num_kernels,
                "paper_invocations": spec.num_invocations,
            }
        )
    return rows


def table2_metrics() -> list[dict]:
    """Execution characteristics profiled by PKS versus Sieve (Table II)."""
    return [
        {
            "characteristic": metric.name,
            "pks": "yes" if metric.used_by_pks else "",
            "sieve": "yes" if metric.used_by_sieve else "",
        }
        for metric in PKS_METRICS
    ]


# --------------------------------------------------------------------- #
# Figure 2: tier fractions vs theta


def figure2_tiers(
    thetas: tuple[float, ...] = (0.1, 0.5, 1.0),
    max_invocations: int | None = None,
) -> list[dict]:
    """Invocation fractions per tier for each challenging workload."""
    rows = []
    for label in _challenging_labels():
        context = build_context(label, max_invocations)
        row: dict = {"workload": label}
        for theta in thetas:
            fractions = sieve_tier_fractions(context, theta)
            row[f"tier1@{theta}"] = float(fractions[0])
            row[f"tier2@{theta}"] = float(fractions[1])
            row[f"tier3@{theta}"] = float(fractions[2])
        rows.append(row)
    return rows


# --------------------------------------------------------------------- #
# Figures 3, 4, 6: accuracy, dispersion, speedup on Cactus + MLPerf


@dataclass(frozen=True)
class ComparisonRow:
    """Sieve-vs-PKS scorecard for one workload."""

    workload: str
    sieve: MethodResult
    pks: MethodResult


def comparison_spec(
    name: str,
    labels: tuple[str, ...],
    max_invocations: int | None = None,
    theta: float = 0.4,
    fault_plan: FaultPlan | None = None,
) -> ExperimentSpec:
    """The paper's headline spec: Sieve (at ``theta``) versus PKS."""
    return ExperimentSpec(
        name=name,
        methods=(MethodRequest("sieve", SieveConfig(theta=theta)), "pks"),
        labels=labels,
        max_invocations=max_invocations,
        fault_plan=fault_plan,
    )


def compare_methods(
    labels: list[str] | None = None,
    max_invocations: int | None = None,
    theta: float = 0.4,
    fault_plan=None,
    engine: EvaluationEngine | None = None,
) -> list[ComparisonRow]:
    """Evaluate Sieve and PKS on each workload (drives Figures 3, 4, 6).

    A thin wrapper over :func:`run_experiment` with
    :func:`comparison_spec`. ``fault_plan`` (a
    :class:`repro.robustness.faults.FaultPlan`) injects deterministic
    profile/measurement corruption first — the resilience study's entry
    point.
    """
    labels = labels if labels is not None else _challenging_labels()
    spec = comparison_spec(
        "compare", tuple(labels), max_invocations, theta, fault_plan
    )
    return [
        ComparisonRow(workload=row.workload, sieve=row["sieve"], pks=row["pks"])
        for row in run_experiment(spec, engine)
    ]


def figure3_accuracy(rows: list[ComparisonRow]) -> dict:
    """Aggregate prediction errors (Figure 3)."""
    sieve = [r.sieve.error for r in rows]
    pks = [r.pks.error for r in rows]
    return {
        "sieve_avg": float(np.mean(sieve)),
        "sieve_max": float(np.max(sieve)),
        "pks_avg": float(np.mean(pks)),
        "pks_max": float(np.max(pks)),
    }


def figure4_dispersion(rows: list[ComparisonRow]) -> dict:
    """Aggregate within-cluster cycle CoV (Figure 4)."""
    sieve = [r.sieve.cycle_cov for r in rows]
    pks = [r.pks.cycle_cov for r in rows]
    return {
        "sieve_avg": float(np.mean(sieve)),
        "sieve_max": float(np.max(sieve)),
        "pks_avg": float(np.mean(pks)),
        "pks_max": float(np.max(pks)),
    }


def figure6_speedup(rows: list[ComparisonRow]) -> dict:
    """Harmonic-mean simulation speedups, excluding gst (Figure 6)."""
    included = [r for r in rows if not r.workload.endswith("/gst")]
    return {
        "sieve_hmean": harmonic_mean([r.sieve.speedup for r in included]),
        "pks_hmean": harmonic_mean([r.pks.speedup for r in included]),
    }


# --------------------------------------------------------------------- #
# Figure 5: PKS selection policies


def figure5_selection_policies(
    labels: list[str] | None = None,
    max_invocations: int | None = None,
    engine: EvaluationEngine | None = None,
) -> list[dict]:
    """PKS error under first/random/centroid selection, vs Sieve (Fig. 5).

    One spec, four method requests per workload: three aliased PKS
    configurations plus Sieve.
    """
    labels = labels if labels is not None else _challenging_labels()
    spec = ExperimentSpec(
        name="figure5",
        methods=tuple(
            MethodRequest(
                "pks",
                PksConfig(selection_policy=policy),
                alias=f"pks_{policy}",
            )
            for policy in PKS_SELECTION_POLICIES
        )
        + ("sieve",),
        labels=tuple(labels),
        max_invocations=max_invocations,
    )
    rows = []
    for row in run_experiment(spec, engine):
        out: dict = {"workload": row.workload}
        for policy in PKS_SELECTION_POLICIES:
            out[f"pks_{policy}"] = row[f"pks_{policy}"].error
        out["sieve"] = row["sieve"].error
        rows.append(out)
    return rows


# --------------------------------------------------------------------- #
# Figure 7: profiling time


def figure7_profiling(
    labels: list[str] | None = None,
    max_invocations: int | None = None,
) -> list[dict]:
    """Profiling-time speedup of Sieve (NVBit) over PKS (Nsight)."""
    labels = labels if labels is not None else _challenging_labels()
    rows = []
    for label in labels:
        context = build_context(label, max_invocations)
        rows.append(
            {
                "workload": label,
                "pks_days": context.pks_profiling.total_days,
                "sieve_days": context.sieve_profiling.total_days,
                "speedup": context.pks_profiling.total_seconds
                / context.sieve_profiling.total_seconds,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Figure 8: the simple suites


def figure8_simple_suites(
    max_invocations: int | None = None,
    fault_plan=None,
    engine: EvaluationEngine | None = None,
) -> list[ComparisonRow]:
    """Sieve vs PKS on Parboil/Rodinia/CUDA SDK (Figure 8)."""
    return compare_methods(
        _simple_labels(), max_invocations, fault_plan=fault_plan, engine=engine
    )


# --------------------------------------------------------------------- #
# Figure 9: relative accuracy across architectures


def figure9_relative(
    labels: tuple[str, ...] = RELATIVE_STUDY_LABELS,
    max_invocations: int | None = None,
    engine: EvaluationEngine | None = None,
) -> list[dict]:
    """Ampere-vs-Turing speedup: hardware vs Sieve vs PKS (Figure 9).

    Runs the default comparison spec, then re-predicts each method's
    selection on the Turing measurement of the same (deterministically
    rebuilt) context.
    """
    spec = ExperimentSpec(
        name="figure9",
        labels=tuple(labels),
        max_invocations=max_invocations,
    )
    rows = []
    for row in run_experiment(spec, engine):
        context = build_context(row.workload, max_invocations)
        turing = context.measure_on(TURING_RTX2080TI)
        hardware = hardware_speedup_between(context.golden, turing)
        sieve_pred = predicted_speedup_between(
            row["sieve"].selection, "sieve", context.golden, turing
        )
        pks_pred = predicted_speedup_between(
            row["pks"].selection, "pks", context.golden, turing
        )
        rows.append(
            {
                "workload": row.workload,
                "hardware": hardware,
                "sieve": sieve_pred,
                "pks": pks_pred,
                "sieve_error": relative_speedup_error(sieve_pred, hardware),
                "pks_error": relative_speedup_error(pks_pred, hardware),
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Figure 10: theta sensitivity


def figure10_theta_sweep(
    thetas: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    labels: list[str] | None = None,
    max_invocations: int | None = None,
    engine: EvaluationEngine | None = None,
) -> list[dict]:
    """Average Sieve error and hmean speedup per theta (Figure 10).

    One spec with one aliased Sieve request per theta, so the whole
    sweep is a single engine pass (and a single cache entry) per
    workload.
    """
    labels = labels if labels is not None else _challenging_labels()
    spec = ExperimentSpec(
        name="figure10",
        methods=tuple(
            MethodRequest("sieve", SieveConfig(theta=theta), alias=f"sieve@{theta:g}")
            for theta in thetas
        ),
        labels=tuple(labels),
        max_invocations=max_invocations,
    )
    experiment_rows = run_experiment(spec, engine)
    rows = []
    for theta in thetas:
        errors = []
        speedups = []
        for row in experiment_rows:
            result = row[f"sieve@{theta:g}"]
            errors.append(result.error)
            if not row.workload.endswith("/gst"):
                speedups.append(result.speedup)
        rows.append(
            {
                "theta": theta,
                "avg_error": float(np.mean(errors)),
                "max_error": float(np.max(errors)),
                "hmean_speedup": harmonic_mean(speedups),
            }
        )
    return rows
