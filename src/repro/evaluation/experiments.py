"""Experiment drivers: one function per table/figure in the paper.

Each driver returns structured rows plus aggregates so that the benchmark
harness, the CLI and EXPERIMENTS.md all print the same numbers. Every
driver takes an optional ``max_invocations`` cap (tests use small caps;
benches run the full Table I scale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.pks import PksConfig
from repro.core.config import SieveConfig
from repro.evaluation.context import build_context
from repro.evaluation.engine import (
    EngineConfig,
    EvaluationEngine,
    EvaluationTask,
)
from repro.evaluation.metrics import harmonic_mean, relative_speedup_error
from repro.evaluation.runner import (
    MethodResult,
    evaluate_pks,
    evaluate_sieve,
    hardware_speedup_between,
    predicted_speedup_between,
    sieve_tier_fractions,
)
from repro.gpu.arch import TURING_RTX2080TI
from repro.profiling.metrics import PKS_METRICS
from repro.workloads.catalog import (
    CHALLENGING_SUITES,
    SIMPLE_SUITES,
    all_specs,
    specs_for_suites,
)
from repro.workloads.generator import generate

#: Fig 9 excludes MLPerf and Cactus' rfl ("Due to infrastructure
#: limitations on the RTX 2080Ti we were unable to run the MLPerf
#: workloads as well as Cactus' rfl").
RELATIVE_STUDY_LABELS: tuple[str, ...] = (
    "cactus/gru",
    "cactus/gst",
    "cactus/gms",
    "cactus/lmc",
    "cactus/lmr",
    "cactus/dcg",
    "cactus/lgt",
    "cactus/nst",
    "cactus/spt",
)


def _challenging_labels() -> list[str]:
    return [spec.label for spec in specs_for_suites(CHALLENGING_SUITES)]


def _simple_labels() -> list[str]:
    return [spec.label for spec in specs_for_suites(SIMPLE_SUITES)]


# --------------------------------------------------------------------- #
# Table I / Table II


def table1_inventory(max_invocations: int | None = None) -> list[dict]:
    """Workload inventory: suite, name, #kernels, #invocations (Table I).

    Regenerates every workload and cross-checks the realized counts
    against the spec (they must match exactly at full scale).
    """
    rows = []
    for spec in all_specs():
        run = generate(spec, max_invocations=max_invocations)
        rows.append(
            {
                "suite": spec.suite,
                "workload": spec.name,
                "kernels": len(run.kernels),
                "invocations": run.num_invocations,
                "paper_kernels": spec.num_kernels,
                "paper_invocations": spec.num_invocations,
            }
        )
    return rows


def table2_metrics() -> list[dict]:
    """Execution characteristics profiled by PKS versus Sieve (Table II)."""
    return [
        {
            "characteristic": metric.name,
            "pks": "yes" if metric.used_by_pks else "",
            "sieve": "yes" if metric.used_by_sieve else "",
        }
        for metric in PKS_METRICS
    ]


# --------------------------------------------------------------------- #
# Figure 2: tier fractions vs theta


def figure2_tiers(
    thetas: tuple[float, ...] = (0.1, 0.5, 1.0),
    max_invocations: int | None = None,
) -> list[dict]:
    """Invocation fractions per tier for each challenging workload."""
    rows = []
    for label in _challenging_labels():
        context = build_context(label, max_invocations)
        row: dict = {"workload": label}
        for theta in thetas:
            fractions = sieve_tier_fractions(context, theta)
            row[f"tier1@{theta}"] = float(fractions[0])
            row[f"tier2@{theta}"] = float(fractions[1])
            row[f"tier3@{theta}"] = float(fractions[2])
        rows.append(row)
    return rows


# --------------------------------------------------------------------- #
# Figures 3, 4, 6: accuracy, dispersion, speedup on Cactus + MLPerf


@dataclass(frozen=True)
class ComparisonRow:
    """Sieve-vs-PKS scorecard for one workload."""

    workload: str
    sieve: MethodResult
    pks: MethodResult


def compare_methods(
    labels: list[str] | None = None,
    max_invocations: int | None = None,
    theta: float = 0.4,
    fault_plan=None,
    engine: EvaluationEngine | None = None,
) -> list[ComparisonRow]:
    """Evaluate Sieve and PKS on each workload (drives Figures 3, 4, 6).

    ``fault_plan`` (a :class:`repro.robustness.faults.FaultPlan`) injects
    deterministic profile/measurement corruption first — the resilience
    study's entry point. ``engine`` routes the per-workload work through a
    :class:`repro.evaluation.engine.EvaluationEngine` (process-pool
    fan-out + on-disk result cache); the default is serial and uncached,
    which reproduces the historical behaviour exactly.
    """
    labels = labels if labels is not None else _challenging_labels()
    if engine is None:
        engine = EvaluationEngine(EngineConfig(jobs=1, use_cache=False))
    tasks = [
        EvaluationTask(
            label=label,
            max_invocations=max_invocations,
            sieve_config=SieveConfig(theta=theta),
            fault_plan=fault_plan,
        )
        for label in labels
    ]
    return [
        ComparisonRow(workload=result.label, sieve=result["sieve"], pks=result["pks"])
        for result in engine.run(tasks)
    ]


def figure3_accuracy(rows: list[ComparisonRow]) -> dict:
    """Aggregate prediction errors (Figure 3)."""
    sieve = [r.sieve.error for r in rows]
    pks = [r.pks.error for r in rows]
    return {
        "sieve_avg": float(np.mean(sieve)),
        "sieve_max": float(np.max(sieve)),
        "pks_avg": float(np.mean(pks)),
        "pks_max": float(np.max(pks)),
    }


def figure4_dispersion(rows: list[ComparisonRow]) -> dict:
    """Aggregate within-cluster cycle CoV (Figure 4)."""
    sieve = [r.sieve.cycle_cov for r in rows]
    pks = [r.pks.cycle_cov for r in rows]
    return {
        "sieve_avg": float(np.mean(sieve)),
        "sieve_max": float(np.max(sieve)),
        "pks_avg": float(np.mean(pks)),
        "pks_max": float(np.max(pks)),
    }


def figure6_speedup(rows: list[ComparisonRow]) -> dict:
    """Harmonic-mean simulation speedups, excluding gst (Figure 6)."""
    included = [r for r in rows if not r.workload.endswith("/gst")]
    return {
        "sieve_hmean": harmonic_mean([r.sieve.speedup for r in included]),
        "pks_hmean": harmonic_mean([r.pks.speedup for r in included]),
    }


# --------------------------------------------------------------------- #
# Figure 5: PKS selection policies


def figure5_selection_policies(
    labels: list[str] | None = None,
    max_invocations: int | None = None,
) -> list[dict]:
    """PKS error under first/random/centroid selection, vs Sieve (Fig. 5)."""
    labels = labels if labels is not None else _challenging_labels()
    rows = []
    for label in labels:
        context = build_context(label, max_invocations)
        row: dict = {"workload": label}
        for policy in ("first", "random", "centroid"):
            result = evaluate_pks(context, PksConfig(selection_policy=policy))
            row[f"pks_{policy}"] = result.error
        row["sieve"] = evaluate_sieve(context).error
        rows.append(row)
    return rows


# --------------------------------------------------------------------- #
# Figure 7: profiling time


def figure7_profiling(
    labels: list[str] | None = None,
    max_invocations: int | None = None,
) -> list[dict]:
    """Profiling-time speedup of Sieve (NVBit) over PKS (Nsight)."""
    labels = labels if labels is not None else _challenging_labels()
    rows = []
    for label in labels:
        context = build_context(label, max_invocations)
        rows.append(
            {
                "workload": label,
                "pks_days": context.pks_profiling.total_days,
                "sieve_days": context.sieve_profiling.total_days,
                "speedup": context.pks_profiling.total_seconds
                / context.sieve_profiling.total_seconds,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Figure 8: the simple suites


def figure8_simple_suites(
    max_invocations: int | None = None,
    fault_plan=None,
    engine: EvaluationEngine | None = None,
) -> list[ComparisonRow]:
    """Sieve vs PKS on Parboil/Rodinia/CUDA SDK (Figure 8)."""
    return compare_methods(
        _simple_labels(), max_invocations, fault_plan=fault_plan, engine=engine
    )


# --------------------------------------------------------------------- #
# Figure 9: relative accuracy across architectures


def figure9_relative(
    labels: tuple[str, ...] = RELATIVE_STUDY_LABELS,
    max_invocations: int | None = None,
) -> list[dict]:
    """Ampere-vs-Turing speedup: hardware vs Sieve vs PKS (Figure 9)."""
    rows = []
    for label in labels:
        context = build_context(label, max_invocations)
        turing = context.measure_on(TURING_RTX2080TI)
        hardware = hardware_speedup_between(context.golden, turing)
        sieve = evaluate_sieve(context)
        pks = evaluate_pks(context)
        sieve_pred = predicted_speedup_between(
            sieve.selection, "sieve", context.golden, turing
        )
        pks_pred = predicted_speedup_between(
            pks.selection, "pks", context.golden, turing
        )
        rows.append(
            {
                "workload": label,
                "hardware": hardware,
                "sieve": sieve_pred,
                "pks": pks_pred,
                "sieve_error": relative_speedup_error(sieve_pred, hardware),
                "pks_error": relative_speedup_error(pks_pred, hardware),
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Figure 10: theta sensitivity


def figure10_theta_sweep(
    thetas: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    labels: list[str] | None = None,
    max_invocations: int | None = None,
) -> list[dict]:
    """Average Sieve error and hmean speedup per theta (Figure 10)."""
    labels = labels if labels is not None else _challenging_labels()
    rows = []
    for theta in thetas:
        errors = []
        speedups = []
        for label in labels:
            context = build_context(label, max_invocations)
            result = evaluate_sieve(context, SieveConfig(theta=theta))
            errors.append(result.error)
            if not label.endswith("/gst"):
                speedups.append(result.speedup)
        rows.append(
            {
                "theta": theta,
                "avg_error": float(np.mean(errors)),
                "max_error": float(np.max(errors)),
                "hmean_speedup": harmonic_mean(speedups),
            }
        )
    return rows
