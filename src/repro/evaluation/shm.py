"""Shared-memory publication of profile tables for cross-process tasks.

Tasks built from catalog labels ship *no* bulk data — workers rebuild
their context from seeds. Tasks built around a materialized
:class:`~repro.profiling.table.ProfileTable` (service-submitted tables,
fuzz candidates kept alive across campaigns, the scale bench) used to
have exactly two options: pickle every column into each task, or rebuild
the table per worker. This module adds the third: the engine publishes
the table (plus its golden measurement) into one
:class:`multiprocessing.shared_memory.SharedMemory` segment, and tasks
carry only a :class:`SharedTableRef` — segment name, array layout and a
content digest. Workers attach the segment read-only and reconstruct the
table and measurement as zero-copy views.

Lifecycle contract:

* the **owner** (the engine's :class:`SharedTablePlane`) creates
  segments, refcounts duplicate publications by digest, and unlinks
  everything on ``close()`` — idempotently, and also from an ``atexit``
  hook so a crashed run cannot strand segments;
* **workers** attach by name inside :func:`attached_context` and always
  close their mapping, without ever unlinking. On Python <= 3.12 the
  attach explicitly unregisters from ``resource_tracker`` (attaching
  registers there too, and a worker exit would otherwise unlink the
  owner's segment — the well-known ``SharedMemory`` footgun that Python
  3.13 fixed with ``track=False``);
* a worker that dies mid-attach leaks nothing: the mapping dies with the
  process and the segment stays owned by the engine.

Attach hits and misses are counted in the observability metrics registry
(``engine.shm.attach`` / ``engine.shm.attach_miss``), so a fleet losing
segments (e.g. an engine closed while tasks were still queued) is
visible in the merged telemetry.
"""

from __future__ import annotations

import atexit
import contextlib
import hashlib
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Iterator

import numpy as np

from repro.gpu.hardware import KernelMeasurement, WorkloadMeasurement
from repro.observability import metrics
from repro.profiling.cost import ProfilingCost
from repro.profiling.table import ProfileTable
from repro.robustness import diagnostics
from repro.utils.errors import EngineError
from repro.utils.validation import require

__all__ = [
    "SharedRunStub",
    "SharedTablePlane",
    "SharedTableRef",
    "attached_context",
]


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    Python <= 3.12 registers *every* ``SharedMemory`` (attach included)
    with the resource tracker, whose bookkeeping is a plain set — so
    unregistering after an attach would also erase the owner's creation
    entry and desynchronize the tracker. Suppressing registration for
    the duration of the attach is the only sequence that leaves exactly
    the owner's entry in place; 3.13+ has ``track=False`` for this.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python <= 3.12: no track parameter
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@dataclass(frozen=True)
class SharedTableRef:
    """Picklable handle to a published (table, golden) bundle.

    ``arrays`` maps field name to ``(dtype, shape, byte offset)`` within
    the segment; ``digest`` is a content hash of every array plus the
    naming metadata, suitable as cache-key material (two publications of
    identical data share a digest even across segments).
    """

    segment: str
    workload: str
    architecture: str
    clock_ghz: float
    kernel_names: tuple[str, ...]
    metric_names: tuple[str, ...] | None
    arrays: tuple[tuple[str, str, tuple[int, ...], int], ...]
    digest: str
    total_bytes: int


#: Table columns packed into every bundle, in layout order.
_TABLE_FIELDS = ("kernel_id", "invocation_id", "insn_count", "cta_size", "num_ctas")


def _bundle_arrays(
    table: ProfileTable, golden: WorkloadMeasurement
) -> list[tuple[str, np.ndarray]]:
    """The named arrays a bundle carries, in deterministic layout order."""
    named: list[tuple[str, np.ndarray]] = [
        (field, np.ascontiguousarray(getattr(table, field)))
        for field in _TABLE_FIELDS
    ]
    if table.metrics is not None:
        named.append(("metrics", np.ascontiguousarray(table.metrics)))
    sizes = []
    insn_parts = []
    cycle_parts = []
    for name in table.kernel_names:
        kernel = golden.per_kernel.get(name)
        if kernel is None:
            sizes.append(0)
            continue
        sizes.append(len(kernel.cycles))
        insn_parts.append(kernel.insn_count)
        cycle_parts.append(kernel.cycles)
    empty = np.empty(0, dtype=np.int64)
    named.append(("golden_sizes", np.asarray(sizes, dtype=np.int64)))
    named.append(
        ("golden_insn", np.ascontiguousarray(np.concatenate(insn_parts)) if insn_parts else empty)
    )
    named.append(
        ("golden_cycles", np.ascontiguousarray(np.concatenate(cycle_parts)) if cycle_parts else empty)
    )
    return named


def _digest(
    table: ProfileTable, golden: WorkloadMeasurement, named: list[tuple[str, np.ndarray]]
) -> str:
    hasher = hashlib.blake2b(digest_size=20)
    for part in (
        "shared-table",
        table.workload,
        golden.architecture,
        repr(golden.clock_ghz),
        "\x00".join(table.kernel_names),
        "\x00".join(table.metric_names) if table.metrics is not None else "",
    ):
        hasher.update(part.encode())
        hasher.update(b"\x1f")
    for field, array in named:
        hasher.update(field.encode())
        hasher.update(str(array.dtype).encode())
        hasher.update(repr(array.shape).encode())
        hasher.update(array.tobytes())
    return hasher.hexdigest()


class SharedTablePlane:
    """Owner-side registry of published shared-memory table bundles.

    Publications are deduplicated by content digest and refcounted:
    publishing the same (table, golden) twice returns the same ref and
    bumps its count, :meth:`release` decrements and unlinks at zero, and
    :meth:`close` unlinks everything that is left regardless of count.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._refs: dict[str, SharedTableRef] = {}  # digest -> ref
        self._refcounts: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._segments)

    def publish(
        self, table: ProfileTable, golden: WorkloadMeasurement
    ) -> SharedTableRef:
        """Copy the bundle into a fresh segment (or reuse a live twin)."""
        named = _bundle_arrays(table, golden)
        digest = _digest(table, golden, named)
        existing = self._refs.get(digest)
        if existing is not None:
            self._refcounts[digest] += 1
            metrics.inc("engine.shm.publish_dedup")
            return existing
        layout: list[tuple[str, str, tuple[int, ...], int]] = []
        offset = 0
        for field, array in named:
            layout.append((field, str(array.dtype), tuple(array.shape), offset))
            offset += array.nbytes
        segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for (field, dtype, shape, start), (_, array) in zip(layout, named):
            view = np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=start)
            view[...] = array
        ref = SharedTableRef(
            segment=segment.name,
            workload=table.workload,
            architecture=golden.architecture,
            clock_ghz=golden.clock_ghz,
            kernel_names=tuple(table.kernel_names),
            metric_names=tuple(table.metric_names) if table.metrics is not None else None,
            arrays=tuple(layout),
            digest=digest,
            total_bytes=offset,
        )
        self._segments[digest] = segment
        self._refs[digest] = ref
        self._refcounts[digest] = 1
        metrics.inc("engine.shm.published")
        metrics.observe("engine.shm.segment_bytes", offset)
        return ref

    def release(self, ref: SharedTableRef) -> bool:
        """Drop one reference; unlink the segment when none remain."""
        if ref.digest not in self._segments:
            return False
        self._refcounts[ref.digest] -= 1
        if self._refcounts[ref.digest] > 0:
            return False
        self._unlink(ref.digest)
        return True

    def _unlink(self, digest: str) -> None:
        segment = self._segments.pop(digest)
        self._refs.pop(digest)
        self._refcounts.pop(digest)
        with contextlib.suppress(Exception):
            segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        except OSError as exc:
            diagnostics.emit(
                "engine.shm", f"unlink of segment {segment.name} failed: {exc}"
            )
        metrics.inc("engine.shm.unlinked")

    def close(self) -> int:
        """Unlink every live segment; idempotent. Returns segments freed."""
        freed = 0
        for digest in list(self._segments):
            self._unlink(digest)
            freed += 1
        return freed


# --------------------------------------------------------------------- #
# Worker side


@dataclass(frozen=True)
class SharedRunStub:
    """Stands in for a :class:`~repro.workloads.generator.WorkloadRun`.

    Shared-table contexts have no generated run — only the profile and
    the golden measurement crossed the process boundary. The stub carries
    the identity and totals experiments read; anything needing generated
    kernels (e.g. re-profiling methods like ``pks-two-level``) raises a
    typed :class:`~repro.utils.errors.EngineError` instead of crashing on
    an attribute miss.
    """

    name: str
    suite: str
    num_invocations: int
    total_instructions: int
    spec: None = None

    @property
    def label(self) -> str:
        return f"{self.suite}/{self.name}" if self.suite else self.name

    @property
    def kernels(self) -> tuple:
        raise EngineError(
            "shared-table contexts carry no generated run; methods that "
            "re-profile the workload cannot run on them"
        )

    def kernel_by_name(self, name: str):
        raise EngineError(
            "shared-table contexts carry no generated run; methods that "
            "re-profile the workload cannot run on them"
        )


def _reconstruct(
    ref: SharedTableRef, segment: shared_memory.SharedMemory
) -> tuple[ProfileTable, WorkloadMeasurement]:
    arrays: dict[str, np.ndarray] = {}
    for field, dtype, shape, offset in ref.arrays:
        arrays[field] = np.ndarray(
            shape, dtype=dtype, buffer=segment.buf, offset=offset
        )
    table = ProfileTable(
        workload=ref.workload,
        kernel_names=ref.kernel_names,
        kernel_id=arrays["kernel_id"],
        invocation_id=arrays["invocation_id"],
        insn_count=arrays["insn_count"],
        cta_size=arrays["cta_size"],
        num_ctas=arrays["num_ctas"],
        metrics=arrays.get("metrics"),
        **(
            {"metric_names": ref.metric_names}
            if ref.metric_names is not None
            else {}
        ),
    )
    per_kernel: dict[str, KernelMeasurement] = {}
    position = 0
    for name, size in zip(ref.kernel_names, arrays["golden_sizes"]):
        size = int(size)
        if size == 0:
            continue
        per_kernel[name] = KernelMeasurement(
            kernel_name=name,
            cycles=arrays["golden_cycles"][position : position + size],
            insn_count=arrays["golden_insn"][position : position + size],
        )
        position += size
    golden = WorkloadMeasurement(
        workload_name=ref.workload,
        architecture=ref.architecture,
        clock_ghz=ref.clock_ghz,
        per_kernel=per_kernel,
    )
    return table, golden


def _zero_cost(tool: str, ref: SharedTableRef, rows: int) -> ProfilingCost:
    """Profiling already happened wherever the table came from."""
    return ProfilingCost(
        tool=tool,
        workload=ref.workload,
        num_invocations=rows,
        replay_passes=0,
        replay_seconds=0.0,
        save_restore_seconds=0.0,
        bookkeeping_seconds=0.0,
    )


@contextlib.contextmanager
def attached_context(
    ref: SharedTableRef, fault_plan=None
) -> Iterator["WorkloadContext"]:
    """Attach a published bundle and yield it as a `WorkloadContext`.

    The mapping is closed (never unlinked) on exit; callers must not let
    views of the table or measurement escape the ``with`` block — every
    result a method returns holds its own arrays, which the lifecycle
    property tests pin. A vanished segment (owner closed or crashed)
    raises a typed :class:`~repro.utils.errors.EngineError` after
    counting an ``engine.shm.attach_miss``.

    ``fault_plan`` injects the same table/measurement corruption
    :func:`~repro.evaluation.context.build_context` applies — on *copies*
    (the injectors never mutate their input), so the shared segment stays
    pristine for concurrent attachers.
    """
    from repro.evaluation.context import WorkloadContext
    from repro.robustness.faults import (
        inject_measurement_faults,
        inject_table_faults,
    )

    try:
        segment = _attach_segment(ref.segment)
    except FileNotFoundError as exc:
        metrics.inc("engine.shm.attach_miss")
        raise EngineError(
            f"shared table segment {ref.segment!r} for {ref.workload!r} "
            "has vanished (engine closed or publisher crashed)"
        ) from exc
    metrics.inc("engine.shm.attach")
    try:
        table, golden = _reconstruct(ref, segment)
        require(
            len(table) > 0, "shared table bundle holds no rows", EngineError
        )
        suite, _, name = ref.workload.rpartition("/")
        run = SharedRunStub(
            name=name or ref.workload,
            suite=suite,
            num_invocations=len(table),
            total_instructions=table.total_instructions,
        )
        sieve_table = table.without_metrics()
        pks_table = table if table.metrics is not None else sieve_table
        clean_golden = None
        if fault_plan is not None:
            clean_golden = golden
            sieve_table, _ = inject_table_faults(sieve_table, fault_plan)
            pks_table, _ = inject_table_faults(pks_table, fault_plan)
            golden, _ = inject_measurement_faults(golden, fault_plan)
        yield WorkloadContext(
            run=run,  # type: ignore[arg-type]  — duck-typed stub
            golden=golden,
            sieve_table=sieve_table,
            pks_table=pks_table,
            sieve_profiling=_zero_cost("nvbit", ref, len(table)),
            pks_profiling=_zero_cost("nsight", ref, len(table)),
            clean_golden=clean_golden,
        )
    finally:
        with contextlib.suppress(Exception):
            segment.close()


# --------------------------------------------------------------------- #
# Crash-safe owner cleanup

_LIVE_PLANES: "set[SharedTablePlane]" = set()


def _cleanup_at_exit() -> None:
    for plane in list(_LIVE_PLANES):
        with contextlib.suppress(Exception):
            plane.close()


atexit.register(_cleanup_at_exit)


def register_plane(plane: SharedTablePlane) -> None:
    """Track a plane for atexit cleanup (owners call this on creation)."""
    _LIVE_PLANES.add(plane)


def unregister_plane(plane: SharedTablePlane) -> None:
    _LIVE_PLANES.discard(plane)
