"""Evaluation metrics (Section IV-3).

* ``prediction_error`` — |predicted - measured| / measured;
* ``simulation_speedup`` — total workload cycles over cycles of the
  selected representative invocations;
* ``relative_speedup_error`` — error of a method's predicted
  cross-architecture speedup against the hardware speedup (Figure 9);
* ``harmonic_mean`` — the mean the paper uses to aggregate speedups.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import SampleSelection
from repro.gpu.hardware import WorkloadMeasurement
from repro.utils.validation import require


def prediction_error(predicted_cycles: float, measured_cycles: float) -> float:
    """The paper's error metric: absolute relative cycle-count error."""
    require(measured_cycles > 0, "measured cycles must be positive")
    return abs(predicted_cycles - measured_cycles) / measured_cycles


def simulation_speedup(
    selection: SampleSelection, measurement: WorkloadMeasurement
) -> float:
    """Total workload cycles / cycles of the representatives only."""
    sample = selection.sample_cycles(measurement)
    require(sample > 0, "sample executes zero cycles")
    return measurement.total_cycles / sample


def relative_speedup_error(predicted_speedup: float, true_speedup: float) -> float:
    """Error of a predicted cross-architecture speedup (Figure 9)."""
    require(true_speedup > 0, "true speedup must be positive")
    return abs(predicted_speedup - true_speedup) / true_speedup


def harmonic_mean(values: list[float] | np.ndarray) -> float:
    """Unweighted harmonic mean (the paper's speedup aggregate)."""
    values = np.asarray(values, dtype=np.float64)
    require(len(values) >= 1, "need at least one value")
    require(bool(np.all(values > 0)), "harmonic mean requires positive values")
    return float(len(values) / np.sum(1.0 / values))
