"""Parallel, cached evaluation engine.

Every figure/table experiment reduces to the same unit of work: build a
workload context (generate + measure + profile) and run one or both
samplers on it. That unit is a pure function of (resolved workload spec,
sampler configs, fault plan, package source), so this module fans units
out across a process pool and memoizes their results in a content-
addressed on-disk cache:

* :class:`EvaluationTask` — one picklable, seed-deterministic unit of
  work, with a :meth:`~EvaluationTask.cache_key` derived via
  :func:`repro.utils.hashing.stable_hash`;
* :class:`ResultCache` — the on-disk store (atomic writes, corruption
  tolerance, hit/miss statistics);
* :class:`EvaluationEngine` — scheduling: cache probe, process-pool
  fan-out, graceful degradation to serial execution when the pool dies
  (reported through :mod:`repro.robustness.diagnostics`).

Determinism contract: every stochastic element downstream of a task
(workload generation, measurement noise, k-means init, random selection)
is seeded from string labels via :mod:`repro.utils.seeding`, so
``jobs=1``, ``jobs=N`` and a cache-warm rerun produce *byte-identical*
pickled :class:`~repro.evaluation.runner.MethodResult`\\ s. The property
tests in ``tests/evaluation/test_engine_properties.py`` enforce this.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import repro
from repro.evaluation.context import build_context
from repro.evaluation.runner import (
    MethodResult,
    evaluate_method,
    evaluate_method_streaming,
)
from repro.evaluation.shm import (
    SharedTablePlane,
    SharedTableRef,
    attached_context,
    register_plane,
    unregister_plane,
)
from repro.methods import MethodRequest, get_method
from repro.observability import manifest as obs_manifest
from repro.observability import metrics, spans
from repro.observability import state as obs_state
from repro.observability.spans import span
from repro.robustness import diagnostics
from repro.robustness.faults import FaultPlan, task_sabotage
from repro.utils.errors import EngineError, TaskCrashError
from repro.utils.hashing import stable_hash, tree_fingerprint
from repro.utils.validation import require
from repro.workloads.catalog import spec_for
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # annotation-only; keeps baselines out of the import graph
    from repro.baselines.pks import PksConfig
    from repro.core.config import SieveConfig
    from repro.streaming.base import StreamingSpec

#: Bump when the cached payload layout changes; old entries become misses.
#: 3: MethodResult grew ``attribution`` (and PredictionResult
#: ``contributions``), changing the pickled payload shape.
CACHE_SCHEMA = 3

#: The default method comparison (the paper's headline Sieve-vs-PKS).
KNOWN_METHODS = ("sieve", "pks")


def default_cache_dir() -> Path:
    """Resolve the default on-disk cache location.

    ``SIEVE_REPRO_CACHE_DIR`` wins, then ``$XDG_CACHE_HOME/sieve-repro``,
    then ``~/.cache/sieve-repro``.
    """
    env = os.environ.get("SIEVE_REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "sieve-repro"


@lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """Content hash of the installed ``repro`` package source.

    Folded into every cache key so editing any module invalidates stale
    results even when ``repro.__version__`` is unchanged.
    """
    return tree_fingerprint(Path(repro.__file__).resolve().parent)


@dataclass(frozen=True)
class EvaluationTask:
    """One unit of work: evaluate the requested methods on one workload.

    Tasks are frozen, hashable and picklable; workers resolve the label
    through the catalog and rebuild the context from seeds, so shipping a
    task to another process ships *no* bulk data.

    ``methods`` accepts registry names (``"sieve"``) and/or
    :class:`~repro.methods.MethodRequest`\\ s; plain names are normalized
    into requests at construction, folding in the legacy ``sieve_config``
    / ``pks_config`` conveniences. Every requested method must resolve in
    the registry — construction and :meth:`cache_key` both raise a typed
    :class:`~repro.utils.errors.UnknownMethodError` otherwise, so a task
    can never mint a cache key for a method that cannot run.
    """

    label: str
    max_invocations: int | None = None
    sieve_config: SieveConfig | None = None
    pks_config: PksConfig | None = None
    fault_plan: FaultPlan | None = None
    methods: tuple[str | MethodRequest, ...] = KNOWN_METHODS
    #: Inline workload spec for labels *not* in the catalog (fuzz
    #: candidates). When set, its ``label`` must equal ``label`` and it
    #: replaces the catalog lookup in both execution and cache keying.
    spec: WorkloadSpec | None = None
    #: Shared-memory bundle reference (see :mod:`repro.evaluation.shm`)
    #: for tasks over a materialized profile table. Workers attach the
    #: segment instead of rebuilding the context from seeds; the ref's
    #: content digest replaces the spec in the cache key. Mutually
    #: exclusive with ``spec``.
    table_ref: SharedTableRef | None = None
    #: When set, each method consumes the profile through its
    #: ``begin_stream`` surface in ``chunk_rows`` slices (optionally with
    #: a bounded per-kernel reservoir) instead of one batch ``select``.
    #: Folded into the cache key: a streamed result never aliases a batch
    #: one, even though unbounded streams are byte-identical by contract.
    streaming: StreamingSpec | None = None

    def __post_init__(self) -> None:
        require(len(self.methods) >= 1, "task must request a method", EngineError)
        require(
            self.spec is None or self.table_ref is None,
            "a task carries an inline spec or a shared table ref, not both",
            EngineError,
        )
        if self.spec is not None:
            require(
                self.spec.label == self.label,
                f"inline spec label {self.spec.label!r} does not match "
                f"task label {self.label!r}",
                EngineError,
            )
        if self.table_ref is not None:
            require(
                self.table_ref.workload == self.label,
                f"shared table workload {self.table_ref.workload!r} does "
                f"not match task label {self.label!r}",
                EngineError,
            )
        legacy = {"sieve": self.sieve_config, "pks": self.pks_config}
        requests = tuple(
            entry
            if isinstance(entry, MethodRequest)
            else MethodRequest(method=entry, config=legacy.get(entry))
            for entry in self.methods
        )
        keys = [request.key for request in requests]
        require(
            len(set(keys)) == len(keys),
            f"duplicate method keys in task: {keys} (alias repeated requests)",
            EngineError,
        )
        # Fail loudly now: resolve every name and type-check its config.
        for request in requests:
            get_method(request.method).resolve_config(request.config)
        # Normalize in place (frozen dataclass): the legacy configs live
        # inside the requests from here on, so a task built from names +
        # configs hashes identically to one built from explicit requests.
        object.__setattr__(self, "methods", requests)
        object.__setattr__(self, "sieve_config", None)
        object.__setattr__(self, "pks_config", None)

    def cache_key(self) -> str:
        """Content-addressed identity of this task's result.

        Key material: schema version, package version, package source
        fingerprint, the *resolved* workload spec (so catalog
        recalibration invalidates), the invocation cap, the fault plan
        and every method request (registry name + full config), so two
        tasks differing only in a method's config never collide.

        Raises :class:`~repro.utils.errors.UnknownMethodError` if any
        requested method is no longer registered.
        """
        for request in self.methods:
            get_method(request.method)  # typed failure before hashing
        if self.table_ref is not None:
            # The digest covers every published array byte, so two refs to
            # identical data share a key while the volatile segment name
            # stays out of it (republishing must not invalidate).
            workload_identity: object = ("shared-table", self.table_ref.digest)
        elif self.spec is not None:
            workload_identity = self.spec
        else:
            workload_identity = spec_for(self.label)
        return stable_hash(
            "evaluation-task",
            CACHE_SCHEMA,
            repro.__version__,
            source_fingerprint(),
            workload_identity,
            self.max_invocations,
            self.fault_plan,
            list(self.methods),
            self.streaming,
        )


@dataclass(frozen=True)
class TaskResult:
    """A task's outcome plus where it came from (computed vs cache)."""

    label: str
    results: Mapping[str, MethodResult]
    from_cache: bool = False

    def __getitem__(self, method: str) -> MethodResult:
        return self.results[method]


def run_task(task: EvaluationTask) -> dict[str, MethodResult]:
    """Execute one task in the current process.

    This is the process-pool worker: module-level so it pickles by
    reference, and independent of all engine state so serial and parallel
    execution share one code path.
    """
    def evaluate(context) -> dict[str, MethodResult]:
        if task.streaming is not None:
            return {
                request.key: evaluate_method_streaming(
                    request.method,
                    context,
                    request.config,
                    chunk_rows=task.streaming.chunk_rows,
                    reservoir_rows=task.streaming.reservoir_rows,
                )
                for request in task.methods
            }
        return {
            request.key: evaluate_method(request.method, context, request.config)
            for request in task.methods
        }

    with span("engine.task", workload=task.label):
        if task.table_ref is not None:
            # Attach the published segment for exactly the task's
            # lifetime; results hold their own arrays, so closing the
            # mapping afterwards is safe (the lifecycle tests pin this).
            with attached_context(task.table_ref, task.fault_plan) as context:
                return evaluate(context)
        return evaluate(
            build_context(
                task.label,
                task.max_invocations,
                fault_plan=task.fault_plan,
                spec=task.spec,
            )
        )


def run_task_with_telemetry(
    task: EvaluationTask,
) -> tuple[dict[str, MethodResult], tuple, dict, tuple]:
    """Pool worker: run a task and ship its telemetry back to the parent.

    The worker's span records, metrics registry and event list are reset
    at task start (the fork inherited the parent's — counting that twice
    would corrupt the merge), so the returned snapshot is exactly this
    task's delta. Live sinks are also dropped: they wrap parent-owned
    file handles, and a forked worker emitting into them would interleave
    with the parent's stream. The parent adopts spans under its fan-out
    span and merges metric snapshots and events in task input order
    (``pool.map`` preserves it), which keeps the merged telemetry
    byte-equal to a serial run's.
    """
    spans.reset()
    spans.clear_sinks()
    metrics.get_registry().reset()
    obs_manifest.reset_events()
    results = run_task(task)
    return (
        results,
        spans.records(),
        metrics.get_registry().snapshot(),
        obs_manifest.events(),
    )


class PoolFailure(EngineError):
    """The process pool died mid-run.

    Carries the results of every task that *did* complete before the
    failure (``pool.map`` streams them back in input order), so the
    serial fallback can reuse them instead of recomputing — losing a
    worker to the OOM killer on task 47 of 50 no longer costs 47
    recomputations.
    """

    def __init__(self, completed: list[dict], cause: BaseException):
        super().__init__(
            f"process pool failed after {len(completed)} completed tasks: {cause!r}",
            completed=len(completed),
        )
        self.completed = completed
        self.cause = cause


def _pool_map(jobs: int, tasks: Sequence[EvaluationTask]) -> list[dict]:
    """Run tasks through a process pool, preserving input order.

    When observability is enabled, workers return their telemetry along
    with the results; spans are grafted under the live ``engine.pool``
    span and metric snapshots merge into the parent registry here, in
    input order (``pool.map`` preserves it), so parallel aggregation is
    deterministic.

    If the pool dies mid-run, raises :class:`PoolFailure` wrapping the
    original exception plus the prefix of results already streamed back.
    """
    completed: list[dict] = []
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            if not obs_state.enabled():
                for task_results in pool.map(run_task, tasks):
                    completed.append(task_results)
                return completed
            with span("engine.pool", jobs=jobs, tasks=len(tasks)) as pool_span:
                registry = metrics.get_registry()
                for task_results, worker_spans, snapshot, worker_events in pool.map(
                    run_task_with_telemetry, tasks
                ):
                    spans.adopt(
                        worker_spans, parent_id=pool_span.span_id, proc="worker"
                    )
                    registry.merge(snapshot)
                    obs_manifest.extend_events(worker_events)
                    completed.append(task_results)
                return completed
    except (BrokenProcessPool, pickle.PicklingError, OSError) as exc:
        raise PoolFailure(completed, exc) from exc


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    invalid: int = 0  # corrupt/stale entries dropped and recomputed

    def summary(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.writes} writes, {self.invalid} invalid"
        )


class ResultCache:
    """Content-addressed on-disk store for task results.

    Entries live at ``<dir>/<key[:2]>/<key>.pkl`` (fanned out so huge
    caches do not create million-entry directories). Writes go through a
    temp file + ``os.replace`` so a crashed run never leaves a torn
    entry; unreadable or schema-mismatched entries are treated as misses
    and deleted, with a diagnostic, never as errors.
    """

    def __init__(
        self,
        directory: Path | None = None,
        on_invalid: Callable[[str], None] | None = None,
    ):
        self.directory = Path(directory) if directory else default_cache_dir()
        self.stats = CacheStats()
        #: Invoked with the cache *key* whenever an entry is dropped as
        #: corrupt/stale — the engine wires this to the quarantine's
        #: strike counter so repeatedly-poisoned keys stop being rewritten.
        self.on_invalid = on_invalid
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise EngineError(
                f"cannot create cache directory {self.directory}: {exc}"
            ) from exc

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> dict[str, MethodResult] | None:
        path = self.path_for(key)
        try:
            payload = pickle.loads(path.read_bytes())
        except FileNotFoundError:
            self.stats.misses += 1
            metrics.inc("engine.cache.miss", reason="absent")
            return None
        except Exception as exc:  # torn write, foreign file, pickle drift
            self._drop_invalid(path, f"unreadable ({type(exc).__name__})", "unreadable")
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA
            or payload.get("key") != key
        ):
            self._drop_invalid(path, "stale schema or key mismatch", "stale")
            return None
        self.stats.hits += 1
        metrics.inc("engine.cache.hit")
        return payload["results"]

    def put(self, key: str, results: dict[str, MethodResult]) -> None:
        path = self.path_for(key)
        payload = {"schema": CACHE_SCHEMA, "key": key, "results": results}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            # A full or read-only disk must not fail the evaluation.
            diagnostics.emit(
                "engine.cache", f"cache write failed for {path.name}: {exc}"
            )
            return
        self.stats.writes += 1

    def _drop_invalid(self, path: Path, reason: str, reason_label: str) -> None:
        self.stats.invalid += 1
        self.stats.misses += 1
        metrics.inc("engine.cache.miss", reason=reason_label)
        diagnostics.emit("engine.cache", f"dropping cache entry {path.name}: {reason}")
        try:
            path.unlink()
        except OSError:
            pass
        if self.on_invalid is not None:
            self.on_invalid(path.stem)

    def entries(self) -> list[Path]:
        """All entry files currently on disk, sorted."""
        return sorted(self.directory.glob("??/*.pkl"))

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline + bounded-retry knobs for isolated task execution.

    ``deadline_s`` is the per-*attempt* wall-clock budget; ``None``
    disables the deadline (the supervisor blocks until the child
    responds). Backoff between attempt ``k`` and ``k+1`` is
    ``backoff_base_s * backoff_factor**k``.
    """

    max_attempts: int = 3
    deadline_s: float | None = 60.0
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        require(self.max_attempts >= 1, "max_attempts must be >= 1", EngineError)
        require(
            self.deadline_s is None or self.deadline_s > 0,
            "deadline_s must be positive (or None to disable)",
            EngineError,
        )
        require(self.backoff_base_s >= 0, "backoff_base_s must be >= 0", EngineError)
        require(self.backoff_factor >= 1, "backoff_factor must be >= 1", EngineError)

    def backoff(self, attempt: int) -> float:
        """Sleep before retrying after failed attempt ``attempt`` (0-based)."""
        return self.backoff_base_s * self.backoff_factor**attempt


@dataclass(frozen=True)
class TaskOutcome:
    """Result of one isolated task, successful or not.

    ``status`` is one of ``ok`` (results present), ``timeout`` (every
    attempt blew its deadline), ``crash`` (worker process died),
    ``error`` (task raised), or ``quarantined`` (skipped without running
    because earlier campaigns struck it out).
    """

    label: str
    status: str
    results: Mapping[str, MethodResult] | None = None
    attempts: int = 0
    from_cache: bool = False
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def __getitem__(self, method: str) -> MethodResult:
        if self.results is None:
            raise TaskCrashError(
                f"no results for failed task {self.label!r}",
                status=self.status,
                error=self.error,
            )
        return self.results[method]


class Quarantine:
    """Strike-counting quarantine list for tasks and cache entries.

    Persisted as sorted JSON at ``path`` (memory-only when ``path`` is
    ``None``) so repeated campaign runs remember which task labels and
    cache keys keep failing. An identity reaching ``threshold`` strikes
    is quarantined: ``run_isolated`` skips quarantined tasks outright
    and the engine stops rewriting quarantined cache keys.
    """

    def __init__(self, path: Path | None = None, threshold: int = 2):
        require(threshold >= 1, "quarantine threshold must be >= 1", EngineError)
        self.path = Path(path) if path is not None else None
        self.threshold = threshold
        self.strikes: dict[str, int] = {}
        self._load()

    @staticmethod
    def _entry(kind: str, ident: str) -> str:
        require(
            kind in ("task", "cache"),
            f"unknown quarantine kind {kind!r}",
            EngineError,
        )
        return f"{kind}:{ident}"

    def _load(self) -> None:
        if self.path is None or not self.path.exists():
            return
        try:
            payload = json.loads(self.path.read_text())
            self.strikes = {str(k): int(v) for k, v in payload["strikes"].items()}
        except (OSError, ValueError, KeyError, TypeError) as exc:
            diagnostics.emit(
                "engine.quarantine",
                f"unreadable quarantine file {self.path}: {exc!r}; starting empty",
            )
            self.strikes = {}

    def _save(self) -> None:
        if self.path is None:
            return
        payload = {"threshold": self.threshold, "strikes": dict(sorted(self.strikes.items()))}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.path.parent, prefix=".tmp-quar-")
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError as exc:
            diagnostics.emit(
                "engine.quarantine", f"cannot persist quarantine: {exc}"
            )

    def strike(self, kind: str, ident: str) -> int:
        """Record one failure; returns the new strike count."""
        entry = self._entry(kind, ident)
        self.strikes[entry] = self.strikes.get(entry, 0) + 1
        count = self.strikes[entry]
        metrics.inc("engine.quarantine.strikes", kind=kind)
        if count == self.threshold:
            metrics.inc("engine.quarantine.added", kind=kind)
            diagnostics.emit(
                "engine.quarantine",
                f"{kind} {ident!r} quarantined after {count} strikes",
            )
            obs_manifest.record_event(
                "engine.quarantined", target=kind, ident=ident, strikes=count
            )
        self._save()
        return count

    def is_quarantined(self, kind: str, ident: str) -> bool:
        return self.strikes.get(self._entry(kind, ident), 0) >= self.threshold

    def clear(self, kind: str | None = None) -> int:
        """Forget strikes (optionally only one kind); returns entries dropped."""
        if kind is None:
            dropped = len(self.strikes)
            self.strikes = {}
        else:
            doomed = [e for e in self.strikes if e.startswith(f"{kind}:")]
            dropped = len(doomed)
            for entry in doomed:
                del self.strikes[entry]
        self._save()
        return dropped

    def entries(self) -> list[tuple[str, str, int]]:
        """Sorted ``(kind, ident, strikes)`` rows (for CLI/report display)."""
        rows = []
        for entry, count in sorted(self.strikes.items()):
            kind, _, ident = entry.partition(":")
            rows.append((kind, ident, count))
        return rows


def _isolated_child(task: EvaluationTask, attempt: int, conn) -> None:
    """Entry point of a single-task worker process.

    Applies deterministic task-surface sabotage first (the chaos hooks
    behind :func:`repro.robustness.faults.task_sabotage`): ``hang``
    sleeps past any reasonable deadline, ``crash`` kills the process
    abruptly, ``task_error`` raises. Sabotage depends only on
    ``(plan.seed, mode, label, attempt)`` — never on scheduling — so
    ``jobs=1`` and ``jobs=N`` campaigns sabotage identically.
    """
    try:
        if task.fault_plan is not None:
            mode = task_sabotage(task.fault_plan, task.label, attempt)
            if mode == "hang":
                time.sleep(3600.0)
            elif mode == "crash":
                os._exit(13)
            elif mode == "task_error":
                raise EngineError(
                    "injected task fault",
                    workload=task.label,
                    attempt=attempt,
                )
        payload = run_task_with_telemetry(task)
        conn.send(("ok", payload))
    except BaseException as exc:  # noqa: BLE001 — ship *any* failure to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            os._exit(1)
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _supervised_attempt(
    task: EvaluationTask, attempt: int, deadline_s: float | None
) -> tuple[str, object]:
    """Run one attempt in a dedicated child process under a deadline.

    Returns ``(status, payload)`` where status is ``ok`` (payload is the
    telemetry tuple from :func:`run_task_with_telemetry`), ``timeout``,
    ``crash`` or ``error`` (payload is a description). The child is
    terminated (then killed) on timeout, so a hung task costs exactly
    one deadline — never the campaign.
    """
    ctx = multiprocessing.get_context("fork")
    receiver, sender = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_isolated_child, args=(task, attempt, sender), daemon=True)
    proc.start()
    sender.close()
    try:
        if not receiver.poll(deadline_s):
            _reap(proc)
            return ("timeout", f"no result within {deadline_s}s deadline")
        try:
            status, payload = receiver.recv()
        except EOFError:
            proc.join(5.0)
            return ("crash", f"worker died without result (exitcode={proc.exitcode})")
        proc.join(5.0)
        return (status, payload)
    finally:
        receiver.close()
        if proc.is_alive():
            _reap(proc)


def _reap(proc: multiprocessing.Process) -> None:
    """Terminate, then kill, a stuck child; always joins."""
    proc.terminate()
    proc.join(2.0)
    if proc.is_alive():
        proc.kill()
        proc.join(5.0)


def _run_with_retries(
    task: EvaluationTask,
    policy: RetryPolicy,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[TaskOutcome, tuple | None]:
    """Drive one task through supervised attempts with backoff.

    Returns the outcome plus the worker telemetry tuple for successful
    attempts (``None`` on failure); the caller merges telemetry in task
    input order so parallel campaigns stay deterministic.
    """
    status, payload = "error", "never attempted"
    for attempt in range(policy.max_attempts):
        with span(
            "engine.attempt", workload=task.label, attempt=attempt
        ):
            status, payload = _supervised_attempt(task, attempt, policy.deadline_s)
        if status == "ok":
            results = payload[0]
            return (
                TaskOutcome(task.label, "ok", results, attempts=attempt + 1),
                payload,
            )
        metrics.inc("engine.isolated.attempt_failures", reason=status)
        diagnostics.emit(
            "engine.isolated",
            f"attempt {attempt + 1}/{policy.max_attempts} for {task.label} "
            f"failed ({status}): {payload}",
        )
        if attempt + 1 < policy.max_attempts:
            sleep(policy.backoff(attempt))
    return (
        TaskOutcome(
            task.label,
            status,
            None,
            attempts=policy.max_attempts,
            error=str(payload),
        ),
        None,
    )


@dataclass(frozen=True)
class EngineConfig:
    """Tunable parameters of the evaluation engine."""

    jobs: int = 1
    use_cache: bool = True
    cache_dir: Path | None = None  # None -> default_cache_dir()
    #: Re-run remaining work serially when the worker pool dies mid-run
    #: (OOM-killed worker, interpreter mismatch) instead of failing.
    serial_fallback: bool = True
    #: Where the quarantine list persists. ``None`` puts it next to the
    #: cache (``<cache_dir>/quarantine.json``) when caching is on, else
    #: keeps it in memory for the engine's lifetime.
    quarantine_path: Path | None = None
    #: Failures before a task label / cache key is quarantined.
    quarantine_threshold: int = 2
    #: Deadline + retry schedule used by :meth:`EvaluationEngine.run_isolated`.
    retry: RetryPolicy = RetryPolicy()

    def __post_init__(self) -> None:
        require(self.jobs >= 1, "jobs must be >= 1", EngineError)
        require(
            self.quarantine_threshold >= 1,
            "quarantine_threshold must be >= 1",
            EngineError,
        )


class EvaluationEngine:
    """Schedule evaluation tasks across the cache and a process pool.

    ``run`` returns :class:`TaskResult`\\ s in input order regardless of
    completion order, cache state or worker count; the serial path
    (``jobs=1``) and the default ``EngineConfig(jobs=1, use_cache=False)``
    reproduce the historical single-process behaviour exactly.
    """

    def __init__(self, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        self.cache = (
            ResultCache(self.config.cache_dir) if self.config.use_cache else None
        )
        quarantine_path = self.config.quarantine_path
        if quarantine_path is None and self.cache is not None:
            quarantine_path = self.cache.directory / "quarantine.json"
        self.quarantine = Quarantine(
            quarantine_path, threshold=self.config.quarantine_threshold
        )
        if self.cache is not None:
            self.cache.on_invalid = lambda key: self.quarantine.strike("cache", key)
        self._shm = SharedTablePlane()
        self._closed = False
        # The plane, not the engine, is what atexit must reap: segments
        # are kernel objects that outlive a crashed interpreter's heap.
        register_plane(self._shm)

    @property
    def cache_stats(self) -> CacheStats | None:
        return self.cache.stats if self.cache is not None else None

    @property
    def closed(self) -> bool:
        return self._closed

    def publish_table(self, table, golden) -> SharedTableRef:
        """Publish a (table, golden) bundle for shared-memory tasks.

        Returns a :class:`~repro.evaluation.shm.SharedTableRef` to hang
        off :class:`EvaluationTask`\\ s. Identical bundles are
        deduplicated and refcounted; everything still published is
        unlinked by :meth:`close`.
        """
        require(not self._closed, "engine is closed", EngineError)
        return self._shm.publish(table, golden)

    def release_table(self, ref: SharedTableRef) -> bool:
        """Drop one publication reference; True when the segment unlinked."""
        return self._shm.release(ref)

    def close(self) -> None:
        """Unlink every published segment; idempotent, crash-safe.

        Registered per-plane with ``atexit`` as a backstop; benches and
        the service also call it (or use the engine as a context
        manager) so long-lived processes do not accumulate segments.
        """
        if self._closed:
            return
        self._closed = True
        freed = self._shm.close()
        unregister_plane(self._shm)
        if freed:
            diagnostics.emit(
                "engine.shm", f"engine close unlinked {freed} shared segments"
            )

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, tasks: Sequence[EvaluationTask]) -> list[TaskResult]:
        """Evaluate every task, probing the cache first."""
        with span("engine.run", tasks=len(tasks)):
            ordered: list[TaskResult | None] = [None] * len(tasks)
            pending: list[int] = []
            keys: list[str | None] = [None] * len(tasks)
            with span("engine.cache.probe", tasks=len(tasks)):
                for index, task in enumerate(tasks):
                    if self.cache is not None:
                        keys[index] = task.cache_key()
                        cached = self.cache.get(keys[index])
                        if cached is not None:
                            ordered[index] = TaskResult(
                                task.label, cached, from_cache=True
                            )
                            continue
                    pending.append(index)
            if pending:
                computed = self._execute([tasks[i] for i in pending])
                for index, results in zip(pending, computed):
                    ordered[index] = TaskResult(tasks[index].label, results)
                    self._cache_put(keys[index], results)
            return [result for result in ordered if result is not None]

    def _cache_put(self, key: str | None, results: dict[str, MethodResult]) -> None:
        """Write-through, unless the key's entries keep coming back corrupt."""
        if self.cache is None or key is None:
            return
        if self.quarantine.is_quarantined("cache", key):
            metrics.inc("engine.cache.quarantine_skips")
            return
        self.cache.put(key, results)

    def _execute(self, tasks: Sequence[EvaluationTask]) -> list[dict]:
        jobs = min(self.config.jobs, len(tasks))
        if jobs <= 1:
            return [run_task(task) for task in tasks]
        try:
            return _pool_map(jobs, tasks)
        except (PoolFailure, BrokenProcessPool, pickle.PicklingError, OSError) as exc:
            # Plain exceptions cover tests (and callers) that substitute
            # _pool_map with something that raises directly.
            if isinstance(exc, PoolFailure):
                completed, cause = exc.completed, exc.cause
            else:
                completed, cause = [], exc
            if not self.config.serial_fallback:
                raise cause
            remaining = tasks[len(completed):]
            obs_manifest.record_event(
                "engine.pool_failure",
                exception=repr(cause),
                jobs=jobs,
                tasks=len(tasks),
                completed=len(completed),
            )
            metrics.inc("engine.pool.failures")
            diagnostics.emit(
                "engine",
                f"process pool failed ({cause!r}); reusing {len(completed)} "
                f"completed results and degrading to serial execution for "
                f"{len(remaining)} remaining tasks",
            )
            with span(
                "engine.serial_fallback",
                tasks=len(remaining),
                reused=len(completed),
            ):
                return completed + [run_task(task) for task in remaining]

    def run_isolated(
        self,
        tasks: Sequence[EvaluationTask],
        policy: RetryPolicy | None = None,
    ) -> list[TaskOutcome]:
        """Evaluate tasks with per-task crash isolation and deadlines.

        Each pending task runs in its *own* child process supervised by a
        thread: a hang costs one deadline, a crash costs one task, and
        neither aborts the batch (contrast :meth:`run`, where one dying
        worker used to cost the whole pool). Failed tasks earn quarantine
        strikes; quarantined tasks are skipped outright. Outcomes come
        back in input order, cache-warm where possible, and worker
        telemetry is merged in input order so ``jobs=1`` and ``jobs=N``
        produce byte-identical surviving results and aggregates.
        """
        policy = policy or self.config.retry
        with span("engine.run_isolated", tasks=len(tasks)) as iso_span:
            ordered: list[TaskOutcome | None] = [None] * len(tasks)
            keys: list[str | None] = [None] * len(tasks)
            pending: list[int] = []
            for index, task in enumerate(tasks):
                if self.quarantine.is_quarantined("task", task.label):
                    metrics.inc("engine.isolated.quarantine_skips")
                    obs_manifest.record_event(
                        "engine.task_skipped", workload=task.label, reason="quarantined"
                    )
                    ordered[index] = TaskOutcome(
                        task.label,
                        "quarantined",
                        attempts=0,
                        error="skipped: quarantined task",
                    )
                    continue
                if self.cache is not None:
                    keys[index] = task.cache_key()
                    cached = self.cache.get(keys[index])
                    if cached is not None:
                        ordered[index] = TaskOutcome(
                            task.label, "ok", cached, attempts=0, from_cache=True
                        )
                        continue
                pending.append(index)
            if pending:
                jobs = min(self.config.jobs, len(pending))
                if jobs <= 1:
                    attempted = [
                        _run_with_retries(tasks[i], policy) for i in pending
                    ]
                else:
                    with ThreadPoolExecutor(max_workers=jobs) as supervisors:
                        attempted = list(
                            supervisors.map(
                                lambda i: _run_with_retries(tasks[i], policy),
                                pending,
                            )
                        )
                registry = metrics.get_registry()
                for index, (outcome, telemetry) in zip(pending, attempted):
                    ordered[index] = outcome
                    if outcome.ok:
                        self._cache_put(keys[index], dict(outcome.results))
                        if telemetry is not None and obs_state.enabled():
                            _, worker_spans, snapshot, worker_events = telemetry
                            spans.adopt(
                                worker_spans,
                                parent_id=iso_span.span_id,
                                proc="isolated",
                            )
                            registry.merge(snapshot)
                            obs_manifest.extend_events(worker_events)
                    else:
                        metrics.inc("engine.isolated.failures", status=outcome.status)
                        obs_manifest.record_event(
                            "engine.task_failed",
                            workload=outcome.label,
                            status=outcome.status,
                            attempts=outcome.attempts,
                            error=outcome.error,
                        )
                        self.quarantine.strike("task", outcome.label)
            return [outcome for outcome in ordered if outcome is not None]
