"""Parallel, cached evaluation engine.

Every figure/table experiment reduces to the same unit of work: build a
workload context (generate + measure + profile) and run one or both
samplers on it. That unit is a pure function of (resolved workload spec,
sampler configs, fault plan, package source), so this module fans units
out across a process pool and memoizes their results in a content-
addressed on-disk cache:

* :class:`EvaluationTask` — one picklable, seed-deterministic unit of
  work, with a :meth:`~EvaluationTask.cache_key` derived via
  :func:`repro.utils.hashing.stable_hash`;
* :class:`ResultCache` — the on-disk store (atomic writes, corruption
  tolerance, hit/miss statistics);
* :class:`EvaluationEngine` — scheduling: cache probe, process-pool
  fan-out, graceful degradation to serial execution when the pool dies
  (reported through :mod:`repro.robustness.diagnostics`).

Determinism contract: every stochastic element downstream of a task
(workload generation, measurement noise, k-means init, random selection)
is seeded from string labels via :mod:`repro.utils.seeding`, so
``jobs=1``, ``jobs=N`` and a cache-warm rerun produce *byte-identical*
pickled :class:`~repro.evaluation.runner.MethodResult`\\ s. The property
tests in ``tests/evaluation/test_engine_properties.py`` enforce this.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

import repro
from repro.evaluation.context import build_context
from repro.evaluation.runner import MethodResult, evaluate_method
from repro.methods import MethodRequest, get_method
from repro.observability import manifest as obs_manifest
from repro.observability import metrics, spans
from repro.observability import state as obs_state
from repro.observability.spans import span
from repro.robustness import diagnostics
from repro.robustness.faults import FaultPlan
from repro.utils.errors import EngineError
from repro.utils.hashing import stable_hash, tree_fingerprint
from repro.utils.validation import require
from repro.workloads.catalog import spec_for

if TYPE_CHECKING:  # annotation-only; keeps baselines out of the import graph
    from repro.baselines.pks import PksConfig
    from repro.core.config import SieveConfig

#: Bump when the cached payload layout changes; old entries become misses.
#: 3: MethodResult grew ``attribution`` (and PredictionResult
#: ``contributions``), changing the pickled payload shape.
CACHE_SCHEMA = 3

#: The default method comparison (the paper's headline Sieve-vs-PKS).
KNOWN_METHODS = ("sieve", "pks")


def default_cache_dir() -> Path:
    """Resolve the default on-disk cache location.

    ``SIEVE_REPRO_CACHE_DIR`` wins, then ``$XDG_CACHE_HOME/sieve-repro``,
    then ``~/.cache/sieve-repro``.
    """
    env = os.environ.get("SIEVE_REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "sieve-repro"


@lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """Content hash of the installed ``repro`` package source.

    Folded into every cache key so editing any module invalidates stale
    results even when ``repro.__version__`` is unchanged.
    """
    return tree_fingerprint(Path(repro.__file__).resolve().parent)


@dataclass(frozen=True)
class EvaluationTask:
    """One unit of work: evaluate the requested methods on one workload.

    Tasks are frozen, hashable and picklable; workers resolve the label
    through the catalog and rebuild the context from seeds, so shipping a
    task to another process ships *no* bulk data.

    ``methods`` accepts registry names (``"sieve"``) and/or
    :class:`~repro.methods.MethodRequest`\\ s; plain names are normalized
    into requests at construction, folding in the legacy ``sieve_config``
    / ``pks_config`` conveniences. Every requested method must resolve in
    the registry — construction and :meth:`cache_key` both raise a typed
    :class:`~repro.utils.errors.UnknownMethodError` otherwise, so a task
    can never mint a cache key for a method that cannot run.
    """

    label: str
    max_invocations: int | None = None
    sieve_config: SieveConfig | None = None
    pks_config: PksConfig | None = None
    fault_plan: FaultPlan | None = None
    methods: tuple[str | MethodRequest, ...] = KNOWN_METHODS

    def __post_init__(self) -> None:
        require(len(self.methods) >= 1, "task must request a method", EngineError)
        legacy = {"sieve": self.sieve_config, "pks": self.pks_config}
        requests = tuple(
            entry
            if isinstance(entry, MethodRequest)
            else MethodRequest(method=entry, config=legacy.get(entry))
            for entry in self.methods
        )
        keys = [request.key for request in requests]
        require(
            len(set(keys)) == len(keys),
            f"duplicate method keys in task: {keys} (alias repeated requests)",
            EngineError,
        )
        # Fail loudly now: resolve every name and type-check its config.
        for request in requests:
            get_method(request.method).resolve_config(request.config)
        # Normalize in place (frozen dataclass): the legacy configs live
        # inside the requests from here on, so a task built from names +
        # configs hashes identically to one built from explicit requests.
        object.__setattr__(self, "methods", requests)
        object.__setattr__(self, "sieve_config", None)
        object.__setattr__(self, "pks_config", None)

    def cache_key(self) -> str:
        """Content-addressed identity of this task's result.

        Key material: schema version, package version, package source
        fingerprint, the *resolved* workload spec (so catalog
        recalibration invalidates), the invocation cap, the fault plan
        and every method request (registry name + full config), so two
        tasks differing only in a method's config never collide.

        Raises :class:`~repro.utils.errors.UnknownMethodError` if any
        requested method is no longer registered.
        """
        for request in self.methods:
            get_method(request.method)  # typed failure before hashing
        return stable_hash(
            "evaluation-task",
            CACHE_SCHEMA,
            repro.__version__,
            source_fingerprint(),
            spec_for(self.label),
            self.max_invocations,
            self.fault_plan,
            list(self.methods),
        )


@dataclass(frozen=True)
class TaskResult:
    """A task's outcome plus where it came from (computed vs cache)."""

    label: str
    results: Mapping[str, MethodResult]
    from_cache: bool = False

    def __getitem__(self, method: str) -> MethodResult:
        return self.results[method]


def run_task(task: EvaluationTask) -> dict[str, MethodResult]:
    """Execute one task in the current process.

    This is the process-pool worker: module-level so it pickles by
    reference, and independent of all engine state so serial and parallel
    execution share one code path.
    """
    with span("engine.task", workload=task.label):
        context = build_context(
            task.label, task.max_invocations, fault_plan=task.fault_plan
        )
        results: dict[str, MethodResult] = {}
        for request in task.methods:
            results[request.key] = evaluate_method(
                request.method, context, request.config
            )
        return results


def run_task_with_telemetry(
    task: EvaluationTask,
) -> tuple[dict[str, MethodResult], tuple, dict, tuple]:
    """Pool worker: run a task and ship its telemetry back to the parent.

    The worker's span records, metrics registry and event list are reset
    at task start (the fork inherited the parent's — counting that twice
    would corrupt the merge), so the returned snapshot is exactly this
    task's delta. Live sinks are also dropped: they wrap parent-owned
    file handles, and a forked worker emitting into them would interleave
    with the parent's stream. The parent adopts spans under its fan-out
    span and merges metric snapshots and events in task input order
    (``pool.map`` preserves it), which keeps the merged telemetry
    byte-equal to a serial run's.
    """
    spans.reset()
    spans.clear_sinks()
    metrics.get_registry().reset()
    obs_manifest.reset_events()
    results = run_task(task)
    return (
        results,
        spans.records(),
        metrics.get_registry().snapshot(),
        obs_manifest.events(),
    )


def _pool_map(jobs: int, tasks: Sequence[EvaluationTask]) -> list[dict]:
    """Run tasks through a process pool, preserving input order.

    When observability is enabled, workers return their telemetry along
    with the results; spans are grafted under the live ``engine.pool``
    span and metric snapshots merge into the parent registry here, in
    input order (``pool.map`` preserves it), so parallel aggregation is
    deterministic.
    """
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        if not obs_state.enabled():
            return list(pool.map(run_task, tasks))
        with span("engine.pool", jobs=jobs, tasks=len(tasks)) as pool_span:
            results = []
            registry = metrics.get_registry()
            for task_results, worker_spans, snapshot, worker_events in pool.map(
                run_task_with_telemetry, tasks
            ):
                spans.adopt(worker_spans, parent_id=pool_span.span_id, proc="worker")
                registry.merge(snapshot)
                obs_manifest.extend_events(worker_events)
                results.append(task_results)
            return results


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    invalid: int = 0  # corrupt/stale entries dropped and recomputed

    def summary(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.writes} writes, {self.invalid} invalid"
        )


class ResultCache:
    """Content-addressed on-disk store for task results.

    Entries live at ``<dir>/<key[:2]>/<key>.pkl`` (fanned out so huge
    caches do not create million-entry directories). Writes go through a
    temp file + ``os.replace`` so a crashed run never leaves a torn
    entry; unreadable or schema-mismatched entries are treated as misses
    and deleted, with a diagnostic, never as errors.
    """

    def __init__(self, directory: Path | None = None):
        self.directory = Path(directory) if directory else default_cache_dir()
        self.stats = CacheStats()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise EngineError(
                f"cannot create cache directory {self.directory}: {exc}"
            ) from exc

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> dict[str, MethodResult] | None:
        path = self.path_for(key)
        try:
            payload = pickle.loads(path.read_bytes())
        except FileNotFoundError:
            self.stats.misses += 1
            metrics.inc("engine.cache.miss", reason="absent")
            return None
        except Exception as exc:  # torn write, foreign file, pickle drift
            self._drop_invalid(path, f"unreadable ({type(exc).__name__})", "unreadable")
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA
            or payload.get("key") != key
        ):
            self._drop_invalid(path, "stale schema or key mismatch", "stale")
            return None
        self.stats.hits += 1
        metrics.inc("engine.cache.hit")
        return payload["results"]

    def put(self, key: str, results: dict[str, MethodResult]) -> None:
        path = self.path_for(key)
        payload = {"schema": CACHE_SCHEMA, "key": key, "results": results}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            # A full or read-only disk must not fail the evaluation.
            diagnostics.emit(
                "engine.cache", f"cache write failed for {path.name}: {exc}"
            )
            return
        self.stats.writes += 1

    def _drop_invalid(self, path: Path, reason: str, reason_label: str) -> None:
        self.stats.invalid += 1
        self.stats.misses += 1
        metrics.inc("engine.cache.miss", reason=reason_label)
        diagnostics.emit("engine.cache", f"dropping cache entry {path.name}: {reason}")
        try:
            path.unlink()
        except OSError:
            pass

    def entries(self) -> list[Path]:
        """All entry files currently on disk, sorted."""
        return sorted(self.directory.glob("??/*.pkl"))

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


@dataclass(frozen=True)
class EngineConfig:
    """Tunable parameters of the evaluation engine."""

    jobs: int = 1
    use_cache: bool = True
    cache_dir: Path | None = None  # None -> default_cache_dir()
    #: Re-run remaining work serially when the worker pool dies mid-run
    #: (OOM-killed worker, interpreter mismatch) instead of failing.
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        require(self.jobs >= 1, "jobs must be >= 1", EngineError)


class EvaluationEngine:
    """Schedule evaluation tasks across the cache and a process pool.

    ``run`` returns :class:`TaskResult`\\ s in input order regardless of
    completion order, cache state or worker count; the serial path
    (``jobs=1``) and the default ``EngineConfig(jobs=1, use_cache=False)``
    reproduce the historical single-process behaviour exactly.
    """

    def __init__(self, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        self.cache = (
            ResultCache(self.config.cache_dir) if self.config.use_cache else None
        )

    @property
    def cache_stats(self) -> CacheStats | None:
        return self.cache.stats if self.cache is not None else None

    def run(self, tasks: Sequence[EvaluationTask]) -> list[TaskResult]:
        """Evaluate every task, probing the cache first."""
        with span("engine.run", tasks=len(tasks)):
            ordered: list[TaskResult | None] = [None] * len(tasks)
            pending: list[int] = []
            keys: list[str | None] = [None] * len(tasks)
            with span("engine.cache.probe", tasks=len(tasks)):
                for index, task in enumerate(tasks):
                    if self.cache is not None:
                        keys[index] = task.cache_key()
                        cached = self.cache.get(keys[index])
                        if cached is not None:
                            ordered[index] = TaskResult(
                                task.label, cached, from_cache=True
                            )
                            continue
                    pending.append(index)
            if pending:
                computed = self._execute([tasks[i] for i in pending])
                for index, results in zip(pending, computed):
                    ordered[index] = TaskResult(tasks[index].label, results)
                    if self.cache is not None and keys[index] is not None:
                        self.cache.put(keys[index], results)
            return [result for result in ordered if result is not None]

    def _execute(self, tasks: Sequence[EvaluationTask]) -> list[dict]:
        jobs = min(self.config.jobs, len(tasks))
        if jobs <= 1:
            return [run_task(task) for task in tasks]
        try:
            return _pool_map(jobs, tasks)
        except (BrokenProcessPool, pickle.PicklingError, OSError) as exc:
            if not self.config.serial_fallback:
                raise
            obs_manifest.record_event(
                "engine.pool_failure",
                exception=repr(exc),
                jobs=jobs,
                tasks=len(tasks),
            )
            metrics.inc("engine.pool.failures")
            diagnostics.emit(
                "engine",
                f"process pool failed ({exc!r}); "
                f"degrading to serial execution for {len(tasks)} tasks",
            )
            with span("engine.serial_fallback", tasks=len(tasks)):
                return [run_task(task) for task in tasks]
