"""Plain-text table rendering for benches, the CLI and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    separator = "  ".join("-" * w for w in widths)
    body = [line(headers), separator]
    body += [line(row) for row in materialized]
    return "\n".join(body)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def percent(value: float) -> str:
    """Format a ratio as a percentage string."""
    return f"{value * 100:.2f}%"


def times(value: float) -> str:
    """Format a speedup as e.g. '1272x'."""
    return f"{value:,.0f}x"
