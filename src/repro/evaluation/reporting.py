"""Plain-text table rendering for benches, the CLI and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    separator = "  ".join("-" * w for w in widths)
    body = [line(headers), separator]
    body += [line(row) for row in materialized]
    return "\n".join(body)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def percent(value: float) -> str:
    """Format a ratio as a percentage string."""
    return f"{value * 100:.2f}%"


def times(value: float) -> str:
    """Format a speedup as e.g. '1272x'."""
    return f"{value:,.0f}x"


def experiment_row_dict(row) -> dict:
    """Flatten an ExperimentRow into a JSON-able manifest/baseline row.

    One column group per method request key — ``<key>_error`` /
    ``<key>_cov`` / ``<key>_speedup`` / ``<key>_reps`` — so manifest
    diffing (which gates on ``*_error`` keys) covers every method an
    experiment ran, not just the Sieve-vs-PKS pair. Duck-typed for the
    same reason as :func:`comparison_row_dict`.
    """
    out: dict = {"workload": row.workload}
    for key, result in row.results.items():
        out[f"{key}_error"] = float(result.error)
        out[f"{key}_cov"] = float(result.cycle_cov)
        out[f"{key}_speedup"] = float(result.speedup)
        out[f"{key}_reps"] = int(result.num_representatives)
    return out


def comparison_row_dict(row) -> dict:
    """Flatten a ComparisonRow into a JSON-able manifest/baseline row.

    Duck-typed so this module stays dependency-free (it is imported by
    :mod:`repro.observability.report`, which must not pull in the
    experiment drivers).
    """
    return {
        "workload": row.workload,
        "sieve_error": float(row.sieve.error),
        "pks_error": float(row.pks.error),
        "sieve_cov": float(row.sieve.cycle_cov),
        "pks_cov": float(row.pks.cycle_cov),
        "sieve_speedup": float(row.sieve.speedup),
        "pks_speedup": float(row.pks.speedup),
        "sieve_reps": int(row.sieve.num_representatives),
        "pks_reps": int(row.pks.num_representatives),
    }
