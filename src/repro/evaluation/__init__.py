"""Evaluation harness.

Implements the paper's metrics (Section IV-3): prediction error against
the golden reference, simulation speedup, within-cluster cycle dispersion,
profiling-time speedup and cross-architecture relative accuracy — plus the
experiment drivers that regenerate each figure/table.

Re-exports resolve lazily (PEP 562): leaf modules like
:mod:`repro.evaluation.imputation` are importable from :mod:`repro.core`
and :mod:`repro.baselines` without dragging in the engine/runner stack
(which imports those packages right back).
"""

from importlib import import_module

#: public name -> defining submodule
_EXPORTS = {
    "WorkloadContext": "context",
    "build_context": "context",
    "EngineConfig": "engine",
    "EvaluationEngine": "engine",
    "EvaluationTask": "engine",
    "TaskResult": "engine",
    "ResultCache": "engine",
    "default_cache_dir": "engine",
    "prediction_error": "metrics",
    "simulation_speedup": "metrics",
    "relative_speedup_error": "metrics",
    "harmonic_mean": "metrics",
    "weighted_cycle_cov": "dispersion",
    "MethodResult": "runner",
    "evaluate_method": "runner",
    "evaluate_sieve": "runner",
    "evaluate_pks": "runner",
    "ExperimentSpec": "experiments",
    "ExperimentRow": "experiments",
    "run_experiment": "experiments",
}

_SUBMODULES = {
    "context",
    "dispersion",
    "engine",
    "experiments",
    "imputation",
    "metrics",
    "reporting",
    "runner",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    if name in _EXPORTS:
        value = getattr(import_module(f"{__name__}.{_EXPORTS[name]}"), name)
        globals()[name] = value
        return value
    if name in _SUBMODULES:
        module = import_module(f"{__name__}.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__) | _SUBMODULES)
