"""Evaluation harness.

Implements the paper's metrics (Section IV-3): prediction error against
the golden reference, simulation speedup, within-cluster cycle dispersion,
profiling-time speedup and cross-architecture relative accuracy — plus the
experiment drivers that regenerate each figure/table.
"""

from repro.evaluation.context import WorkloadContext, build_context
from repro.evaluation.dispersion import weighted_cycle_cov
from repro.evaluation.engine import (
    EngineConfig,
    EvaluationEngine,
    EvaluationTask,
    ResultCache,
    TaskResult,
    default_cache_dir,
)
from repro.evaluation.metrics import (
    harmonic_mean,
    prediction_error,
    relative_speedup_error,
    simulation_speedup,
)
from repro.evaluation.runner import MethodResult, evaluate_pks, evaluate_sieve

__all__ = [
    "WorkloadContext",
    "build_context",
    "EngineConfig",
    "EvaluationEngine",
    "EvaluationTask",
    "TaskResult",
    "ResultCache",
    "default_cache_dir",
    "prediction_error",
    "simulation_speedup",
    "relative_speedup_error",
    "harmonic_mean",
    "weighted_cycle_cov",
    "MethodResult",
    "evaluate_sieve",
    "evaluate_pks",
]
