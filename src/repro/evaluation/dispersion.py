"""Within-cluster cycle-count dispersion (Figure 4).

The paper reports the invocation-count-weighted average coefficient of
variation of cycle counts within each cluster/stratum: "a measure for the
degree of cycle count variability or dispersion within each cluster".
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.utils.stats import coefficient_of_variation
from repro.utils.validation import require


def weighted_cycle_cov(
    groups: Iterable[np.ndarray], cycles_by_row: np.ndarray
) -> float:
    """Invocation-count-weighted average within-group CoV of cycles.

    ``groups`` yields row-index arrays (a Sieve stratification or a PKS
    clustering); ``cycles_by_row`` is the golden cycle count per profile row.
    """
    covs: list[float] = []
    weights: list[int] = []
    for rows in groups:
        if len(rows) == 0:
            continue
        covs.append(coefficient_of_variation(cycles_by_row[rows]))
        weights.append(len(rows))
    require(len(covs) > 0, "no non-empty groups")
    return float(np.average(covs, weights=weights))
