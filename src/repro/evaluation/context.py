"""Cached per-workload evaluation context.

Building a context = generate the workload, measure it on the baseline GPU
(the golden reference), and profile it with both tools. Contexts are
memoized because several experiments share the same workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.gpu.arch import AMPERE_RTX3080, TURING_RTX2080TI, GpuArchitecture
from repro.gpu.hardware import HardwareExecutor, WorkloadMeasurement
from repro.profiling.cost import ProfilingCost
from repro.profiling.nsight import NsightComputeProfiler
from repro.profiling.nvbit import NVBitProfiler
from repro.profiling.table import ProfileTable
from repro.workloads.catalog import spec_for
from repro.workloads.generator import WorkloadRun, generate


@dataclass(frozen=True)
class WorkloadContext:
    """Everything an experiment needs for one workload."""

    run: WorkloadRun
    golden: WorkloadMeasurement  # baseline-architecture reference
    sieve_table: ProfileTable  # NVBit profile (instruction count only)
    pks_table: ProfileTable  # Nsight profile (12 metrics)
    sieve_profiling: ProfilingCost
    pks_profiling: ProfilingCost

    @property
    def label(self) -> str:
        return self.run.label

    def measure_on(self, arch: GpuArchitecture) -> WorkloadMeasurement:
        """Golden reference on another architecture (e.g. Turing)."""
        return HardwareExecutor(arch).measure(self.run)


@lru_cache(maxsize=4)
def _cached_context(label: str, max_invocations: int | None, arch_name: str):
    arch = {a.name: a for a in (AMPERE_RTX3080, TURING_RTX2080TI)}[arch_name]
    run = generate(spec_for(label), max_invocations=max_invocations)
    golden = HardwareExecutor(arch).measure(run)
    sieve_table, sieve_cost = NVBitProfiler(arch).profile(run)
    pks_table, pks_cost = NsightComputeProfiler(arch).profile(run)
    return WorkloadContext(
        run=run,
        golden=golden,
        sieve_table=sieve_table,
        pks_table=pks_table,
        sieve_profiling=sieve_cost,
        pks_profiling=pks_cost,
    )


def build_context(
    label: str,
    max_invocations: int | None = None,
    arch: GpuArchitecture = AMPERE_RTX3080,
) -> WorkloadContext:
    """Build (or fetch the cached) evaluation context for ``label``."""
    return _cached_context(label, max_invocations, arch.name)
