"""Cached per-workload evaluation context.

Building a context = generate the workload, measure it on the baseline GPU
(the golden reference), and profile it with both tools. Contexts are
memoized because several experiments share the same workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.gpu.arch import AMPERE_RTX3080, TURING_RTX2080TI, GpuArchitecture
from repro.gpu.hardware import HardwareExecutor, WorkloadMeasurement
from repro.observability import metrics, span
from repro.profiling.cost import ProfilingCost
from repro.profiling.nsight import NsightComputeProfiler
from repro.profiling.nvbit import NVBitProfiler
from repro.profiling.table import ProfileTable
from repro.robustness.faults import (
    FaultPlan,
    inject_measurement_faults,
    inject_table_faults,
)
from repro.utils.validation import require
from repro.workloads.catalog import spec_for
from repro.workloads.generator import WorkloadRun, generate
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class WorkloadContext:
    """Everything an experiment needs for one workload."""

    run: WorkloadRun
    golden: WorkloadMeasurement  # baseline-architecture reference
    sieve_table: ProfileTable  # NVBit profile (instruction count only)
    pks_table: ProfileTable  # Nsight profile (12 metrics)
    sieve_profiling: ProfilingCost
    pks_profiling: ProfilingCost
    #: The uncorrupted golden reference when fault injection is active.
    #: ``golden`` is what the samplers see; ``truth`` is what accuracy is
    #: judged against. Identical unless a fault plan touched the run.
    clean_golden: WorkloadMeasurement | None = None

    @property
    def truth(self) -> WorkloadMeasurement:
        """The measurement accuracy should be judged against."""
        return self.clean_golden if self.clean_golden is not None else self.golden

    @property
    def label(self) -> str:
        return self.run.label

    def measure_on(self, arch: GpuArchitecture) -> WorkloadMeasurement:
        """Golden reference on another architecture (e.g. Turing)."""
        return HardwareExecutor(arch).measure(self.run)


@lru_cache(maxsize=4)
def _cached_context(
    label: str,
    max_invocations: int | None,
    arch_name: str,
    fault_plan: FaultPlan | None,
    spec=None,  # WorkloadSpec | None; inline spec for non-catalog labels
):
    arch = {a.name: a for a in (AMPERE_RTX3080, TURING_RTX2080TI)}[arch_name]
    with span("context.build", workload=label, arch=arch_name):
        with span("context.generate", workload=label):
            run = generate(
                spec if spec is not None else spec_for(label),
                max_invocations=max_invocations,
            )
        with span("context.measure", workload=label):
            golden = HardwareExecutor(arch).measure(run)
        with span("context.profile.nvbit", workload=label):
            sieve_table, sieve_cost = NVBitProfiler(arch).profile(run)
        with span("context.profile.nsight", workload=label):
            pks_table, pks_cost = NsightComputeProfiler(arch).profile(run)
        clean_golden = None
        if fault_plan is not None:
            # Corrupt what the samplers *see* (profiles + golden reference);
            # the workload itself stays pristine, mirroring a dirty profiling
            # run over a healthy application. Accuracy is still judged against
            # the clean reference (``WorkloadContext.truth``).
            clean_golden = golden
            with span("context.inject_faults", workload=label):
                sieve_table, _ = inject_table_faults(sieve_table, fault_plan)
                pks_table, _ = inject_table_faults(pks_table, fault_plan)
                golden, _ = inject_measurement_faults(golden, fault_plan)
        metrics.inc("context.builds")
        metrics.observe("context.invocations", run.num_invocations)
    return WorkloadContext(
        run=run,
        golden=golden,
        sieve_table=sieve_table,
        pks_table=pks_table,
        sieve_profiling=sieve_cost,
        pks_profiling=pks_cost,
        clean_golden=clean_golden,
    )


def build_context(
    label: str,
    max_invocations: int | None = None,
    arch: GpuArchitecture = AMPERE_RTX3080,
    fault_plan: FaultPlan | None = None,
    spec: WorkloadSpec | None = None,
) -> WorkloadContext:
    """Build (or fetch the cached) evaluation context for ``label``.

    ``fault_plan`` (see :mod:`repro.robustness.faults`) optionally injects
    deterministic corruption into the profile tables and the golden
    measurement — the knob behind the CLI's ``--inject-faults`` and the
    resilience benchmark. Plans are part of the cache key.

    ``spec`` supplies an inline :class:`~repro.workloads.spec.WorkloadSpec`
    for labels that are not in the catalog (fuzz candidates). Its label
    must match ``label``; it participates in memoization like any other
    argument because frozen dataclasses hash by value.
    """
    if spec is not None:
        require(
            spec.label == label,
            f"inline spec label {spec.label!r} does not match {label!r}",
        )
    return _cached_context(label, max_invocations, arch.name, fault_plan, spec)
