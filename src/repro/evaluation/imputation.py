"""Shared measurement-imputation helpers for sampling-method predictors.

Every predictor faces the same dirty-input problem: a representative's
golden measurement can be missing (dropped invocation, absent kernel) or
degenerate (zero/negative/non-finite counters). Sieve predicts in the
IPC domain and PKS in the cycle domain, but the fallback ladder is
identical — per-invocation value, then kernel mean over cleanly measured
invocations, then a caller-chosen last resort. This module is that
ladder, deduplicated out of :mod:`repro.core.pipeline` and
:mod:`repro.baselines.pks`; the callers keep emitting their own
diagnostics so degraded-path reporting stays per-method.

The module is a leaf by design: it may be imported from core, baselines
and evaluation alike without creating an import cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

import repro.robustness.diagnostics as diagnostics

if TYPE_CHECKING:  # annotation-only imports; this module must stay a leaf
    from repro.core.types import Representative
    from repro.gpu.hardware import WorkloadMeasurement
    from repro.profiling.table import ProfileTable


# --------------------------------------------------------------------- #
# IPC domain (Sieve predicts application IPC)


def measured_ipc_or_none(
    rep: Representative, measurement: WorkloadMeasurement
) -> float | None:
    """The representative's measured IPC, or ``None`` if unusable.

    Unusable means: its kernel is absent from the measurement, its
    invocation index is out of range (dropped invocation), or either
    counter is non-positive/non-finite.
    """
    try:
        insn = rep.measured_insn(measurement)
        cycles = rep.measured_cycles(measurement)
    except (KeyError, IndexError):
        return None
    if cycles <= 0 or insn <= 0:
        return None
    ipc = insn / cycles
    return ipc if np.isfinite(ipc) else None


def kernel_mean_ipc(
    kernel_name: str, measurement: WorkloadMeasurement
) -> float | None:
    """Mean IPC over a kernel's cleanly measured invocations, if any."""
    kernel = measurement.per_kernel.get(kernel_name)
    if kernel is None:
        return None
    cycles = kernel.cycles.astype(np.float64)
    insn = kernel.insn_count.astype(np.float64)
    clean = (cycles > 0) & (insn > 0)
    if not clean.any():
        return None
    return float((insn[clean] / cycles[clean]).mean())


# --------------------------------------------------------------------- #
# Cycle domain (PKS and the statistical baselines predict cycles)


def measured_cycles_or_none(
    rep: Representative, measurement: WorkloadMeasurement
) -> float | None:
    """The representative's measured cycles, or ``None`` if unusable."""
    try:
        cycles = rep.measured_cycles(measurement)
    except (KeyError, IndexError):
        return None
    return float(cycles) if cycles > 0 else None


def kernel_mean_cycles(
    kernel_name: str, measurement: WorkloadMeasurement
) -> float | None:
    """Mean cycles over a kernel's cleanly measured invocations, if any."""
    kernel = measurement.per_kernel.get(kernel_name)
    if kernel is None:
        return None
    clean = kernel.cycles[kernel.cycles > 0]
    return float(clean.mean()) if len(clean) else None


def cycles_in_table_order(
    table: ProfileTable, measurement: WorkloadMeasurement
) -> np.ndarray:
    """Golden per-invocation cycle counts aligned with the table's rows.

    Rows whose measurement is missing (absent kernel, out-of-range
    invocation id) or zero are imputed with the kernel-mean cycle count
    (workload mean as a last resort), with a summary diagnostic, so a
    partially corrupted golden reference still yields usable per-row
    cycles for k selection and dispersion statistics.
    """
    cycles = np.full(len(table), np.nan, dtype=np.float64)
    # One gather through the concatenated per-kernel cycle arrays replaces
    # the historical per-kernel row scans (O(rows x kernels)): row r of
    # kernel k reads ``concatenated[offset[k] + invocation_id[r]]``. The
    # scalar original survives as
    # :func:`repro.core.reference.cycles_in_table_order_scalar`.
    num_kernels = len(table.kernel_names)
    offsets = np.full(num_kernels, -1, dtype=np.int64)
    sizes = np.zeros(num_kernels, dtype=np.int64)
    parts: list[np.ndarray] = []
    position = 0
    for kernel_id, kernel_name in enumerate(table.kernel_names):
        per_kernel = measurement.per_kernel.get(kernel_name)
        if per_kernel is None:
            continue
        offsets[kernel_id] = position
        sizes[kernel_id] = len(per_kernel.cycles)
        position += len(per_kernel.cycles)
        parts.append(per_kernel.cycles)
    if parts:
        concatenated = np.concatenate(parts)
        kernel_id_column = np.asarray(table.kernel_id, dtype=np.int64)
        ids = np.asarray(table.invocation_id, dtype=np.int64)
        valid = (
            (offsets[kernel_id_column] >= 0)
            & (ids >= 0)
            & (ids < sizes[kernel_id_column])
        )
        values = concatenated[offsets[kernel_id_column[valid]] + ids[valid]].astype(
            np.float64
        )
        values[values <= 0] = np.nan
        cycles[valid] = values

    bad = ~np.isfinite(cycles)
    if bad.any():
        kernel_id_column = np.asarray(table.kernel_id, dtype=np.int64)
        for kernel_id in np.unique(kernel_id_column[bad]):
            kernel_bad = np.flatnonzero(bad & (kernel_id_column == kernel_id))
            fallback = kernel_mean_cycles(
                table.kernel_names[kernel_id], measurement
            )
            if fallback is not None:
                cycles[kernel_bad] = fallback
        still_bad = ~np.isfinite(cycles)
        if still_bad.any():
            finite = cycles[~still_bad]
            cycles[still_bad] = float(finite.mean()) if len(finite) else 0.0
        diagnostics.emit(
            "pks.golden",
            f"workload {table.workload!r}: imputed {int(bad.sum())} "
            "missing/zero golden cycle counts with kernel means",
        )
    return cycles
