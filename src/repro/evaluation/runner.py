"""Method evaluation: run Sieve or PKS on a context, collect all metrics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.pks import PksConfig, PksPipeline, cycles_in_table_order
from repro.core.config import SieveConfig
from repro.core.pipeline import SievePipeline
from repro.core.types import SampleSelection
from repro.evaluation.context import WorkloadContext
from repro.evaluation.dispersion import weighted_cycle_cov
from repro.evaluation.metrics import prediction_error, simulation_speedup
from repro.observability import span


@dataclass(frozen=True)
class MethodResult:
    """One sampling method's full scorecard on one workload."""

    workload: str
    method: str
    error: float
    speedup: float
    num_representatives: int
    cycle_cov: float  # weighted within-group cycle dispersion (Figure 4)
    predicted_cycles: float
    measured_cycles: int
    selection: SampleSelection

    @property
    def error_percent(self) -> float:
        return self.error * 100.0


def evaluate_sieve(
    context: WorkloadContext, config: SieveConfig | None = None
) -> MethodResult:
    """Run the Sieve pipeline on a workload context."""
    with span("evaluate.sieve", workload=context.label):
        pipeline = SievePipeline(config)
        selection = pipeline.select(context.sieve_table)
        prediction = pipeline.predict(selection, context.golden)
        cycles = cycles_in_table_order(context.sieve_table, context.golden)
        cov = weighted_cycle_cov((s.rows for s in selection.strata), cycles)
    # Accuracy is judged against the *clean* reference (context.truth);
    # under fault injection it differs from the corrupted context.golden
    # the pipeline consumed.
    return MethodResult(
        workload=context.label,
        method=selection.method,
        error=prediction_error(prediction.predicted_cycles, context.truth.total_cycles),
        speedup=simulation_speedup(selection, context.golden),
        num_representatives=selection.num_representatives,
        cycle_cov=cov,
        predicted_cycles=prediction.predicted_cycles,
        measured_cycles=context.truth.total_cycles,
        selection=selection,
    )


def evaluate_pks(
    context: WorkloadContext, config: PksConfig | None = None
) -> MethodResult:
    """Run the PKS pipeline on a workload context."""
    with span("evaluate.pks", workload=context.label):
        pipeline = PksPipeline(config)
        selection = pipeline.select(context.pks_table, context.golden)
        prediction = pipeline.predict(selection, context.golden)
        cycles = cycles_in_table_order(context.pks_table, context.golden)
        cov = weighted_cycle_cov(selection.cluster_rows, cycles)
    return MethodResult(
        workload=context.label,
        method=selection.method,
        error=prediction_error(prediction.predicted_cycles, context.truth.total_cycles),
        speedup=simulation_speedup(selection, context.golden),
        num_representatives=selection.num_representatives,
        cycle_cov=cov,
        predicted_cycles=prediction.predicted_cycles,
        measured_cycles=context.truth.total_cycles,
        selection=selection,
    )


def predicted_speedup_between(
    selection: SampleSelection,
    method: str,
    baseline,  # WorkloadMeasurement on the baseline architecture
    other,  # WorkloadMeasurement on the comparison architecture
) -> float:
    """A method's predicted (other -> baseline) wall-time speedup (Fig. 9).

    Both methods predict per-architecture application cycles from the same
    representatives; wall-time speedup follows from the clocks.
    """
    from repro.baselines.pks import PksPipeline as _Pks
    from repro.core.pipeline import SievePipeline as _Sieve

    if method == "sieve":
        pipe = _Sieve()
        base_cycles = pipe.predict(selection, baseline).predicted_cycles
        other_cycles = pipe.predict(selection, other).predicted_cycles
    else:
        pipe = _Pks()
        base_cycles = pipe.predict(selection, baseline).predicted_cycles
        other_cycles = pipe.predict(selection, other).predicted_cycles
    base_seconds = base_cycles / (baseline.clock_ghz * 1e9)
    other_seconds = other_cycles / (other.clock_ghz * 1e9)
    return other_seconds / base_seconds


def hardware_speedup_between(baseline, other) -> float:
    """Measured (other -> baseline) wall-time speedup."""
    return other.wall_time_seconds / baseline.wall_time_seconds


def sieve_tier_fractions(context: WorkloadContext, theta: float) -> np.ndarray:
    """Invocation fractions in Tier-1/2/3 at threshold ``theta`` (Fig. 2).

    Raises :class:`~repro.utils.errors.SelectionError` when the profile
    holds no invocations at all — a 0/0 here would otherwise surface as
    silent NaN fractions downstream.
    """
    from repro.core.tiers import classify_invocations
    from repro.utils.errors import SelectionError

    table = context.sieve_table
    counts = np.zeros(3)
    for kernel_id in range(table.num_kernels):
        rows = table.rows_for_kernel(kernel_id)
        if len(rows) == 0:
            continue
        tier = classify_invocations(table.insn_count[rows], theta).tier
        counts[tier.value - 1] += len(rows)
    total = counts.sum()
    if total == 0:
        raise SelectionError(
            f"profile for {context.label!r} holds no invocations; "
            "tier fractions are undefined"
        )
    return counts / total
