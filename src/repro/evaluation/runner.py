"""Method evaluation: run any registered sampling method on a context.

``evaluate_method`` is the one generic scorecard path — it resolves a
method through :mod:`repro.methods`, runs select + predict, and collects
the full metric set (accuracy, speedup, dispersion) into a
:class:`MethodResult`. ``evaluate_sieve``/``evaluate_pks`` survive as
thin wrappers for historical call sites; they are byte-identical to the
generic path (the equivalence property tests pin this).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import SampleSelection
from repro.evaluation.context import WorkloadContext
from repro.evaluation.dispersion import weighted_cycle_cov
from repro.evaluation.imputation import cycles_in_table_order
from repro.evaluation.metrics import prediction_error, simulation_speedup
from repro.methods import get_method
from repro.observability import metrics, span
from repro.observability.attribution import ErrorAttribution, attribute_error


@dataclass(frozen=True)
class MethodResult:
    """One sampling method's full scorecard on one workload."""

    workload: str
    method: str
    error: float
    speedup: float
    num_representatives: int
    cycle_cov: float  # weighted within-group cycle dispersion (Figure 4)
    predicted_cycles: float
    measured_cycles: int
    selection: SampleSelection
    #: Signed per-kernel / per-stratum decomposition of ``error``
    #: (see :mod:`repro.observability.attribution`).
    attribution: ErrorAttribution | None = None

    @property
    def error_percent(self) -> float:
        return self.error * 100.0


def _score_selection(
    method,
    method_name: str,
    context: WorkloadContext,
    config: object | None,
    selection: SampleSelection,
) -> MethodResult:
    """Predict + score an already-made selection (shared batch/stream)."""
    prediction = method.predict(selection, context.golden, config)
    cycles = cycles_in_table_order(method.profile_table(context), context.golden)
    cov = weighted_cycle_cov(method.group_rows(selection), cycles)
    attribution = attribute_error(method, selection, prediction, context, config)
    # Accuracy is judged against the *clean* reference (context.truth);
    # under fault injection it differs from the corrupted context.golden
    # the method consumed.
    return MethodResult(
        workload=context.label,
        method=selection.method,
        error=prediction_error(prediction.predicted_cycles, context.truth.total_cycles),
        speedup=simulation_speedup(selection, context.golden),
        num_representatives=selection.num_representatives,
        cycle_cov=cov,
        predicted_cycles=prediction.predicted_cycles,
        measured_cycles=context.truth.total_cycles,
        selection=selection,
        attribution=attribution,
    )


def evaluate_method(
    method_name: str,
    context: WorkloadContext,
    config: object | None = None,
) -> MethodResult:
    """Run one registered sampling method on a workload context.

    ``method_name`` resolves through the registry (raising a typed
    :class:`~repro.utils.errors.UnknownMethodError` when absent);
    ``config`` must be ``None`` (method defaults) or an instance of the
    method's ``config_schema``.
    """
    method = get_method(method_name)
    config = method.resolve_config(config)
    with span(f"evaluate.{method_name}", workload=context.label):
        selection = method.select(context, config)
        result = _score_selection(method, method_name, context, config, selection)
    metrics.inc("evaluate.method", method=method_name)
    return result


def evaluate_method_streaming(
    method_name: str,
    context: WorkloadContext,
    config: object | None = None,
    *,
    chunk_rows: int = 4096,
    reservoir_rows: int | None = None,
) -> MethodResult:
    """Like :func:`evaluate_method`, but the profile reaches the method
    as a chunked stream through its ``begin_stream`` surface.

    With an unbounded reservoir (the default) the result is byte-identical
    to :func:`evaluate_method` — the per-method property tests pin this —
    while the ``streaming.high_water_rows`` gauge reports the stream's
    actual resident footprint (O(rows) for buffering fallbacks, O(kernels
    + reservoir) for true streams). ``reservoir_rows`` bounds the
    per-kernel retained sample for genuinely memory-constrained runs, at
    the price of approximate Tier-3 splits.
    """
    from repro.streaming.base import StreamContext, iter_table_chunks

    method = get_method(method_name)
    config = method.resolve_config(config)
    table = method.profile_table(context)
    with span(
        f"evaluate-stream.{method_name}",
        workload=context.label,
        chunk_rows=chunk_rows,
    ):
        stream = method.begin_stream(
            StreamContext(
                workload=table.workload,
                golden=context.golden,
                batch=context,
                reservoir_rows=reservoir_rows,
            ),
            config,
        )
        for index, chunk in enumerate(iter_table_chunks(table, chunk_rows)):
            with span("streaming.flush", chunk=index, rows=len(chunk)):
                stream.observe(chunk)
        selection = stream.finalize()
        result = _score_selection(method, method_name, context, config, selection)
    metrics.inc("evaluate.method.streamed", method=method_name)
    return result


def evaluate_sieve(context: WorkloadContext, config=None) -> MethodResult:
    """Run the Sieve pipeline on a workload context."""
    return evaluate_method("sieve", context, config)


def evaluate_pks(context: WorkloadContext, config=None) -> MethodResult:
    """Run the PKS pipeline on a workload context."""
    return evaluate_method("pks", context, config)


def predicted_speedup_between(
    selection: SampleSelection,
    method: str,
    baseline,  # WorkloadMeasurement on the baseline architecture
    other,  # WorkloadMeasurement on the comparison architecture
) -> float:
    """A method's predicted (other -> baseline) wall-time speedup (Fig. 9).

    Both methods predict per-architecture application cycles from the same
    representatives; wall-time speedup follows from the clocks. ``method``
    is a registry name or a selection's method string (policy-suffixed
    strings like ``"pks-first"`` resolve to their registry prefix).
    """
    resolved = get_method(_registry_name(method))
    config = resolved.default_config()
    base_cycles = resolved.predict(selection, baseline, config).predicted_cycles
    other_cycles = resolved.predict(selection, other, config).predicted_cycles
    base_seconds = base_cycles / (baseline.clock_ghz * 1e9)
    other_seconds = other_cycles / (other.clock_ghz * 1e9)
    return other_seconds / base_seconds


def _registry_name(method: str) -> str:
    """Map a selection's method string onto its registry name.

    Selections label themselves with policy-qualified strings
    (``"pks-first"``, ``"pks-two-level"``); prediction only depends on the
    registered method, so fall back to progressively shorter ``-``
    prefixes until one resolves.
    """
    from repro.methods import list_methods

    names = set(list_methods())
    parts = method.split("-")
    for end in range(len(parts), 0, -1):
        candidate = "-".join(parts[:end])
        if candidate in names:
            return candidate
    return method  # let get_method raise its typed error


def hardware_speedup_between(baseline, other) -> float:
    """Measured (other -> baseline) wall-time speedup."""
    return other.wall_time_seconds / baseline.wall_time_seconds


def sieve_tier_fractions(context: WorkloadContext, theta: float) -> np.ndarray:
    """Invocation fractions in Tier-1/2/3 at threshold ``theta`` (Fig. 2).

    Raises :class:`~repro.utils.errors.SelectionError` when the profile
    holds no invocations at all — a 0/0 here would otherwise surface as
    silent NaN fractions downstream.
    """
    from repro.core.tiers import classify_invocations
    from repro.utils.errors import SelectionError

    table = context.sieve_table
    counts = np.zeros(3)
    for kernel_id in range(table.num_kernels):
        rows = table.rows_for_kernel(kernel_id)
        if len(rows) == 0:
            continue
        tier = classify_invocations(table.insn_count[rows], theta).tier
        counts[tier.value - 1] += len(rows)
    total = counts.sum()
    if total == 0:
        raise SelectionError(
            f"profile for {context.label!r} holds no invocations; "
            "tier fractions are undefined"
        )
    return counts / total
