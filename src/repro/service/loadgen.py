"""Request-generation load harness for the sampling service.

Modeled on the request-generator-engine pattern from the hopperkv
exemplar: a seeded *arrival pattern* (static, poisson or multi-phase
dynamic) is combined with a *request mix* (which workloads, methods and
request kinds) into a fully materialized, deterministic request
schedule; the schedule either replays against a live server under N
concurrent clients or round-trips through a JSONL trace file for later
byte-identical replay.

Determinism is the point: every random draw flows from one
:func:`~repro.utils.seeding.rng_for` generator in a fixed order, so the
same ``(pattern, mix, count, seed)`` tuple always yields the same
schedule — a property test pins this — and recorded traces are the
schedule's canonical serialization (``load_trace(save_trace(x)) == x``
byte-for-byte).

The measurement side (:func:`run_loadgen`) drives plain
:class:`http.client.HTTPConnection` clients on threads (keep-alive, one
connection per client), records per-request latency and status, and
summarizes into a :class:`LoadgenReport` whose
:meth:`~LoadgenReport.to_manifest` emits the ``BENCH_service.json``
:class:`~repro.observability.manifest.RunManifest` the bench-regression
gate consumes. Latency percentiles ride as synthetic stage rows (gated
by the ratio + min-seconds rule); the manifest *aggregates* carry only
deterministic counts so the gate's tight numeric diff never flakes.
"""

from __future__ import annotations

import http.client
import json
import statistics
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.observability.manifest import RunManifest, StageStat
from repro.service import protocol
from repro.utils.errors import BadRequestError, ServiceError
from repro.utils.seeding import rng_for

# ------------------------------------------------------- arrival patterns


@dataclass(frozen=True)
class StaticPattern:
    """Uniform arrivals at a fixed rate (requests/second)."""

    rate: float

    def offsets(self, count: int, rng) -> list[float]:
        return [i / self.rate for i in range(count)]


@dataclass(frozen=True)
class PoissonPattern:
    """Poisson process arrivals with mean ``rate`` requests/second."""

    rate: float

    def offsets(self, count: int, rng) -> list[float]:
        gaps = rng.exponential(scale=1.0 / self.rate, size=count)
        offsets, now = [], 0.0
        for gap in gaps:
            offsets.append(now)
            now += float(gap)
        return offsets


@dataclass(frozen=True)
class DynamicPattern:
    """Piecewise-static phases: ``((rate, fraction_of_requests), ...)``."""

    phases: tuple[tuple[float, float], ...]

    def offsets(self, count: int, rng) -> list[float]:
        offsets, now = [], 0.0
        remaining = count
        for i, (rate, fraction) in enumerate(self.phases):
            n = round(count * fraction) if i < len(self.phases) - 1 else remaining
            n = min(n, remaining)
            for _ in range(n):
                offsets.append(now)
                now += 1.0 / rate
            remaining -= n
        return offsets


def parse_pattern(text: str) -> StaticPattern | PoissonPattern | DynamicPattern:
    """Parse ``static:50``, ``poisson:20`` or ``dynamic:10@0.3,200@0.7``."""
    kind, _, spec = text.partition(":")
    try:
        if kind == "static":
            return StaticPattern(rate=_positive(float(spec)))
        if kind == "poisson":
            return PoissonPattern(rate=_positive(float(spec)))
        if kind == "dynamic":
            phases = []
            for phase in spec.split(","):
                rate, _, fraction = phase.partition("@")
                phases.append((_positive(float(rate)), _positive(float(fraction))))
            total = sum(fraction for _, fraction in phases)
            if abs(total - 1.0) > 1e-6:
                raise ValueError(f"phase fractions sum to {total}, need 1.0")
            return DynamicPattern(phases=tuple(phases))
    except (TypeError, ValueError) as exc:
        raise BadRequestError(f"bad arrival pattern {text!r}: {exc}") from exc
    raise BadRequestError(
        f"unknown arrival pattern kind {kind!r} (static|poisson|dynamic)"
    )


def _positive(value: float) -> float:
    if not value > 0:
        raise ValueError(f"must be > 0, got {value}")
    return value


# ----------------------------------------------------------- request mix


@dataclass(frozen=True)
class RequestMix:
    """What the generated requests ask for."""

    workloads: tuple[str, ...]
    methods: tuple[str, ...] = ("sieve", "pks")
    cap: int | None = 400
    predict_fraction: float = 0.5  # rest are /v1/select


@dataclass(frozen=True)
class ScheduledRequest:
    """One materialized request: when, where and what to POST."""

    index: int
    offset_s: float
    route: str
    payload: dict

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "offset_s": self.offset_s,
            "route": self.route,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduledRequest":
        return cls(
            index=int(data["index"]),
            offset_s=float(data["offset_s"]),
            route=str(data["route"]),
            payload=dict(data["payload"]),
        )


def generate_requests(
    pattern: StaticPattern | PoissonPattern | DynamicPattern,
    mix: RequestMix,
    count: int,
    seed: int,
) -> tuple[ScheduledRequest, ...]:
    """Materialize a deterministic request schedule.

    All randomness (arrival gaps, workload/method/kind draws) comes from
    one seeded generator consumed in a fixed order: same arguments, same
    schedule, byte for byte.
    """
    if count < 1:
        raise BadRequestError(f"count must be >= 1, got {count}")
    if not mix.workloads:
        raise BadRequestError("request mix needs at least one workload")
    rng = rng_for("service.loadgen", seed)
    offsets = pattern.offsets(count, rng)
    workload_draws = rng.integers(0, len(mix.workloads), size=count)
    method_draws = rng.integers(0, len(mix.methods), size=count)
    kind_draws = rng.random(size=count)
    requests = []
    for i in range(count):
        predict = bool(kind_draws[i] < mix.predict_fraction)
        payload = {
            "workload": mix.workloads[int(workload_draws[i])],
            "method": mix.methods[int(method_draws[i])],
        }
        if mix.cap is not None:
            payload["cap"] = mix.cap
        requests.append(
            ScheduledRequest(
                index=i,
                offset_s=round(float(offsets[i]), 6),
                route=protocol.PREDICT_ROUTE if predict else protocol.SELECT_ROUTE,
                payload=payload,
            )
        )
    return tuple(requests)


# ------------------------------------------------------------ trace files


def save_trace(requests: tuple[ScheduledRequest, ...], path: str | Path) -> Path:
    """Write a schedule as canonical JSONL (sorted keys, one per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(request.to_dict(), sort_keys=True, separators=(",", ":"))
        for request in requests
    ]
    path.write_text("\n".join(lines) + "\n")
    return path


def load_trace(path: str | Path) -> tuple[ScheduledRequest, ...]:
    """Read a schedule back; ``save_trace(load_trace(p))`` is a no-op."""
    path = Path(path)
    requests = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            requests.append(ScheduledRequest.from_dict(json.loads(line)))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(
                f"malformed trace line: {exc}", path=str(path), line=lineno
            ) from exc
    return tuple(requests)


# ------------------------------------------------------------ measurement


@dataclass
class RequestRecord:
    """One completed request as the harness observed it."""

    index: int
    route: str
    status: int
    latency_s: float
    workload: str
    method: str
    error_value: float | None = None  # served prediction error (/v1/predict)
    from_cache: bool | None = None


@dataclass
class LoadgenReport:
    """A finished run: every record plus the derived summary numbers."""

    records: list[RequestRecord]
    duration_s: float
    clients: int
    pattern: str
    seed: int

    @property
    def latencies(self) -> list[float]:
        return [r.latency_s for r in self.records]

    def percentile(self, q: float) -> float:
        if not self.records:
            return 0.0
        return float(
            statistics.quantiles(self.latencies, n=100, method="inclusive")[
                min(98, max(0, round(q) - 1))
            ]
            if len(self.records) > 1
            else self.latencies[0]
        )

    def status_counts(self) -> dict[str, int]:
        counts = {"http_2xx": 0, "http_4xx": 0, "http_5xx": 0, "other": 0}
        for record in self.records:
            if 200 <= record.status < 300:
                counts["http_2xx"] += 1
            elif 400 <= record.status < 500:
                counts["http_4xx"] += 1
            elif 500 <= record.status < 600:
                counts["http_5xx"] += 1
            else:
                counts["other"] += 1
        return counts

    @property
    def throughput_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return len(self.records) / self.duration_s

    def summary(self) -> dict:
        return {
            "requests": len(self.records),
            "clients": self.clients,
            "duration_s": round(self.duration_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_s": round(self.percentile(50), 6),
            "p90_s": round(self.percentile(90), 6),
            "p99_s": round(self.percentile(99), 6),
            **self.status_counts(),
        }

    def to_manifest(self) -> RunManifest:
        """The BENCH_service manifest for the regression gate.

        Aggregates hold only deterministic counts (the gate diffs every
        numeric aggregate at ~1e-6 tolerance); wall-clock quantities ride
        as stage rows, which the gate compares by ratio with an absolute
        floor. Workload rows carry the served prediction errors — these
        are engine-deterministic, so drift there is a real regression.
        """
        counts = self.status_counts()
        errors_by_workload: dict[str, dict[str, float]] = {}
        for record in self.records:
            if record.error_value is not None:
                row = errors_by_workload.setdefault(record.workload, {})
                row[f"{record.method}_error"] = record.error_value
        workloads = tuple(
            {"workload": label, **fields}
            for label, fields in sorted(errors_by_workload.items())
        )
        stages = (
            StageStat(
                name="service.loadgen",
                count=len(self.records),
                wall_s=self.duration_s,
                self_s=self.duration_s,
                cpu_s=0.0,
                errors=counts["http_5xx"],
            ),
            StageStat(
                name="service.latency.p50",
                count=len(self.records),
                wall_s=self.percentile(50),
                self_s=self.percentile(50),
                cpu_s=0.0,
            ),
            StageStat(
                name="service.latency.p90",
                count=len(self.records),
                wall_s=self.percentile(90),
                self_s=self.percentile(90),
                cpu_s=0.0,
            ),
            StageStat(
                name="service.latency.p99",
                count=len(self.records),
                wall_s=self.percentile(99),
                self_s=self.percentile(99),
                cpu_s=0.0,
            ),
        )
        return RunManifest(
            command="loadgen",
            config={
                "clients": self.clients,
                "pattern": self.pattern,
                "seed": self.seed,
            },
            total_wall_s=self.duration_s,
            stages=stages,
            workloads=workloads,
            aggregates={
                "requests": float(len(self.records)),
                "clients": float(self.clients),
                "http_2xx": float(counts["http_2xx"]),
                "http_4xx": float(counts["http_4xx"]),
                "http_5xx": float(counts["http_5xx"]),
            },
            metrics={},
        )


@dataclass
class _SharedCursor:
    """Thread-safe next-request counter for closed-loop dispatch."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    next_index: int = 0

    def take(self, limit: int) -> int | None:
        with self.lock:
            if self.next_index >= limit:
                return None
            index = self.next_index
            self.next_index += 1
            return index


def _post_json(
    connection: http.client.HTTPConnection, route: str, payload: dict, timeout_s: float
) -> tuple[int, dict | None]:
    body = json.dumps(payload).encode("utf-8")
    connection.request(
        "POST",
        route,
        body=body,
        headers={"Content-Type": "application/json", "Content-Length": str(len(body))},
    )
    response = connection.getresponse()
    raw = response.read()
    try:
        decoded = json.loads(raw.decode("utf-8")) if raw else None
    except (UnicodeDecodeError, json.JSONDecodeError):
        decoded = None
    return response.status, decoded


def run_loadgen(
    host: str,
    port: int,
    requests: tuple[ScheduledRequest, ...],
    *,
    clients: int = 8,
    open_loop: bool = False,
    timeout_s: float = 60.0,
) -> LoadgenReport:
    """Replay a schedule against a live server with N concurrent clients.

    Closed-loop by default (each client takes the next request as soon
    as it finishes its last — maximum pressure); ``open_loop=True``
    honors the schedule's arrival offsets instead, sleeping until each
    request's release time.
    """
    if clients < 1:
        raise BadRequestError(f"clients must be >= 1, got {clients}")
    cursor = _SharedCursor()
    per_thread: list[list[RequestRecord]] = [[] for _ in range(clients)]
    start_barrier = threading.Barrier(clients + 1)
    t_start: list[float] = [0.0]

    def client_loop(slot: int) -> None:
        connection = http.client.HTTPConnection(host, port, timeout=timeout_s)
        try:
            start_barrier.wait()
            while True:
                index = cursor.take(len(requests))
                if index is None:
                    break
                request = requests[index]
                if open_loop:
                    release = t_start[0] + request.offset_s
                    delay = release - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                t0 = time.perf_counter()
                try:
                    status, decoded = _post_json(
                        connection, request.route, request.payload, timeout_s
                    )
                except (http.client.HTTPException, OSError):
                    # One reconnect attempt; count a persistent failure
                    # as status 0 so it can't masquerade as success.
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout_s
                    )
                    try:
                        status, decoded = _post_json(
                            connection, request.route, request.payload, timeout_s
                        )
                    except (http.client.HTTPException, OSError):
                        status, decoded = 0, None
                latency = time.perf_counter() - t0
                record = RequestRecord(
                    index=request.index,
                    route=request.route,
                    status=status,
                    latency_s=latency,
                    workload=str(request.payload.get("workload", "inline")),
                    method=str(request.payload.get("method", "sieve")),
                )
                if decoded is not None and status == 200:
                    telemetry = decoded.get("telemetry") or {}
                    record.from_cache = telemetry.get("from_cache")
                    if request.route == protocol.PREDICT_ROUTE:
                        result = decoded.get("result") or {}
                        if isinstance(result.get("error"), (int, float)):
                            record.error_value = float(result["error"])
                per_thread[slot].append(record)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client_loop, args=(slot,), daemon=True)
        for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    t_start[0] = time.monotonic()
    wall0 = time.perf_counter()
    start_barrier.wait()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - wall0

    records = sorted(
        (record for bucket in per_thread for record in bucket),
        key=lambda record: record.index,
    )
    return LoadgenReport(
        records=records,
        duration_s=duration,
        clients=clients,
        pattern="replay",
        seed=0,
    )
