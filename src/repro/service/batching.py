"""Micro-batching dispatcher: many concurrent requests, one engine.

The server handles each HTTP request on its own asyncio task, but the
:class:`~repro.evaluation.engine.EvaluationEngine` wants *batches* — its
cache probe, process fan-out and quarantine bookkeeping amortize over a
task list. The dispatcher bridges the two worlds:

* :meth:`BatchingDispatcher.submit` enqueues one
  :class:`~repro.evaluation.engine.EvaluationTask` and awaits its
  :class:`~repro.evaluation.engine.TaskOutcome`;
* a single flusher coroutine sleeps for the batching window
  (``window_s``) after the first arrival, then drains everything queued
  into one ``engine.run_isolated`` call on a worker thread — the engine
  parallelizes *inside* the batch via its process pool, so exactly one
  batch runs at a time and batches never contend for the pool;
* requests whose tasks share a cache key **coalesce**: the first one
  enqueues the engine task, later arrivals await the same future. With
  ``asyncio.shield`` around the shared future, one client cancelling
  (disconnecting) never cancels the underlying work or poisons the
  siblings awaiting the same result.

``run_isolated`` reports per-task failures as outcome statuses instead
of raising, so a crashing task fails *its* requests with a structured
error while the rest of the batch completes normally — the crash
isolation, retries and quarantine from the hardened engine apply
per-request for free.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.evaluation.engine import (
    EvaluationEngine,
    EvaluationTask,
    RetryPolicy,
    TaskOutcome,
)
from repro.observability.metrics import inc, observe
from repro.observability.spans import span
from repro.utils.errors import ServiceUnavailableError


@dataclass
class DispatcherStats:
    """Monotonic counters exposed via ``/v1/healthz``."""

    requests: int = 0  # submit() calls
    coalesced: int = 0  # submits served by an already-inflight task
    batches: int = 0  # engine.run_isolated invocations
    tasks: int = 0  # unique engine tasks dispatched
    failures: int = 0  # outcomes with a non-ok status

    def to_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "coalesced": self.coalesced,
            "batches": self.batches,
            "tasks": self.tasks,
            "failures": self.failures,
        }


@dataclass
class _Pending:
    """One unique engine task waiting for (or in) a batch."""

    task: EvaluationTask
    future: asyncio.Future = field(default_factory=asyncio.Future)


class BatchingDispatcher:
    """Coalesce concurrent evaluation requests into engine batches.

    Must be started (and closed) on the event loop it serves:
    ``await dispatcher.start()`` / ``await dispatcher.close()``.
    """

    def __init__(
        self,
        engine: EvaluationEngine,
        *,
        window_s: float = 0.005,
        max_batch: int = 32,
        retry: RetryPolicy | None = None,
    ):
        self.engine = engine
        self.window_s = window_s
        self.max_batch = max(1, int(max_batch))
        self.retry = retry
        self.stats = DispatcherStats()
        self._inflight: dict[str, _Pending] = {}
        self._queue: list[_Pending] = []
        self._wakeup = asyncio.Event()
        self._flusher: asyncio.Task | None = None
        self._closed = False
        # One worker thread: batches are serialized; the engine's own
        # process pool provides the parallelism within a batch.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="sieve-service-batch"
        )

    async def start(self) -> None:
        if self._flusher is None:
            self._flusher = asyncio.create_task(
                self._flush_loop(), name="sieve-service-flusher"
            )

    async def submit(self, task: EvaluationTask) -> TaskOutcome:
        """Queue ``task`` and await its outcome.

        Identical concurrent tasks (same content-addressed cache key)
        share one engine execution. Cancellation of this coroutine
        abandons *this* waiter only — the shared work keeps running for
        the siblings.
        """
        if self._closed:
            raise ServiceUnavailableError("service is shutting down")
        self.stats.requests += 1
        key = task.cache_key()
        pending = self._inflight.get(key)
        if pending is not None:
            self.stats.coalesced += 1
            inc("service.coalesced")
        else:
            pending = _Pending(task=task)
            self._inflight[key] = pending
            self._queue.append(pending)
            self._wakeup.set()
        return await asyncio.shield(pending.future)

    async def close(self) -> None:
        """Stop the flusher and fail anything still queued."""
        self._closed = True
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
            self._flusher = None
        for pending in self._queue:
            if not pending.future.done():
                pending.future.set_exception(
                    ServiceUnavailableError(
                        "service shut down before the task ran",
                        workload=pending.task.label,
                    )
                )
        self._queue.clear()
        self._inflight.clear()
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------ internals

    async def _flush_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wakeup.wait()
            # Batching window: let concurrent arrivals pile up before
            # the engine round-trip.
            if self.window_s > 0:
                await asyncio.sleep(self.window_s)
            self._wakeup.clear()
            while self._queue:
                batch = self._queue[: self.max_batch]
                del self._queue[: len(batch)]
                await self._run_batch(loop, batch)

    async def _run_batch(self, loop: asyncio.AbstractEventLoop, batch: list[_Pending]) -> None:
        tasks = [pending.task for pending in batch]
        self.stats.batches += 1
        self.stats.tasks += len(batch)
        observe("service.batch_size", float(len(batch)))
        try:
            with span("service.batch", size=len(batch)):
                outcomes = await loop.run_in_executor(
                    self._executor, self._run_isolated, tasks
                )
        except BaseException as exc:  # engine misuse, executor shutdown
            for pending in batch:
                self._finish(pending)
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        for pending, outcome in zip(batch, outcomes):
            if outcome.status != "ok":
                self.stats.failures += 1
                inc("service.task_failures", status=outcome.status)
            self._finish(pending)
            if not pending.future.done():
                pending.future.set_result(outcome)

    def _run_isolated(self, tasks: list[EvaluationTask]) -> list[TaskOutcome]:
        return self.engine.run_isolated(tasks, self.retry)

    def _finish(self, pending: _Pending) -> None:
        key = pending.task.cache_key()
        if self._inflight.get(key) is pending:
            del self._inflight[key]
