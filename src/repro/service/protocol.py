"""The serving contract: request parsing and canonical result encoding.

Two invariants anchor this module, both pinned by tests:

* **Byte-stable responses.** A served selection/prediction must be
  *byte-identical* to a direct
  :func:`~repro.evaluation.runner.evaluate_method` call.
  :func:`selection_to_dict` / :func:`result_to_dict` are the canonical
  JSON projections, and :func:`pickle_digest` fingerprints the exact
  pickled object the engine produced, so a client (or a test) can verify
  the served bytes against a local evaluation without shipping pickles
  over the wire.
* **Typed failures.** Every malformed request raises
  :class:`~repro.utils.errors.BadRequestError` (or another
  :class:`~repro.utils.errors.SieveError` subtype) *before* any engine
  work happens; :func:`error_payload` renders any of them — including
  the structured ``context`` fields — into the JSON error body, and
  :func:`status_for` picks the HTTP status.

Requests either reference a catalog workload by label (full registry
path through the engine: select *and* predict) or carry an inline
profile table — CSV text through the existing
:func:`repro.profiling.csv_io.read_profile_csv` loader, or JSON rows —
which supports selection only (prediction needs a golden reference
measurement that an uploaded profile does not carry).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.core.config import SieveConfig
from repro.core.pipeline import SievePipeline
from repro.evaluation.runner import MethodResult
from repro.methods import MethodRequest, get_method
from repro.profiling.csv_io import read_profile_csv
from repro.profiling.table import ProfileTable
from repro.robustness.faults import parse_fault_plan
from repro.utils.errors import BadRequestError, SieveError
from repro.workloads.catalog import spec_for

#: Routes the server exposes; kept here so server, client and loadgen
#: agree on one spelling.
SELECT_ROUTE = "/v1/select"
PREDICT_ROUTE = "/v1/predict"
METHODS_ROUTE = "/v1/methods"
HEALTHZ_ROUTE = "/v1/healthz"
METRICS_ROUTE = "/v1/metrics"

#: Body fields accepted by POST /v1/select and /v1/predict. Anything
#: else is rejected loudly — silent typo tolerance ("chaos" vs "faults")
#: would corrupt experiments.
_REQUEST_FIELDS = frozenset(
    {
        "workload",
        "method",
        "config",
        "cap",
        "faults",
        "fault_seed",
        "profile_csv",
        "profile_rows",
    }
)

#: Methods whose selection needs only the profile table itself, making
#: them servable for inline (uploaded) profiles. PKS variants need the
#: golden reference for their k search, so label-referenced requests are
#: the only path to them.
INLINE_METHODS = ("periodic", "random", "sieve")


@dataclass(frozen=True)
class EvaluationRequest:
    """One parsed, validated ``/v1/select`` or ``/v1/predict`` request."""

    kind: str  # "select" | "predict"
    method: str
    workload: str | None  # catalog label; None for inline profiles
    cap: int | None
    config: object | None
    fault_plan: object | None  # FaultPlan | None
    table: ProfileTable | None = None  # inline profile, select-only

    @property
    def inline(self) -> bool:
        return self.table is not None

    def method_request(self) -> MethodRequest:
        return MethodRequest(method=self.method, config=self.config)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BadRequestError(message)


def config_from_dict(method_name: str, payload: object | None) -> object | None:
    """Build a method's typed config dataclass from a JSON object.

    ``None``/``{}`` mean method defaults. Unknown fields and type errors
    raise :class:`~repro.utils.errors.BadRequestError`; nested dataclass
    fields (e.g. ``TwoLevelPksConfig.pks``) recurse.
    """
    method = get_method(method_name)
    if payload is None or payload == {}:
        return None
    _require(
        isinstance(payload, dict),
        f"config must be a JSON object, got {type(payload).__name__}",
    )
    schema = method.config_schema
    if schema is None:
        raise BadRequestError(
            f"method {method_name!r} takes no config", method=method_name
        )
    return _build_dataclass(schema, payload, f"config for {method_name!r}")


def _build_dataclass(schema: type, payload: dict, where: str) -> object:
    fields = {f.name: f for f in dataclasses.fields(schema)}
    unknown = sorted(set(payload) - set(fields))
    _require(not unknown, f"unknown {where} field(s): {', '.join(unknown)}")
    kwargs = {}
    for name, value in payload.items():
        field_type = fields[name].type
        nested = _nested_dataclass(schema, name)
        if nested is not None and isinstance(value, dict):
            value = _build_dataclass(nested, value, f"{where}.{name}")
        elif isinstance(value, list):
            value = tuple(value)  # frozen configs use tuples, JSON has lists
        del field_type
        kwargs[name] = value
    try:
        return schema(**kwargs)
    except SieveError:
        raise
    except (TypeError, ValueError) as exc:
        raise BadRequestError(f"invalid {where}: {exc}") from exc


def _nested_dataclass(schema: type, field_name: str) -> type | None:
    """The dataclass type of ``schema.field_name``, if it has one.

    Annotations may be strings (``from __future__ import annotations``),
    so resolve through the default value's type when possible.
    """
    for f in dataclasses.fields(schema):
        if f.name != field_name:
            continue
        if isinstance(f.type, type) and dataclasses.is_dataclass(f.type):
            return f.type
        default = (
            f.default
            if f.default is not dataclasses.MISSING
            else (f.default_factory() if f.default_factory is not dataclasses.MISSING else None)
        )
        if default is not None and dataclasses.is_dataclass(type(default)):
            return type(default)
    return None


def table_from_rows(rows: object, workload: str) -> ProfileTable:
    """Build a Sieve-visible profile table from inline JSON rows.

    Each row is an object with ``kernel_name``, ``insn_count`` and
    optionally ``invocation_id``, ``cta_size``, ``num_ctas``.
    """
    _require(isinstance(rows, list) and len(rows) > 0, "profile_rows must be a non-empty list")
    names: list[str] = []
    index: dict[str, int] = {}
    n = len(rows)
    kernel_id = np.empty(n, dtype=np.int32)
    invocation_id = np.empty(n, dtype=np.int64)
    insn = np.empty(n, dtype=np.int64)
    cta_size = np.empty(n, dtype=np.int32)
    num_ctas = np.empty(n, dtype=np.int64)
    per_kernel_count: dict[str, int] = {}
    for i, row in enumerate(rows):
        _require(isinstance(row, dict), f"profile_rows[{i}] must be an object")
        try:
            name = str(row["kernel_name"])
            count = int(row["insn_count"])
        except (KeyError, TypeError, ValueError) as exc:
            raise BadRequestError(
                f"profile_rows[{i}] needs kernel_name and integer insn_count: {exc}"
            ) from exc
        if name not in index:
            index[name] = len(names)
            names.append(name)
        kernel_id[i] = index[name]
        default_invocation = per_kernel_count.get(name, 0)
        per_kernel_count[name] = default_invocation + 1
        try:
            invocation_id[i] = int(row.get("invocation_id", default_invocation))
            insn[i] = count
            cta_size[i] = int(row.get("cta_size", 128))
            num_ctas[i] = int(row.get("num_ctas", 1))
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"profile_rows[{i}] has a non-integer field: {exc}") from exc
    try:
        return ProfileTable(
            workload=workload,
            kernel_names=tuple(names),
            kernel_id=kernel_id,
            invocation_id=invocation_id,
            insn_count=insn,
            cta_size=cta_size,
            num_ctas=num_ctas,
        )
    except SieveError as exc:
        raise BadRequestError(f"inline profile rejected: {exc}") from exc


def table_from_csv(text: str) -> ProfileTable:
    """Parse inline CSV text through the strict profile-CSV loader."""
    _require(isinstance(text, str) and text.strip() != "", "profile_csv must be non-empty text")
    fd, tmp = tempfile.mkstemp(prefix="service-profile-", suffix=".csv")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        return read_profile_csv(tmp)
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def parse_request(kind: str, payload: object) -> EvaluationRequest:
    """Validate a decoded JSON body into an :class:`EvaluationRequest`.

    Raises :class:`~repro.utils.errors.BadRequestError` (or the typed
    registry/fault errors, all 400-mapped) on any malformed field; a
    request that parses is guaranteed to resolve its method, config and
    workload/profile, so the dispatcher never mints a task that cannot
    run.
    """
    _require(kind in ("select", "predict"), f"unknown request kind {kind!r}")
    _require(isinstance(payload, dict), "request body must be a JSON object")
    unknown = sorted(set(payload) - _REQUEST_FIELDS)
    _require(not unknown, f"unknown request field(s): {', '.join(unknown)}")

    method = payload.get("method", "sieve")
    _require(isinstance(method, str) and method != "", "method must be a non-empty string")
    get_method(method)  # raises typed UnknownMethodError (400-mapped)
    config = config_from_dict(method, payload.get("config"))

    cap = payload.get("cap")
    if cap is not None:
        _require(isinstance(cap, int) and cap >= 1, "cap must be a positive integer")

    fault_plan = None
    faults = payload.get("faults")
    if faults is not None:
        _require(isinstance(faults, str), "faults must be a MODE:RATE[,...] string")
        seed = payload.get("fault_seed", 0)
        _require(isinstance(seed, int), "fault_seed must be an integer")
        fault_plan = parse_fault_plan(faults, seed=seed)

    label = payload.get("workload")
    inline_csv = payload.get("profile_csv")
    inline_rows = payload.get("profile_rows")
    sources = sum(x is not None for x in (label, inline_csv, inline_rows))
    _require(
        sources == 1,
        "exactly one of workload, profile_csv or profile_rows is required",
    )

    if label is not None:
        _require(isinstance(label, str), "workload must be a string label")
        try:
            spec_for(label)
        except (SieveError, KeyError) as exc:
            raise BadRequestError(
                f"unknown workload {label!r}: {exc}", workload=label
            ) from exc
        return EvaluationRequest(
            kind=kind,
            method=method,
            workload=label,
            cap=cap,
            config=config,
            fault_plan=fault_plan,
        )

    # Inline profile: selection only, and only for methods that need
    # nothing beyond the table.
    _require(
        kind == "select",
        "prediction requires a catalog workload (an inline profile carries "
        "no golden reference measurement)",
    )
    _require(
        method in INLINE_METHODS,
        f"inline profiles support methods {', '.join(INLINE_METHODS)}; "
        f"{method!r} needs a full evaluation context",
    )
    _require(fault_plan is None, "faults apply to catalog workloads only")
    _require(cap is None, "cap applies to catalog workloads only")
    if inline_csv is not None:
        table = table_from_csv(inline_csv)
    else:
        table = table_from_rows(inline_rows, workload="inline")
    return EvaluationRequest(
        kind=kind,
        method=method,
        workload=None,
        cap=None,
        config=config,
        fault_plan=None,
        table=table,
    )


def select_inline(request: EvaluationRequest):
    """Run a table-only selection for an inline-profile request.

    Byte-identical to driving the method's core pipeline directly: sieve
    goes through :class:`~repro.core.pipeline.SievePipeline`, the
    periodic/random baselines select straight off their config objects.
    """
    table = request.table
    if request.method == "sieve":
        config = request.config if request.config is not None else SieveConfig()
        return SievePipeline(config).select(table)
    sampler = request.config
    if sampler is None:
        sampler = get_method(request.method).default_config()
    return sampler.select(table)


# ---------------------------------------------------------- serialization


def pickle_digest(obj: object) -> str:
    """SHA-256 of the canonical pickle of ``obj``.

    The engine's determinism contract makes pickled results
    byte-identical across jobs=1/N and cache-warm runs, so this digest
    is a faithful fingerprint of the *exact* object a direct evaluation
    produces.
    """
    return hashlib.sha256(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()


def selection_to_dict(selection) -> dict:
    """Canonical JSON projection of a :class:`SampleSelection`."""
    return {
        "workload": selection.workload,
        "method": selection.method,
        "num_invocations": int(selection.num_invocations),
        "total_instructions": int(selection.total_instructions),
        "num_representatives": int(selection.num_representatives),
        "representatives": [
            {
                "kernel_name": rep.kernel_name,
                "kernel_id": int(rep.kernel_id),
                "invocation_id": int(rep.invocation_id),
                "row": int(rep.row),
                "weight": float(rep.weight),
                "group": rep.group,
                "group_size": int(rep.group_size),
            }
            for rep in selection.representatives
        ],
    }


def result_to_dict(result: MethodResult) -> dict:
    """Canonical JSON projection of a full :class:`MethodResult`."""
    return {
        "workload": result.workload,
        "method": result.method,
        "error": float(result.error),
        "speedup": float(result.speedup),
        "num_representatives": int(result.num_representatives),
        "cycle_cov": float(result.cycle_cov),
        "predicted_cycles": float(result.predicted_cycles),
        "measured_cycles": int(result.measured_cycles),
        "attribution": (
            result.attribution.to_dict() if result.attribution is not None else None
        ),
    }


def response_body(request: EvaluationRequest, result: MethodResult) -> dict:
    """The ``result`` + digest half of a successful response."""
    if request.kind == "select":
        return {
            "result": selection_to_dict(result.selection),
            "pickle_sha256": pickle_digest(result.selection),
        }
    return {
        "result": result_to_dict(result),
        "pickle_sha256": pickle_digest(result),
    }


# ---------------------------------------------------------- error mapping


def status_for(exc: BaseException) -> int:
    """The HTTP status a failed request maps onto.

    :class:`~repro.utils.errors.ServiceError` carries its own status;
    every other :class:`~repro.utils.errors.SieveError` raised while
    *parsing* is a client error (the server only calls this before
    engine dispatch — engine-side failures arrive as
    :class:`~repro.evaluation.engine.TaskOutcome`, not exceptions).
    """
    status = getattr(exc, "http_status", None)
    if isinstance(status, int):
        return status
    if isinstance(exc, SieveError):
        return 400
    return 500


def error_payload(exc: BaseException) -> dict:
    """The JSON error object for any failure, structured context included."""
    context = getattr(exc, "context", None) or {}
    return {
        "type": type(exc).__name__,
        "message": getattr(exc, "message", None) or str(exc),
        "context": {key: _jsonable(value) for key, value in sorted(context.items())},
    }


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def outcome_error_payload(outcome) -> dict:
    """The JSON error object for a failed engine :class:`TaskOutcome`."""
    type_name = {
        "timeout": "TaskTimeoutError",
        "crash": "TaskCrashError",
        "quarantined": "QuarantinedTaskError",
    }.get(outcome.status, "EngineError")
    return {
        "type": type_name,
        "message": outcome.error or f"task failed with status {outcome.status!r}",
        "context": {
            "workload": outcome.label,
            "status": outcome.status,
            "attempts": outcome.attempts,
        },
    }


def outcome_status(outcome) -> int:
    """HTTP status for a failed engine outcome (503 quarantined, else 500)."""
    return 503 if outcome.status == "quarantined" else 500


def canonical_json(payload: object) -> str:
    """Deterministic JSON text: sorted keys, no float mangling."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
