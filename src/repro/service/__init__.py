"""Sampling-as-a-service: an asyncio HTTP/JSON front end over the engine.

The paper's selection pass is cheap — a scan over the profile table, not
a simulation — which makes it natural to serve on demand: clients submit
profile tables (or reference catalog workloads) and get selections and
predictions back. This package is that service, stdlib-only:

* :mod:`repro.service.protocol` — the request/response contract: typed
  request parsing, canonical (byte-stable) result serialization, and the
  error-to-HTTP mapping;
* :mod:`repro.service.batching` — the micro-batching dispatcher that
  coalesces concurrent requests into
  :class:`~repro.evaluation.engine.EvaluationTask`\\ s fanned through one
  shared :class:`~repro.evaluation.engine.EvaluationEngine`, so the
  content-addressed cache, quarantine, retries and crash isolation are
  reused across tenants;
* :mod:`repro.service.server` — the asyncio-streams HTTP/1.1 server
  (``POST /v1/select``, ``POST /v1/predict``, ``GET /v1/methods``,
  ``GET /v1/healthz``, ``GET /v1/metrics``);
* :mod:`repro.service.loadgen` — the request-generation load harness
  (static/poisson/dynamic synthetic arrivals plus trace replay) that
  measures throughput and latency percentiles and emits the
  ``BENCH_service.json`` manifest the regression gate consumes.

The serving contract is pinned by tests: a served selection/prediction
is byte-identical to a direct
:func:`~repro.evaluation.runner.evaluate_method` call for every
registered method, under concurrency, batching and cache-warm/cold
permutations (``tests/service/test_service_equivalence.py``).
"""

from repro.service.batching import BatchingDispatcher, DispatcherStats
from repro.service.protocol import (
    EvaluationRequest,
    parse_request,
    pickle_digest,
    result_to_dict,
    selection_to_dict,
)
from repro.service.server import (
    ServiceConfig,
    ServiceHandle,
    SieveService,
    start_in_thread,
)

__all__ = [
    "BatchingDispatcher",
    "DispatcherStats",
    "EvaluationRequest",
    "ServiceConfig",
    "ServiceHandle",
    "SieveService",
    "parse_request",
    "pickle_digest",
    "result_to_dict",
    "selection_to_dict",
    "start_in_thread",
]
