"""The asyncio HTTP/1.1 front end for sampling-as-a-service.

Stdlib only: requests are parsed straight off :mod:`asyncio` streams
(request line, headers, ``Content-Length`` body; keep-alive supported)
— no web framework, because the protocol surface is five routes and the
interesting machinery lives in :mod:`repro.service.batching` and the
shared :class:`~repro.evaluation.engine.EvaluationEngine` behind it.

Routes::

    POST /v1/select    selection for a catalog label or inline profile
    POST /v1/predict   full evaluate_method round trip (catalog only)
    GET  /v1/methods   the sampling-method registry, with defaults
    GET  /v1/healthz   liveness + dispatcher/engine counters
    GET  /v1/metrics   Prometheus textfile exposition (PR-5 exporter)

Two entry points: :meth:`SieveService.serve` runs in the current event
loop (the CLI ``sieve-repro serve`` path), and :func:`start_in_thread`
boots a server on a background thread with its own loop and returns a
:class:`ServiceHandle` — the harness used by tests, the loadgen
``--spawn`` mode and the CI smoke script.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import time
from dataclasses import dataclass

from repro.evaluation.engine import (
    EngineConfig,
    EvaluationEngine,
    EvaluationTask,
    RetryPolicy,
)
from repro.methods import method_entries
from repro.observability.export import prometheus_text
from repro.observability.metrics import get_registry, inc, observe
from repro.service import protocol
from repro.service.batching import BatchingDispatcher
from repro.utils.errors import BadRequestError, ServiceError, SieveError

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the server needs: socket, batching and engine knobs."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands on the handle
    window_s: float = 0.005  # micro-batching window
    max_batch: int = 32
    jobs: int = 1  # engine process-pool width per batch
    use_cache: bool = True
    cache_dir: str | None = None
    quarantine_threshold: int = 2
    max_attempts: int = 2
    deadline_s: float = 120.0  # per-attempt wall clock for a task
    max_body_bytes: int = 32 * 1024 * 1024

    def engine_config(self) -> EngineConfig:
        return EngineConfig(
            jobs=self.jobs,
            use_cache=self.use_cache,
            cache_dir=self.cache_dir,
            quarantine_threshold=self.quarantine_threshold,
            retry=RetryPolicy(
                max_attempts=self.max_attempts, deadline_s=self.deadline_s
            ),
        )


class SieveService:
    """One server instance: engine + dispatcher + asyncio socket server."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        engine: EvaluationEngine | None = None,
    ):
        self.config = config or ServiceConfig()
        # Zero-init the perfstore counter families so /v1/metrics exposes
        # perfstore_* even before any ingest/lookup/gate happens.
        from repro.perfstore.store import register_metrics as _register_perfstore

        _register_perfstore()
        self._owns_engine = engine is None
        self.engine = engine or EvaluationEngine(self.config.engine_config())
        self.dispatcher = BatchingDispatcher(
            self.engine,
            window_s=self.config.window_s,
            max_batch=self.config.max_batch,
        )
        self.host: str | None = None
        self.port: int | None = None
        self._requests_served = 0
        self._request_counter = 0
        self._started_at: float | None = None
        self._clients: set[asyncio.Task] = set()

    async def serve(
        self,
        *,
        started: threading.Event | None = None,
        stop: asyncio.Event | None = None,
    ) -> None:
        """Bind, accept connections and run until ``stop`` is set.

        With ``stop=None`` the server runs until cancelled (the CLI
        foreground mode — Ctrl-C cancels ``asyncio.run``).
        """
        await self.dispatcher.start()
        server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        sockname = server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started_at = time.monotonic()
        if started is not None:
            started.set()
        try:
            async with server:
                if stop is not None:
                    await stop.wait()
                else:
                    await asyncio.Event().wait()  # forever, until cancelled
        finally:
            # Keep-alive connections park in readline(); cancel them so
            # the loop can close cleanly.
            for client in list(self._clients):
                client.cancel()
            if self._clients:
                await asyncio.gather(*self._clients, return_exceptions=True)
            await self.dispatcher.close()
            if self._owns_engine:
                # Release shared-memory segments with the server; an
                # injected engine stays open for its owner (close is
                # idempotent either way).
                self.engine.close()

    # -------------------------------------------------------- connection IO

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._clients.add(task)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    await self._respond(writer, 400, self._error_body(
                        BadRequestError("malformed HTTP request line")))
                    break
                verb, target, _version = parts
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or "0")
                if length > self.config.max_body_bytes:
                    await self._respond(writer, 413, self._error_body(
                        BadRequestError(
                            "request body too large",
                            limit_bytes=self.config.max_body_bytes,
                        )))
                    break
                body = await reader.readexactly(length) if length else b""
                try:
                    status, payload, content_type = await self._route(
                        verb, target, body
                    )
                except Exception as exc:  # last-resort: never drop the socket
                    status = 500
                    payload = self._error_body(exc)
                    content_type = "application/json"
                self._requests_served += 1
                await self._respond(writer, status, payload, content_type)
                if headers.get("connection", "").lower() == "close":
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down
        finally:
            if task is not None:
                self._clients.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: object,
        content_type: str = "application/json",
    ) -> None:
        if isinstance(payload, (bytes, bytearray)):
            body = bytes(payload)
        else:
            body = protocol.canonical_json(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------- routing

    async def _route(
        self, verb: str, target: str, body: bytes
    ) -> tuple[int, object, str]:
        path = target.split("?", 1)[0]
        t0 = time.perf_counter()
        if path == protocol.HEALTHZ_ROUTE:
            status, payload, ctype = self._check_verb(verb, "GET") or (
                200, self._healthz(), "application/json")
        elif path == protocol.METHODS_ROUTE:
            status, payload, ctype = self._check_verb(verb, "GET") or (
                200, self._methods(), "application/json")
        elif path == protocol.METRICS_ROUTE:
            status, payload, ctype = self._check_verb(verb, "GET") or (
                200,
                prometheus_text(get_registry().snapshot()).encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path in (protocol.SELECT_ROUTE, protocol.PREDICT_ROUTE):
            checked = self._check_verb(verb, "POST")
            if checked is not None:
                status, payload, ctype = checked
            else:
                kind = "select" if path == protocol.SELECT_ROUTE else "predict"
                status, payload = await self._evaluate(kind, body)
                ctype = "application/json"
        else:
            status, payload, ctype = 404, self._error_body(
                ServiceError("no such route", http_route=path)), "application/json"
            payload["error"]["type"] = "NotFoundError"
        inc("service.requests", route=path, status=str(status))
        observe("service.latency_s", time.perf_counter() - t0, route=path)
        return status, payload, ctype

    def _check_verb(self, verb: str, expected: str):
        if verb == expected:
            return None
        body = self._error_body(
            ServiceError(f"use {expected} for this route", got=verb))
        body["error"]["type"] = "MethodNotAllowedError"
        return 405, body, "application/json"

    def _error_body(self, exc: BaseException, request_id: str | None = None) -> dict:
        body: dict = {"error": protocol.error_payload(exc)}
        if request_id is not None:
            body["request_id"] = request_id
        return body

    def _healthz(self) -> dict:
        uptime = 0.0
        if self._started_at is not None:
            uptime = time.monotonic() - self._started_at
        return {
            "status": "ok",
            "uptime_s": round(uptime, 3),
            "requests": self._requests_served,
            "dispatcher": self.dispatcher.stats.to_dict(),
            "engine": {
                "jobs": self.engine.config.jobs,
                "use_cache": self.engine.config.use_cache,
            },
        }

    def _methods(self) -> dict:
        entries = []
        for entry in method_entries():
            default = entry.default_config()
            entries.append(
                {
                    "name": entry.name,
                    "description": entry.description,
                    "config_schema": (
                        entry.config_schema.__name__
                        if entry.config_schema is not None
                        else None
                    ),
                    "defaults": (
                        dataclasses.asdict(default)
                        if dataclasses.is_dataclass(default)
                        else None
                    ),
                }
            )
        return {"methods": entries}

    # ---------------------------------------------------------- evaluation

    async def _evaluate(self, kind: str, body: bytes) -> tuple[int, dict]:
        self._request_counter += 1
        request_id = f"req-{self._request_counter:06d}"
        t0 = time.perf_counter()
        try:
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise BadRequestError(f"request body is not valid JSON: {exc}") from exc
            request = protocol.parse_request(kind, payload)
            if request.inline:
                return 200, await self._evaluate_inline(request, request_id, t0)
            return await self._evaluate_catalog(request, request_id, t0)
        except SieveError as exc:
            inc("service.errors", type=type(exc).__name__)
            return protocol.status_for(exc), self._error_body(exc, request_id)

    async def _evaluate_inline(
        self, request: protocol.EvaluationRequest, request_id: str, t0: float
    ) -> dict:
        loop = asyncio.get_running_loop()
        selection = await loop.run_in_executor(
            None, protocol.select_inline, request
        )
        return {
            "request_id": request_id,
            "kind": request.kind,
            "method": request.method,
            "workload": selection.workload,
            "result": protocol.selection_to_dict(selection),
            "pickle_sha256": protocol.pickle_digest(selection),
            "telemetry": {
                "from_cache": False,
                "attempts": 1,
                "inline": True,
                "wall_s": round(time.perf_counter() - t0, 6),
            },
        }

    async def _evaluate_catalog(
        self, request: protocol.EvaluationRequest, request_id: str, t0: float
    ) -> tuple[int, dict]:
        task = EvaluationTask(
            label=request.workload,
            max_invocations=request.cap,
            methods=(request.method_request(),),
            fault_plan=request.fault_plan,
        )
        outcome = await self.dispatcher.submit(task)
        if not outcome.ok:
            body = {
                "request_id": request_id,
                "error": protocol.outcome_error_payload(outcome),
            }
            return protocol.outcome_status(outcome), body
        result = outcome[request.method]
        body = {
            "request_id": request_id,
            "kind": request.kind,
            "method": request.method,
            "workload": request.workload,
            **protocol.response_body(request, result),
            "telemetry": {
                "from_cache": outcome.from_cache,
                "attempts": outcome.attempts,
                "inline": False,
                "wall_s": round(time.perf_counter() - t0, 6),
            },
        }
        return 200, body


# ------------------------------------------------------- background thread


@dataclass
class ServiceHandle:
    """A running background server: address + orderly shutdown."""

    service: SieveService
    thread: threading.Thread
    _loop: asyncio.AbstractEventLoop
    _stop: asyncio.Event

    @property
    def host(self) -> str:
        return self.service.host or self.service.config.host

    @property
    def port(self) -> int:
        assert self.service.port is not None
        return self.service.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout_s: float = 15.0) -> None:
        if self.thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self.thread.join(timeout=timeout_s)
        if self.thread.is_alive():  # pragma: no cover - shutdown stuck
            raise ServiceError("service thread did not stop", timeout_s=timeout_s)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(
    config: ServiceConfig | None = None,
    engine: EvaluationEngine | None = None,
    *,
    startup_timeout_s: float = 30.0,
) -> ServiceHandle:
    """Boot a server on a dedicated thread/event loop and wait for bind."""
    service = SieveService(config, engine)
    started = threading.Event()
    box: dict[str, object] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        stop = asyncio.Event()
        box["loop"] = loop
        box["stop"] = stop
        try:
            loop.run_until_complete(service.serve(started=started, stop=stop))
        finally:
            loop.close()
            started.set()  # unblock the caller even on startup failure

    thread = threading.Thread(
        target=runner, name="sieve-service", daemon=True
    )
    thread.start()
    started.wait(timeout=startup_timeout_s)
    if service.port is None:
        raise ServiceError(
            "service failed to start", timeout_s=startup_timeout_s
        )
    return ServiceHandle(
        service=service,
        thread=thread,
        _loop=box["loop"],  # type: ignore[arg-type]
        _stop=box["stop"],  # type: ignore[arg-type]
    )
