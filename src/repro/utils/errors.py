"""Typed exception hierarchy for the reproduction.

Every invariant failure inside the library raises a :class:`ReproError`
subclass so callers can catch failures per pipeline stage (profile
ingestion vs selection vs prediction) without string matching. The
hierarchy deliberately subclasses :class:`ValueError`: historical call
sites (and tests) that catch ``ValueError`` keep working unchanged.
"""

from __future__ import annotations


class ReproError(ValueError):
    """Base class for all errors raised by the reproduction library."""


class ProfileError(ReproError):
    """Malformed or unreadable profiler output (CSV files, tables).

    Carries the offending file path and 1-based row number when known so
    users can locate the corruption in multi-million-row profiles.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        row: int | None = None,
    ):
        self.path = path
        self.row = row
        prefix = ""
        if path is not None:
            prefix = f"{path}:"
            if row is not None:
                prefix += f"row {row}:"
            prefix += " "
        elif row is not None:
            prefix = f"row {row}: "
        super().__init__(prefix + message)


class SelectionError(ReproError):
    """Representative selection failed (empty table, degenerate strata)."""


class PredictionError(ReproError):
    """Performance prediction failed (no usable measurements at all)."""


class FaultInjectionError(ReproError):
    """A fault-injection request was malformed (unknown mode, bad rate)."""


class EngineError(ReproError):
    """The parallel evaluation engine was misused (bad jobs count,
    unknown method name in a task, unusable cache directory)."""


class MethodRegistryError(ReproError):
    """The sampling-method registry was misused (duplicate registration,
    malformed method class, bad entry point)."""


class UnknownMethodError(MethodRegistryError, EngineError):
    """A sampling method name does not resolve in the registry.

    Raised by :func:`repro.methods.get_method` and by
    :meth:`repro.evaluation.engine.EvaluationTask.cache_key` — a task must
    fail loudly here rather than mint a cache key for a method that can
    never run. Subclasses :class:`EngineError` so engine-level callers
    that catch the engine's typed error keep working.
    """


class MethodConfigError(MethodRegistryError):
    """A method was handed a config of the wrong type for its schema."""
