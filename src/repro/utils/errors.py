"""Typed exception hierarchy for the reproduction.

Every invariant failure inside the library raises a :class:`SieveError`
subclass so callers can catch failures per pipeline stage (profile
ingestion vs selection vs prediction vs engine scheduling) without
string matching. The hierarchy deliberately subclasses
:class:`ValueError`: historical call sites (and tests) that catch
``ValueError`` keep working unchanged.

Beyond a message, every :class:`SieveError` carries structured
``context`` fields — machine-readable key/value pairs naming *what* the
error is about (a workload label, a cache key, an attempt count) — so
supervisors like the fuzz campaign and the resilient engine can log,
aggregate and quarantine failures without parsing strings::

    raise EngineError("task exceeded deadline", label="fuzz/s1-i00042",
                      deadline_s=30.0, attempt=2)

``ReproError`` survives as an alias of :class:`SieveError` for
pre-existing imports.
"""

from __future__ import annotations


class SieveError(ValueError):
    """Base class for all errors raised by the reproduction library.

    ``context`` holds structured fields describing the failure site;
    ``None``-valued fields are dropped so call sites can pass optional
    context unconditionally. The rendered message appends the context as
    a stable, sorted ``[key=value, ...]`` suffix.
    """

    def __init__(self, message: str, **context: object):
        self.message = message
        self.context = {k: v for k, v in context.items() if v is not None}
        rendered = message
        if self.context:
            fields = ", ".join(
                f"{key}={value!r}" for key, value in sorted(self.context.items())
            )
            rendered = f"{message} [{fields}]"
        super().__init__(rendered)


#: Backwards-compatible alias: the hierarchy's base was named
#: ``ReproError`` before it grew structured context fields.
ReproError = SieveError


class ProfileError(SieveError):
    """Malformed or unreadable profiler output (CSV files, tables).

    Carries the offending file path and 1-based row number when known so
    users can locate the corruption in multi-million-row profiles.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        row: int | None = None,
    ):
        self.path = path
        self.row = row
        # Location renders as a prefix (historical format, pinned by
        # tests); it is *also* carried as structured context.
        prefix = ""
        if path is not None:
            prefix = f"{path}:"
            if row is not None:
                prefix += f"row {row}:"
            prefix += " "
        elif row is not None:
            prefix = f"row {row}: "
        super(SieveError, self).__init__(prefix + message)
        self.message = message
        self.context = {
            k: v for k, v in {"path": path, "row": row}.items() if v is not None
        }


class SelectionError(SieveError):
    """Representative selection failed (empty table, degenerate strata)."""


class PredictionError(SieveError):
    """Performance prediction failed (no usable measurements at all)."""


class FaultInjectionError(SieveError):
    """A fault-injection request was malformed (unknown mode, bad rate)."""


class EngineError(SieveError):
    """The parallel evaluation engine was misused (bad jobs count,
    unknown method name in a task, unusable cache directory)."""


class TaskTimeoutError(EngineError):
    """An isolated task attempt exceeded its wall-clock deadline.

    Context: ``label``, ``deadline_s``, ``attempt``.
    """


class TaskCrashError(EngineError):
    """An isolated task's worker process died without reporting a result
    (segfault, ``os._exit``, OOM kill). Context: ``label``, ``exitcode``,
    ``attempt``."""


class QuarantinedTaskError(EngineError):
    """A task was skipped because its cache key is quarantined after
    repeated failures. Context: ``label``, ``key``, ``reason``."""


class MethodRegistryError(SieveError):
    """The sampling-method registry was misused (duplicate registration,
    malformed method class, bad entry point)."""


class UnknownMethodError(MethodRegistryError, EngineError):
    """A sampling method name does not resolve in the registry.

    Raised by :func:`repro.methods.get_method` and by
    :meth:`repro.evaluation.engine.EvaluationTask.cache_key` — a task must
    fail loudly here rather than mint a cache key for a method that can
    never run. Subclasses :class:`EngineError` so engine-level callers
    that catch the engine's typed error keep working.
    """


class MethodConfigError(MethodRegistryError):
    """A method was handed a config of the wrong type for its schema."""


class ServiceError(SieveError):
    """The sampling service was misused or failed internally.

    Base class for everything :mod:`repro.service` raises; carries the
    HTTP status the server should answer with so the error-mapping layer
    stays a single table-free ``except`` clause."""

    #: HTTP status the server maps this error onto.
    http_status: int = 500


class BadRequestError(ServiceError):
    """A service request was malformed (bad JSON, unknown field, a
    method/config combination that cannot be built). Always a client
    error: maps to HTTP 400."""

    http_status = 400


class ServiceUnavailableError(ServiceError):
    """The service cannot take the request right now (shutting down,
    task quarantined after repeated failures). Maps to HTTP 503."""

    http_status = 503


class StreamingError(SieveError):
    """The incremental sampling surface was misused (a feed that cannot
    satisfy the method's requirements, observe after finalize, a
    buffering fallback asked for context it was never given)."""


class FuzzError(SieveError):
    """The fuzzing campaign was misconfigured or hit an invariant failure
    (bad budget, mutation producing an unconstructible spec)."""


class CheckpointError(FuzzError):
    """A campaign checkpoint is unreadable or belongs to a different
    campaign configuration. Context: ``path``, plus the mismatching
    fields when known."""


class PerfStoreError(SieveError):
    """The performance version store was misused or is corrupt (unknown
    version, unreadable object, index/schema mismatch, a revision that
    resolves to nothing). Context: ``store`` plus the offending key."""


class PromotionError(FuzzError):
    """Promoting fuzz findings into the adversarial catalog failed
    (unreadable findings, a label collision that cannot be uniquified,
    an entry whose pinned error no longer reproduces)."""
