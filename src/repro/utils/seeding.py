"""Deterministic seed derivation from string labels.

Every stochastic element in the reproduction (workload generation, hardware
measurement noise, k-means initialization, random selection policies) draws
its randomness from a :class:`numpy.random.Generator` seeded through this
module. Seeds are derived from human-readable labels (workload names, kernel
names, experiment tags) via a stable cryptographic hash, so results are
bit-identical across runs, machines and Python versions.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Global salt mixed into every derived seed. Bump to re-roll the entire
#: synthetic universe while keeping the code unchanged.
UNIVERSE_SALT = "sieve-ispass-2023"


def derive_seed(*labels: object) -> int:
    """Derive a 63-bit seed from a sequence of labels.

    Labels are converted to ``str`` and joined with an unambiguous
    separator, so ``derive_seed("a", "bc")`` and ``derive_seed("ab", "c")``
    differ.

    >>> derive_seed("lmc") == derive_seed("lmc")
    True
    >>> derive_seed("lmc") != derive_seed("lmr")
    True
    """
    joined = "\x1f".join([UNIVERSE_SALT, *[str(label) for label in labels]])
    digest = hashlib.sha256(joined.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def rng_for(*labels: object) -> np.random.Generator:
    """Return a deterministic :class:`numpy.random.Generator` for labels."""
    return np.random.default_rng(derive_seed(*labels))
