"""Shared utilities: deterministic seeding, statistics, validation."""

from repro.utils.seeding import derive_seed, rng_for
from repro.utils.stats import (
    coefficient_of_variation,
    weighted_arithmetic_mean,
    weighted_harmonic_mean,
)
from repro.utils.validation import require

__all__ = [
    "derive_seed",
    "rng_for",
    "coefficient_of_variation",
    "weighted_arithmetic_mean",
    "weighted_harmonic_mean",
    "require",
]
