"""Statistical helpers used across the sampling pipelines.

The paper relies on three simple statistics:

* the *coefficient of variation* (CoV), used to tier kernels and to
  quantify within-cluster cycle dispersion (Figures 2 and 4);
* the *weighted harmonic mean*, used by Sieve to aggregate per-stratum IPC
  into application IPC (Section III-D);
* the *weighted arithmetic mean*, the CPI-domain equivalent the paper notes
  in the same section.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require


def coefficient_of_variation(values: np.ndarray) -> float:
    """Return the coefficient of variation ``sigma / mu`` of ``values``.

    The paper defines CoV as the (population) standard deviation divided by
    the mean instruction count. A single-element or empty array has zero
    dispersion by definition. A zero mean with non-zero dispersion is
    degenerate and raises.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size <= 1:
        return 0.0
    mean = float(values.mean())
    std = float(values.std())
    if mean == 0.0:
        if std == 0.0:
            return 0.0
        raise ValueError("CoV undefined: zero mean with non-zero dispersion")
    return std / abs(mean)


def weighted_harmonic_mean(values: np.ndarray, weights: np.ndarray) -> float:
    """Return ``1 / sum(w_i / x_i)`` with weights normalized to one.

    This is the application-IPC aggregation from Section III-D:
    ``IPC = 1 / sum_i(w_i / IPC_i)`` with instruction-count weights.
    """
    values = np.asarray(values, dtype=np.float64)
    weights = _normalized_weights(weights, values.shape)
    require(bool(np.all(values > 0)), "harmonic mean requires positive values")
    return float(1.0 / np.sum(weights / values))


def weighted_arithmetic_mean(values: np.ndarray, weights: np.ndarray) -> float:
    """Return ``sum(w_i * x_i)`` with weights normalized to one.

    The CPI-domain dual of :func:`weighted_harmonic_mean`: the weighted
    harmonic mean of IPC equals the reciprocal of the weighted arithmetic
    mean of CPI under the same weights.
    """
    values = np.asarray(values, dtype=np.float64)
    weights = _normalized_weights(weights, values.shape)
    return float(np.sum(weights * values))


def _normalized_weights(weights: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64)
    require(weights.shape == shape, "values and weights must have equal shape")
    require(bool(np.all(weights >= 0)), "weights must be non-negative")
    total = float(weights.sum())
    require(total > 0, "weights must not all be zero")
    return weights / total
