"""Stable content hashing for cache keys.

The evaluation engine memoizes results on disk keyed by *what was
computed*: the resolved workload spec, the sampler configurations, the
fault plan and the package source itself. Python's built-in ``hash`` is
salted per process and ``repr`` is not guaranteed stable across versions,
so cache keys are derived from a canonical JSON encoding hashed with
SHA-256 — the same construction :mod:`repro.utils.seeding` uses for
deterministic randomness.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from pathlib import Path

import numpy as np


def canonicalize(obj: object) -> object:
    """Reduce ``obj`` to JSON-encodable primitives, deterministically.

    Dataclasses become ``{"__type__": name, fields...}`` so two configs
    with identical field values but different classes hash differently.
    Floats are kept as-is (``json`` serializes them via ``repr``, which is
    exact for IEEE doubles). Unsupported types raise ``TypeError`` rather
    than silently collapsing to something lossy.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, Enum):
        return {"__type__": type(obj).__name__, "name": obj.name}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__type__": type(obj).__name__, **fields}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in sorted(obj.items())}
    if isinstance(obj, Path):
        return str(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return {"__type__": "ndarray", "dtype": str(obj.dtype),
                "data": obj.tolist()}
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for hashing")


def stable_hash(*parts: object) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``parts``.

    >>> stable_hash("a", 1) == stable_hash("a", 1)
    True
    >>> stable_hash("a", 1) != stable_hash("a", 2)
    True
    """
    payload = json.dumps(
        [canonicalize(part) for part in parts],
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def tree_fingerprint(root: Path, pattern: str = "*.py") -> str:
    """Content hash of every ``pattern`` file under ``root``.

    Used to fold the package source into cache keys: editing any module
    invalidates previously cached evaluation results even when the
    package version string is unchanged (the common case during
    development).
    """
    digest = hashlib.sha256()
    for path in sorted(root.rglob(pattern)):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()
