"""Grouped array operations (argsort-by-key + segment reductions).

The profile-side hot paths — stratification, tier CoV, golden-cycle
alignment, PKS cluster bookkeeping — all reduce to the same shape of
work: *group rows by an integer key, then reduce a value column within
each group*. Done naively (one ``np.flatnonzero(key == k)`` scan per
group) that is O(rows x groups); at MLPerf scale (1e5-1e6 invocations)
the scans dominate the whole profile pass. This module does it once:

* one **stable** argsort of the key column, so rows within a group keep
  their chronological (ascending-index) order;
* segment boundaries from the sorted keys;
* ``np.<ufunc>.reduceat`` segment reductions over the sorted values.

Integer reductions (counts, sums, mins, maxs) are exact, so grouped
results are bit-identical to the per-group loops they replace. Float
segment sums reassociate (``reduceat`` accumulates sequentially while
``np.sum`` is pairwise), which can move derived statistics such as the
coefficient of variation by an ulp; the golden suites tolerate this
(rtol 1e-6) and the property tests in
``tests/core/test_vectorized_reference.py`` pin the structural outputs
(group membership, tiers, representative rows) exactly against the
retained scalar references in :mod:`repro.core.reference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np


@dataclass(frozen=True)
class Segments:
    """Rows grouped by an integer key, ready for segment reductions.

    ``order`` is the stable argsort of the key column: rows of group
    ``keys[i]`` occupy ``order[starts[i]:ends[i]]`` in ascending original
    index (chronological) order. ``keys`` lists the *present* key values
    in ascending order; keys with no rows simply do not appear.
    """

    order: np.ndarray  # (n,) int64, stable argsort of the key column
    starts: np.ndarray  # (g,) segment start offsets into ``order``
    counts: np.ndarray  # (g,) rows per group
    keys: np.ndarray  # (g,) ascending present key values

    @classmethod
    def group_by(cls, key: np.ndarray) -> "Segments":
        """Group row indices of ``key`` by value (one sort, no scans)."""
        key = np.asarray(key)
        order = np.argsort(key, kind="stable")
        sorted_keys = key[order]
        if len(sorted_keys) == 0:
            empty = np.empty(0, dtype=np.int64)
            return cls(order=order, starts=empty, counts=empty, keys=empty)
        boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_keys)]))
        return cls(
            order=order,
            starts=starts,
            counts=ends - starts,
            keys=sorted_keys[starts],
        )

    def __len__(self) -> int:
        return len(self.starts)

    @cached_property
    def ends(self) -> np.ndarray:
        return self.starts + self.counts

    @cached_property
    def segment_of_position(self) -> np.ndarray:
        """Segment index of each position in ``order`` (length n)."""
        seg = np.zeros(len(self.order), dtype=np.int64)
        if len(self.starts) > 1:
            seg[self.starts[1:]] = 1
            np.cumsum(seg, out=seg)
        return seg

    def rows(self, segment: int) -> np.ndarray:
        """Row indices of one group, ascending (chronological) order."""
        return self.order[self.starts[segment] : self.ends[segment]]

    def gather(self, values: np.ndarray) -> np.ndarray:
        """``values`` re-ordered group-contiguously (``values[order]``)."""
        return np.asarray(values)[self.order]

    def reduce(self, sorted_values: np.ndarray, ufunc: np.ufunc) -> np.ndarray:
        """Per-group reduction of already-gathered (sorted) values."""
        if len(self.starts) == 0:
            return np.empty(0, dtype=np.asarray(sorted_values).dtype)
        return ufunc.reduceat(sorted_values, self.starts)

    def sums(self, sorted_values: np.ndarray) -> np.ndarray:
        return self.reduce(sorted_values, np.add)

    def mins(self, sorted_values: np.ndarray) -> np.ndarray:
        return self.reduce(sorted_values, np.minimum)

    def maxs(self, sorted_values: np.ndarray) -> np.ndarray:
        return self.reduce(sorted_values, np.maximum)

    def means(self, sorted_values: np.ndarray) -> np.ndarray:
        return self.sums(np.asarray(sorted_values, dtype=np.float64)) / self.counts

    def covs(self, sorted_values: np.ndarray) -> np.ndarray:
        """Per-group population coefficient of variation ``sigma / |mu|``.

        Two-pass (mean, then mean squared deviation), matching
        :func:`repro.utils.stats.coefficient_of_variation` semantics:
        single-row groups have zero dispersion; an all-zero group maps to
        0. A zero mean with non-zero dispersion cannot occur on the
        positive-clamped instruction counts this is used for, so it is
        resolved to ``inf`` rather than raising.
        """
        values = np.asarray(sorted_values, dtype=np.float64)
        means = self.means(values)
        deviations = values - np.repeat(means, self.counts)
        variances = self.sums(deviations * deviations) / self.counts
        stds = np.sqrt(variances)
        with np.errstate(divide="ignore", invalid="ignore"):
            covs = stds / np.abs(means)
        covs = np.where(self.counts <= 1, 0.0, covs)
        return np.where((means == 0.0) & (stds == 0.0), 0.0, covs)

    def first_positions(self, mask_sorted: np.ndarray) -> np.ndarray:
        """First position (into ``order``) where ``mask_sorted`` holds, per group.

        Every group must contain at least one ``True``; used to pick the
        first-chronological row matching a per-group condition (e.g. the
        per-cluster distance minimum) without per-group scans.
        """
        candidates = np.flatnonzero(mask_sorted)
        picks = np.searchsorted(candidates, self.starts)
        return candidates[picks]
