"""Small validation helpers shared by all subsystems."""

from __future__ import annotations


def require(
    condition: bool, message: str, error: type[Exception] = ValueError
) -> None:
    """Raise ``error`` (default :class:`ValueError`) unless ``condition``.

    Call sites that guard a specific pipeline stage pass one of the typed
    exceptions from :mod:`repro.utils.errors` (all of which subclass
    ``ValueError``) so failures are catchable per stage.
    """
    if not condition:
        raise error(message)
