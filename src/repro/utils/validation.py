"""Small validation helpers shared by all subsystems."""

from __future__ import annotations


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValueError(message)
