"""Statistical workload specifications.

A :class:`WorkloadSpec` captures the knobs needed to regenerate a Table I
workload's *sampling-relevant* structure:

* exact kernel and invocation counts (Table I);
* the invocation-weighted mix of tier behaviours (Figure 2): Tier-1
  kernels repeat the exact same instruction count, Tier-2 kernels vary a
  little, Tier-3 kernels are multimodal;
* cross-kernel *aliasing*: how many distinct characteristic families the
  kernels collapse into in the 12-dimensional PKS metric space;
* *heterogeneity*: how much hidden microarchitectural behaviour differs
  between kernels that alias to the same family;
* *chronological drift*: the fraction of early invocations doing smaller
  work (warm-up iterations, growing working sets), which is what biases
  first-chronological representative selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.utils.validation import require


class Tier(Enum):
    """Sieve's three-way kernel categorization (Section III-B)."""

    TIER1 = 1  # no variation in instruction count across invocations
    TIER2 = 2  # little variation (CoV below threshold theta)
    TIER3 = 3  # large variation (CoV above threshold theta)


@dataclass(frozen=True)
class KernelBehavior:
    """Per-tier instruction-count behaviour parameters.

    ``tier2_cov`` is the CoV of Tier-2 kernels' lognormal instruction
    counts. Tier-3 kernels draw from ``tier3_modes`` geometrically spaced
    modes spanning a factor ``tier3_spread`` between the smallest and
    largest mode, each mode itself having CoV ``tier3_mode_cov``.
    """

    tier2_cov: float = 0.12
    tier3_modes: int = 6
    tier3_spread: float = 30.0
    tier3_mode_cov: float = 0.05
    #: Mode population ∝ size^(-exponent): smaller invocations are more
    #: numerous (1.0 ⇒ every mode carries equal total work; above 1.0 the
    #: small-call population collectively dominates the cycle mass).
    tier3_count_exponent: float = 0.0

    def __post_init__(self) -> None:
        require(0.0 < self.tier2_cov < 1.0, "tier2_cov must be in (0, 1)")
        require(self.tier3_modes >= 2, "tier3 needs at least two modes")
        require(self.tier3_spread > 1.0, "tier3_spread must exceed 1.0")
        require(0.0 <= self.tier3_mode_cov < 0.5, "tier3_mode_cov out of range")
        require(self.tier3_count_exponent >= 0.0, "count exponent must be >= 0")


@dataclass(frozen=True)
class WorkloadSpec:
    """Complete statistical description of one Table I workload."""

    name: str
    suite: str
    num_kernels: int
    num_invocations: int
    #: Invocation-weighted target fractions per tier; must sum to 1.
    tier_fractions: tuple[float, float, float] = (0.4, 0.4, 0.2)
    behavior: KernelBehavior = field(default_factory=KernelBehavior)
    #: Mean thread-level instruction count per invocation (log-space center).
    insn_scale: float = 5.0e7
    #: Lognormal sigma of per-kernel base instruction counts around the scale.
    insn_kernel_sigma: float = 1.0
    #: Zipf-like skew of invocation counts across kernels (0 = uniform).
    invocation_skew: float = 0.8
    #: Number of characteristic families kernels alias into (<= num_kernels).
    alias_groups: int = 4
    #: Lognormal sigma of each kernel's metric-rate deviation from its
    #: family template. Small values keep aliased kernels on nearly the
    #: same ray in the 12-D space (easy for k-means to slice by size);
    #: large values scatter kernels directionally, forcing PKS to spend
    #: its <=20 clusters separating kernels instead of resolving size.
    metric_direction_sigma: float = 0.3
    #: Lognormal sigma of hidden per-kernel personality within a family.
    heterogeneity: float = 0.35
    #: Fraction of each drifting kernel's earliest invocations that execute
    #: reduced work, and the work-reduction factor applied to them.
    drift_fraction: float = 0.0
    drift_factor: float = 0.25
    #: How strongly a kernel's invocation sizes grow over program time
    #: (0 = launch order independent of size, 1 = strictly ascending).
    #: Real long-running programs ramp up (growing working sets, longer
    #: sequences), which is what makes first-chronological representatives
    #: systematically undersized for high-dispersion clusters.
    chrono_size_correlation: float = 0.0
    #: Fraction of kernels whose Turing-family cycles are scaled by
    #: ``turing_factor`` (captures workload-dependent arch affinity, Fig 9).
    turing_biased_fraction: float = 0.0
    turing_factor: float = 1.0
    #: Optional: force kernel 0 to carry this share of invocations (the
    #: paper's gst has one dominant, highly variable kernel).
    dominant_kernel_share: float = 0.0
    #: Per-invocation measurement noise CoV on the modeled hardware.
    measurement_noise_cov: float = 0.01
    #: Relative richness of the workload's instruction/metric types; scales
    #: the number of Nsight replay passes (the paper attributes MLPerf's
    #: larger profiling-time gap to its larger number of instruction types).
    profiling_complexity: float = 1.0

    def __post_init__(self) -> None:
        require(bool(self.name), "workload name must be non-empty")
        require(bool(self.suite), "suite name must be non-empty")
        require(self.num_kernels >= 1, "workload needs at least one kernel")
        require(
            self.num_invocations >= self.num_kernels,
            "need at least one invocation per kernel",
        )
        require(len(self.tier_fractions) == 3, "three tier fractions required")
        require(
            all(f >= 0 for f in self.tier_fractions),
            "tier fractions must be non-negative",
        )
        require(
            abs(sum(self.tier_fractions) - 1.0) < 1e-9,
            "tier fractions must sum to one",
        )
        require(
            1 <= self.alias_groups <= self.num_kernels,
            "alias_groups must be in [1, num_kernels]",
        )
        require(0.0 <= self.drift_fraction < 1.0, "drift_fraction in [0, 1)")
        require(self.drift_factor > 0.0, "drift_factor must be positive")
        require(
            0.0 <= self.chrono_size_correlation <= 1.0,
            "chrono_size_correlation in [0, 1]",
        )
        require(
            0.0 <= self.turing_biased_fraction <= 1.0,
            "turing_biased_fraction in [0, 1]",
        )
        require(self.turing_factor > 0.0, "turing_factor must be positive")
        require(
            0.0 <= self.dominant_kernel_share < 1.0,
            "dominant_kernel_share in [0, 1)",
        )
        require(self.insn_scale > 0, "insn_scale must be positive")
        require(self.measurement_noise_cov >= 0, "noise CoV must be >= 0")
        require(self.profiling_complexity >= 1.0, "profiling_complexity >= 1.0")

    @property
    def label(self) -> str:
        """Fully qualified workload label, e.g. ``cactus/lmc``."""
        return f"{self.suite}/{self.name}"

    def content_hash(self) -> str:
        """Stable hash over every field (and the nested behaviour).

        The evaluation engine keys its on-disk result cache on this, so
        recalibrating any catalog knob invalidates cached results for the
        affected workload without touching the others.
        """
        from repro.utils.hashing import stable_hash

        return stable_hash("workload-spec", self)

    def to_dict(self) -> dict:
        """JSON-ready form (fuzz checkpoints, findings files, the
        committed adversarial suite). Round-trips via :meth:`from_dict`."""
        from dataclasses import asdict

        payload = asdict(self)
        payload["behavior"] = asdict(self.behavior)
        payload["tier_fractions"] = list(self.tier_fractions)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkloadSpec":
        """Rebuild a spec from :meth:`to_dict` output (validates fully)."""
        fields = dict(payload)
        fields["behavior"] = KernelBehavior(**fields.get("behavior", {}))
        fields["tier_fractions"] = tuple(fields["tier_fractions"])
        return cls(**fields)

    def scaled(self, max_invocations: int) -> "WorkloadSpec":
        """Return a spec with invocations capped at ``max_invocations``.

        Kernel counts, tier structure and all statistical knobs are kept;
        only the invocation budget shrinks. This mirrors the paper's own
        practice of profiling a bounded number of invocations for the
        long-running Cactus/MLPerf workloads (Section IV).
        """
        require(max_invocations >= self.num_kernels, "cap below one per kernel")
        if self.num_invocations <= max_invocations:
            return self
        return WorkloadSpec(
            **{
                **self.__dict__,
                "num_invocations": max_invocations,
            }
        )
