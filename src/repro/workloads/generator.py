"""Deterministic synthetic workload generator.

Turns a :class:`~repro.workloads.spec.WorkloadSpec` into a concrete
:class:`WorkloadRun`: per-kernel hidden traits plus per-invocation
descriptor arrays (instruction counts, launch shapes, the 12 Table II
metric columns, and a global chronological order). All randomness is seeded
from the workload label, so generation is bit-reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import InvocationBatch, KernelTraits
from repro.utils.seeding import rng_for
from repro.utils.validation import require
from repro.workloads.allocation import assign_tiers, largest_remainder
from repro.workloads.spec import Tier, WorkloadSpec

#: Candidate CTA sizes (threads per block) used by generated kernels.
CTA_SIZE_CHOICES = np.array([64, 128, 192, 256, 384, 512, 1024])

#: Probability that a variable-size invocation uses its kernel's dominant
#: CTA size (launcher heuristics occasionally pick a different block size
#: for unusual problem sizes). Tier-1 kernels always use one CTA size:
#: an identical instruction count implies an identical launch.
DOMINANT_CTA_PROBABILITY = 0.95

#: Per-invocation multiplicative jitter (lognormal sigma) on metric
#: columns. Mild: an instruction mix is a property of the kernel's code
#: path, so same-size invocations execute near-identical streams. Tier-1
#: kernels (bit-identical work) use the tighter value.
METRIC_JITTER_SIGMA = 0.015
TIER1_METRIC_JITTER_SIGMA = 0.005

#: Tier-2/Tier-3 kernels are floored at this many CTAs per invocation so
#: variable-size kernels operate in the steady multi-wave regime (tiny
#: kernels in real workloads are overwhelmingly fixed-size, i.e. Tier-1).
MIN_VARIABLE_KERNEL_CTAS = 160


@dataclass(frozen=True)
class MetricMix:
    """Per-instruction metric rates shared by an alias family of kernels."""

    global_load_rate: float
    global_store_rate: float
    shared_load_rate: float
    shared_store_rate: float
    local_rate: float
    atomic_rate: float
    coalescing: float  # 1.0 = fully coalesced, 0.0 = fully scattered
    divergence: float  # mean divergence efficiency
    insn_per_thread: float  # thread-level instructions per launched thread


@dataclass(frozen=True)
class GeneratedKernel:
    """One generated kernel: hidden traits + invocation descriptors."""

    traits: KernelTraits
    batch: InvocationBatch
    intended_tier: Tier
    dominant_cta_size: int

    def __len__(self) -> int:
        return len(self.batch)


@dataclass(frozen=True)
class WorkloadRun:
    """A generated workload execution ready for profiling/measurement."""

    name: str
    suite: str
    spec: WorkloadSpec
    kernels: tuple[GeneratedKernel, ...]

    @property
    def label(self) -> str:
        return f"{self.suite}/{self.name}"

    @property
    def num_invocations(self) -> int:
        return sum(len(k) for k in self.kernels)

    @property
    def total_instructions(self) -> int:
        return int(sum(int(k.batch.insn_count.sum()) for k in self.kernels))

    def kernel_by_name(self, name: str) -> GeneratedKernel:
        for kernel in self.kernels:
            if kernel.traits.name == name:
                return kernel
        raise KeyError(f"no kernel named {name!r} in {self.label}")


def _sample_mix(rng: np.random.Generator) -> MetricMix:
    """Draw one alias family's metric-rate template."""
    shared_load = float(rng.uniform(0.0, 0.10)) if rng.random() < 0.7 else 0.0
    return MetricMix(
        global_load_rate=float(rng.uniform(0.02, 0.12)),
        global_store_rate=float(rng.uniform(0.005, 0.05)),
        shared_load_rate=shared_load,
        shared_store_rate=shared_load * float(rng.uniform(0.3, 0.7)),
        local_rate=float(rng.uniform(0.0, 0.01)) if rng.random() < 0.3 else 0.0,
        atomic_rate=float(rng.uniform(0.0, 0.004)) if rng.random() < 0.3 else 0.0,
        coalescing=float(rng.uniform(0.5, 1.0)),
        divergence=float(rng.uniform(0.75, 1.0)),
        insn_per_thread=float(rng.lognormal(math.log(700.0), 0.4)),
    )


def _jittered_mix(mix: MetricMix, rng: np.random.Generator, sigma: float) -> MetricMix:
    """Perturb a family template into one kernel's concrete rates."""

    def jitter(value: float) -> float:
        return value * float(rng.lognormal(0.0, sigma)) if value > 0 else 0.0

    return MetricMix(
        global_load_rate=jitter(mix.global_load_rate),
        global_store_rate=jitter(mix.global_store_rate),
        shared_load_rate=jitter(mix.shared_load_rate),
        shared_store_rate=jitter(mix.shared_store_rate),
        local_rate=jitter(mix.local_rate),
        atomic_rate=jitter(mix.atomic_rate),
        coalescing=min(1.0, jitter(mix.coalescing)),
        divergence=float(np.clip(jitter(mix.divergence), 0.5, 1.0)),
        insn_per_thread=jitter(mix.insn_per_thread),
    )


def _lognormal_with_cov(
    rng: np.random.Generator, mean: float, cov: float, size: int
) -> np.ndarray:
    """Draw lognormal samples with the requested mean and CoV."""
    if cov <= 0:
        return np.full(size, mean)
    sigma = math.sqrt(math.log(1.0 + cov * cov))
    return rng.lognormal(math.log(mean) - 0.5 * sigma * sigma, sigma, size)


def _insn_counts(
    spec: WorkloadSpec,
    tier: Tier,
    base: float,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-invocation thread-level instruction counts for one kernel."""
    behavior = spec.behavior
    if tier is Tier.TIER1:
        values = np.full(count, base)
    elif tier is Tier.TIER2:
        cov = float(rng.uniform(0.02, behavior.tier2_cov))
        values = _lognormal_with_cov(rng, base, cov, count)
    else:
        modes = behavior.tier3_modes
        span = behavior.tier3_spread
        centers = base * span ** (np.linspace(0.0, 1.0, modes) - 0.5)
        # Small invocations are more numerous (power-law population), so
        # the many-small-calls end of the spectrum carries real cycle mass.
        mode_weights = centers ** (-behavior.tier3_count_exponent)
        mode_weights = mode_weights * rng.lognormal(0.0, 0.5, modes)
        mode_weights = mode_weights / mode_weights.sum()
        assignment = rng.choice(modes, size=count, p=mode_weights)
        values = np.empty(count)
        for mode in range(modes):
            members = assignment == mode
            n_members = int(members.sum())
            if n_members:
                values[members] = _lognormal_with_cov(
                    rng, float(centers[mode]), behavior.tier3_mode_cov, n_members
                )

    if tier is not Tier.TIER1 and count > 1:
        # Ramp-up: reorder the sequence so launch time correlates with
        # invocation size (index order IS within-kernel chronology).
        correlation = spec.chrono_size_correlation
        if correlation > 0:
            ranks = np.argsort(np.argsort(values)) / max(count - 1, 1)
            keys = correlation * ranks + (1.0 - correlation) * rng.random(count)
            values = values[np.argsort(keys, kind="stable")]
        # Warm-up: the earliest invocations of highly variable kernels
        # execute reduced work (growing working sets). Tier-2 kernels stay
        # genuinely low-variability, as Figure 2 observes.
        if tier is Tier.TIER3 and spec.drift_fraction > 0:
            drifted = max(1, math.ceil(spec.drift_fraction * count))
            values[:drifted] = values[:drifted] * spec.drift_factor

    return np.maximum(np.rint(values), 1024.0).astype(np.int64)


def _build_batch(
    spec: WorkloadSpec,
    mix: MetricMix,
    insn: np.ndarray,
    dominant_cta: int,
    tier: Tier,
    rng: np.random.Generator,
) -> InvocationBatch:
    """Derive launch shapes and Table II metric columns from insn counts."""
    count = len(insn)
    insn_f = insn.astype(np.float64)

    if tier is Tier.TIER1:
        cta_size = np.full(count, dominant_cta, dtype=np.int32)
        jitter_sigma = TIER1_METRIC_JITTER_SIGMA
    else:
        alt_sizes = CTA_SIZE_CHOICES[CTA_SIZE_CHOICES != dominant_cta]
        use_dominant = rng.random(count) < DOMINANT_CTA_PROBABILITY
        cta_size = np.where(
            use_dominant, dominant_cta, rng.choice(alt_sizes, size=count)
        ).astype(np.int32)
        jitter_sigma = METRIC_JITTER_SIGMA

    threads = np.maximum(insn_f / mix.insn_per_thread, 1.0)
    num_ctas = np.maximum(np.rint(threads / cta_size), 1.0).astype(np.int64)

    def metric(rate: float) -> np.ndarray:
        if rate <= 0:
            return np.zeros(count, dtype=np.int64)
        jitter = rng.lognormal(0.0, jitter_sigma, count)
        return np.rint(insn_f * rate * jitter).astype(np.int64)

    thread_gl = metric(mix.global_load_rate)
    thread_gs = metric(mix.global_store_rate)
    thread_ll = metric(mix.local_rate)
    # Transactions per warp-level access: 1 when fully coalesced, up to 32
    # when fully scattered.
    txn_per_access = 1.0 + 31.0 * (1.0 - mix.coalescing)
    coalesced = lambda thread_level: np.rint(  # noqa: E731 - tiny local helper
        thread_level / 32.0 * txn_per_access
    ).astype(np.int64)

    divergence = np.clip(
        mix.divergence + rng.normal(0.0, 0.01, count), 0.5, 1.0
    )

    return InvocationBatch(
        insn_count=insn,
        cta_size=cta_size,
        num_ctas=num_ctas,
        coalesced_global_loads=coalesced(thread_gl),
        coalesced_global_stores=coalesced(thread_gs),
        coalesced_local_loads=coalesced(thread_ll),
        thread_global_loads=thread_gl,
        thread_global_stores=thread_gs,
        thread_local_loads=thread_ll,
        thread_shared_loads=metric(mix.shared_load_rate),
        thread_shared_stores=metric(mix.shared_store_rate),
        thread_global_atomics=metric(mix.atomic_rate),
        divergence_efficiency=divergence,
        chrono_index=np.zeros(count, dtype=np.int64),  # filled in by generate()
    )


def _sample_traits(
    spec: WorkloadSpec,
    kernel_name: str,
    turing_biased: bool,
    rng: np.random.Generator,
) -> KernelTraits:
    """Draw one kernel's hidden microarchitectural behaviour."""
    smem = 0 if rng.random() < 0.5 else int(rng.choice([8, 16, 32, 48])) * 1024
    arch_efficiency = {"turing": spec.turing_factor} if turing_biased else {}
    return KernelTraits(
        name=kernel_name,
        # Capped at 64 so any CTA size up to 1024 threads can launch within
        # the 64K-register SM file (as nvcc's launch bounds would enforce).
        regs_per_thread=int(rng.choice([32, 40, 48, 56, 64])),
        smem_per_cta=smem,
        ilp=float(rng.uniform(1.2, 3.5)),
        l1_hit_rate=float(rng.uniform(0.2, 0.9)),
        l2_hit_rate=float(rng.uniform(0.2, 0.7)),
        fp_ratio=float(rng.uniform(0.15, 0.85)),
        sfu_ratio=float(rng.uniform(0.0, 0.05)),
        personality=float(rng.lognormal(0.0, spec.heterogeneity)),
        measurement_noise_cov=spec.measurement_noise_cov,
        arch_efficiency=arch_efficiency,
    )


def generate(
    spec: WorkloadSpec, max_invocations: int | None = None
) -> WorkloadRun:
    """Generate the workload described by ``spec``.

    ``max_invocations`` optionally caps the invocation budget (see
    :meth:`WorkloadSpec.scaled`); per-kernel structure is preserved.
    """
    if max_invocations is not None:
        spec = spec.scaled(max_invocations)
    rng = rng_for("workload", spec.suite, spec.name)

    # --- invocation counts per kernel -------------------------------------
    ranks = rng.permutation(spec.num_kernels) + 1
    weights = ranks.astype(np.float64) ** (-spec.invocation_skew)
    if spec.dominant_kernel_share > 0 and spec.num_kernels > 1:
        weights = weights / weights.sum() * (1.0 - spec.dominant_kernel_share)
        weights[0] = spec.dominant_kernel_share
    counts = largest_remainder(weights, spec.num_invocations)

    # --- tier assignment ---------------------------------------------------
    tier_order = rng.permutation(spec.num_kernels)
    tier_indices = assign_tiers(counts, spec.tier_fractions, tier_order)
    if spec.dominant_kernel_share > 0:
        tier_indices[0] = 2  # the dominant kernel is the highly variable one

    # --- alias families ----------------------------------------------------
    # Kernels in a family share both a metric-mix template and a base
    # invocation size scale: aliased kernels occupy the same region of the
    # 12-D characteristic space at the same magnitudes, which is what makes
    # PKS clusters mix kernels whose hidden behaviour differs. Fixed-size
    # (Tier-1) utility kernels draw from families disjoint from the
    # variable-size compute kernels: a copy/reduction kernel's instruction
    # mix looks nothing like a solver or convolution kernel's.
    family_mixes = [_sample_mix(rng) for _ in range(spec.alias_groups)]
    family_scale = np.exp(rng.normal(0.0, spec.insn_kernel_sigma, spec.alias_groups))
    tier1_families = max(1, spec.alias_groups // 2)
    variable_start = min(tier1_families, spec.alias_groups - 1)
    family_of = np.where(
        tier_indices == 0,
        rng.integers(0, tier1_families, size=spec.num_kernels),
        rng.integers(variable_start, spec.alias_groups, size=spec.num_kernels),
    )

    # --- arch affinity -----------------------------------------------------
    n_biased = int(round(spec.turing_biased_fraction * spec.num_kernels))
    biased = np.zeros(spec.num_kernels, dtype=bool)
    if n_biased:
        biased[rng.choice(spec.num_kernels, size=n_biased, replace=False)] = True

    # --- per-kernel generation ---------------------------------------------
    kernels: list[GeneratedKernel] = []
    start_times: list[np.ndarray] = []
    for k in range(spec.num_kernels):
        kernel_rng = rng_for("kernel", spec.suite, spec.name, k)
        kernel_name = f"{spec.name}_k{k:03d}"
        tier = Tier(tier_indices[k] + 1)
        mix = _jittered_mix(family_mixes[family_of[k]], kernel_rng, spec.metric_direction_sigma)
        dominant_cta = int(kernel_rng.choice(CTA_SIZE_CHOICES))
        base_insn = (
            spec.insn_scale
            * float(family_scale[family_of[k]])
            * float(kernel_rng.lognormal(0.0, 0.3))
        )
        if tier is not Tier.TIER1:
            floor = MIN_VARIABLE_KERNEL_CTAS * mix.insn_per_thread * dominant_cta
            base_insn = max(base_insn, floor)
        insn = _insn_counts(spec, tier, base_insn, int(counts[k]), kernel_rng)
        batch = _build_batch(spec, mix, insn, dominant_cta, tier, kernel_rng)
        traits = _sample_traits(spec, kernel_name, bool(biased[k]), kernel_rng)
        kernels.append(
            GeneratedKernel(
                traits=traits,
                batch=batch,
                intended_tier=tier,
                dominant_cta_size=dominant_cta,
            )
        )
        # Per-kernel launch times: sorted uniforms preserve within-kernel
        # chronology (index order) while interleaving kernels globally.
        start_times.append(np.sort(kernel_rng.random(int(counts[k]))))

    # --- global chronological order ----------------------------------------
    all_times = np.concatenate(start_times)
    owner = np.concatenate(
        [np.full(int(counts[k]), k, dtype=np.int64) for k in range(spec.num_kernels)]
    )
    global_order = np.argsort(all_times, kind="stable")
    chrono_of_flat = np.empty(len(all_times), dtype=np.int64)
    chrono_of_flat[global_order] = np.arange(len(all_times))
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    for k, kernel in enumerate(kernels):
        span = slice(int(offsets[k]), int(offsets[k] + counts[k]))
        kernel.batch.chrono_index[:] = chrono_of_flat[span]
        require(bool(np.all(owner[span] == k)), "chronology bookkeeping broken")

    return WorkloadRun(
        name=spec.name, suite=spec.suite, spec=spec, kernels=tuple(kernels)
    )
