"""The committed adversarial suite: fuzz findings promoted to regressions.

Each entry is a shrunk reproducer from a ``repro.fuzz`` campaign — a
workload (sometimes plus a fault plan) on which at least one sampling
method's prediction error is large or whose stratification-health
gauges flag structural stress. The suite is a standing regression
fence: ``verify_suite`` re-evaluates every entry and checks the pinned
expected errors, and both the tier-1 tests and the CI fuzz smoke job
run it.

Entries are addressable through the catalog (``spec_for``,
``specs_for_suites(("adversarial",))``) but deliberately excluded from
``all_specs()`` — the paper's figures are defined over exactly the 40
Table I workloads.

Regenerate/extend with::

    sieve-repro fuzz --seed <seed> --budget <n> --out <dir>

then promote findings from ``<dir>/findings.json`` (see DESIGN.md §12).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from repro.robustness.faults import FaultPlan, FaultSpec
from repro.utils.errors import PromotionError
from repro.workloads.spec import KernelBehavior, WorkloadSpec

#: Pinned errors are exact reproductions of a deterministic pipeline;
#: the tolerance only absorbs float reassociation across platforms.
ERROR_TOLERANCE = 1e-9

#: Schema of the promoted-entries sidecar catalog (see
#: :func:`promoted_catalog_path`).
PROMOTED_SCHEMA = 1

#: Env override for where promoted entries live — tests and ephemeral
#: campaigns point this at a scratch file instead of the committed one.
PROMOTED_ENV = "SIEVE_ADVERSARIAL_PROMOTED"


@dataclass(frozen=True)
class AdversarialEntry:
    """One promoted finding: spec + plan + pinned per-method errors."""

    spec: WorkloadSpec
    #: Invocation cap the pinned errors were measured at.
    max_invocations: int
    #: method name -> absolute relative prediction error at discovery.
    expected_errors: Mapping[str, float]
    fault_plan: FaultPlan | None = None
    #: Provenance: campaign seed and candidate index that found it.
    campaign: str = ""
    source_index: int = -1
    #: What makes it adversarial (shown by ``fuzz --verify-suite``).
    note: str = ""

    @property
    def label(self) -> str:
        return self.spec.label

    def to_dict(self) -> dict:
        """JSON-ready form (the promoted-catalog sidecar format)."""
        fault_plan = None
        if self.fault_plan is not None:
            fault_plan = {
                "seed": self.fault_plan.seed,
                "specs": [
                    {"mode": s.mode, "rate": s.rate} for s in self.fault_plan.specs
                ],
            }
        return {
            "spec": self.spec.to_dict(),
            "max_invocations": self.max_invocations,
            "expected_errors": {
                k: float(v) for k, v in sorted(self.expected_errors.items())
            },
            "fault_plan": fault_plan,
            "campaign": self.campaign,
            "source_index": self.source_index,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "AdversarialEntry":
        plan_payload = payload.get("fault_plan")
        fault_plan = None
        if plan_payload is not None:
            fault_plan = FaultPlan(
                specs=tuple(
                    FaultSpec(mode=s["mode"], rate=float(s["rate"]))
                    for s in plan_payload["specs"]
                ),
                seed=int(plan_payload["seed"]),
            )
        return cls(
            spec=WorkloadSpec.from_dict(payload["spec"]),
            max_invocations=int(payload["max_invocations"]),
            expected_errors={
                k: float(v) for k, v in payload["expected_errors"].items()
            },
            fault_plan=fault_plan,
            campaign=str(payload.get("campaign", "")),
            source_index=int(payload.get("source_index", -1)),
            note=str(payload.get("note", "")),
        )


#: Hand-curated findings from campaign ``ispass-2023-adversarial`` (budget
#: 24, threshold 0.10, max_invocations 1200). Pinned errors were
#: measured at each entry's ``max_invocations`` with default method
#: configs; see ``tests/fuzz/test_adversarial_suite.py``.
_STATIC_ENTRIES: tuple[AdversarialEntry, ...] = (
    AdversarialEntry(
        spec=WorkloadSpec(
            name="srad-negative-insn",
            suite="adversarial",
            num_kernels=6,
            num_invocations=502,
            tier_fractions=(0.7, 0.3, 0.0),
            insn_scale=200000000.0,
            invocation_skew=0.5,
            alias_groups=6,
            metric_direction_sigma=0.2,
            heterogeneity=0.25,
            behavior=KernelBehavior(tier2_cov=0.15),
        ),
        max_invocations=1200,
        expected_errors={
            "pks": 0.00041724557486300367,
            "sieve": 0.27621742855539155,
        },
        fault_plan=FaultPlan(
            specs=(FaultSpec(mode="negative", rate=0.12695748673334212),),
            seed=7,
        ),
        campaign="ispass-2023-adversarial",
        source_index=7,
        note=(
            "The shrinker reduced this finding to the base rodinia/srad "
            "spec: negated insn counts alone push Sieve to ~28% error "
            "(corrupt sizes scramble the CoV tiering) while PKS, keyed "
            "on the 12-metric vector, barely moves."
        ),
    ),
    AdversarialEntry(
        spec=WorkloadSpec(
            name="lgt-skewed",
            suite="adversarial",
            num_kernels=74,
            num_invocations=266353,
            tier_fractions=(0.42, 0.38, 0.2),
            insn_scale=600000000.0,
            invocation_skew=0.9120987102193221,
            alias_groups=6,
            metric_direction_sigma=0.9,
            heterogeneity=0.3,
            drift_fraction=0.28,
            drift_factor=0.22,
            chrono_size_correlation=0.95,
            turing_biased_fraction=0.4,
            turing_factor=1.25,
            behavior=KernelBehavior(
                tier2_cov=0.8,
                tier3_modes=8,
                tier3_spread=60.0,
                tier3_mode_cov=0.3,
            ),
        ),
        max_invocations=1200,
        expected_errors={
            "pks": 0.12968473086944285,
            "sieve": 0.0050322310536225195,
        },
        campaign="ispass-2023-adversarial",
        source_index=1,
        note=(
            "cactus/lgt with a nudged invocation skew at half scale: "
            "PKS's first-chronological representatives land ~13% off on "
            "the drifting, strongly size-correlated kernels."
        ),
    ),
    AdversarialEntry(
        spec=WorkloadSpec(
            name="ssd-mobilenet-hetero-b",
            suite="adversarial",
            num_kernels=17,
            num_invocations=32069,
            tier_fractions=(0.5, 0.35, 0.15),
            insn_scale=600000000.0,
            alias_groups=5,
            metric_direction_sigma=0.6,
            heterogeneity=1.247987847547302,
            drift_fraction=0.15,
            drift_factor=0.3,
            chrono_size_correlation=0.85,
            profiling_complexity=2.4,
            behavior=KernelBehavior(
                tier2_cov=0.3,
                tier3_modes=5,
                tier3_spread=25.0,
                tier3_mode_cov=0.18,
            ),
        ),
        max_invocations=1200,
        expected_errors={
            "pks": 0.08006700348505193,
            "sieve": 0.0028458704915003278,
        },
        campaign="ispass-2023-adversarial",
        source_index=8,
        note=(
            "mlperf/ssd-mobilenet with 5x the hidden per-kernel "
            "heterogeneity and fewer kernels: aliased kernels stop "
            "sharing microarchitectural behaviour, so PKS clusters mix "
            "unlike kernels (~8% error)."
        ),
    ),
    AdversarialEntry(
        spec=WorkloadSpec(
            name="ssd-mobilenet-trimodal-b",
            suite="adversarial",
            num_kernels=33,
            num_invocations=32069,
            tier_fractions=(0.5, 0.35, 0.15),
            insn_scale=600000000.0,
            alias_groups=5,
            metric_direction_sigma=0.6,
            heterogeneity=0.25,
            drift_fraction=0.15,
            drift_factor=0.3,
            chrono_size_correlation=0.85,
            profiling_complexity=2.4,
            behavior=KernelBehavior(
                tier2_cov=0.3,
                tier3_modes=3,
                tier3_spread=25.0,
                tier3_mode_cov=0.18,
            ),
        ),
        max_invocations=1200,
        expected_errors={
            "pks": 0.17450473886894252,
            "sieve": 0.004442071986791278,
        },
        campaign="ispass-2023-adversarial",
        source_index=11,
        note=(
            "mlperf/ssd-mobilenet with Tier-3 kernels collapsed to 3 "
            "wide modes: per-cluster dispersion explodes and PKS's "
            "single representative per cluster misses by ~17%."
        ),
    ),
)

def promoted_catalog_path() -> Path:
    """Where ``sieve-repro fuzz promote`` lands entries.

    ``$SIEVE_ADVERSARIAL_PROMOTED`` wins; the default is a JSON sidecar
    next to this module so the promoted suite is committed alongside the
    hand-curated one.
    """
    configured = os.environ.get(PROMOTED_ENV)
    if configured:
        return Path(configured)
    return Path(__file__).with_name("adversarial_promoted.json")


def load_promoted_entries(
    path: Path | str | None = None,
) -> tuple[AdversarialEntry, ...]:
    """Entries from the promoted-catalog sidecar (empty when absent)."""
    path = Path(path) if path is not None else promoted_catalog_path()
    if not path.exists():
        return ()
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise PromotionError(
            f"unreadable promoted catalog {path}: {exc}", path=str(path)
        ) from exc
    if payload.get("schema") != PROMOTED_SCHEMA:
        raise PromotionError(
            "promoted catalog schema mismatch",
            path=str(path),
            found=payload.get("schema"),
            expected=PROMOTED_SCHEMA,
        )
    return tuple(
        AdversarialEntry.from_dict(entry) for entry in payload.get("entries", [])
    )


def save_promoted_entries(
    entries: "Iterable[AdversarialEntry]", path: Path | str | None = None
) -> Path:
    """Write the promoted catalog atomically (sorted by label)."""
    import tempfile

    path = Path(path) if path is not None else promoted_catalog_path()
    ordered = sorted(entries, key=lambda e: e.label)
    payload = {
        "schema": PROMOTED_SCHEMA,
        "entries": [entry.to_dict() for entry in ordered],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
    with os.fdopen(fd, "w") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def _all_entries() -> tuple[AdversarialEntry, ...]:
    """Static entries plus whatever the promoted catalog holds *now*.

    Computed per call (not cached) so a promotion in-process is visible
    to the next ``verify_suite``/catalog access without reimports.
    """
    return _STATIC_ENTRIES + load_promoted_entries()


def __getattr__(name: str):
    # PEP 562: ADVERSARIAL_ENTRIES/ADVERSARIAL_SPECS stay importable but
    # are computed per access so promoted entries join the suite live.
    if name == "ADVERSARIAL_ENTRIES":
        return _all_entries()
    if name == "ADVERSARIAL_SPECS":
        return tuple(entry.spec for entry in _all_entries())
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def verify_suite(engine=None) -> list[dict]:
    """Re-evaluate every entry against its pinned errors.

    Returns one row per (entry, method):
    ``{"label", "method", "expected", "actual", "ok"}``. Rows are in
    suite order then method order, so output is deterministic. An empty
    suite verifies vacuously.
    """
    from repro.evaluation.engine import (
        EngineConfig,
        EvaluationEngine,
        EvaluationTask,
    )

    if engine is None:
        engine = EvaluationEngine(EngineConfig(jobs=1, use_cache=False))
    rows: list[dict] = []
    for entry in _all_entries():
        task = EvaluationTask(
            label=entry.label,
            max_invocations=entry.max_invocations,
            fault_plan=entry.fault_plan,
            methods=tuple(sorted(entry.expected_errors)),
        )
        results = engine.run([task])[0]
        for method in sorted(entry.expected_errors):
            expected = float(entry.expected_errors[method])
            actual = abs(results[method].error)
            scale = max(abs(expected), 1.0)
            rows.append(
                {
                    "label": entry.label,
                    "method": method,
                    "expected": expected,
                    "actual": actual,
                    "ok": abs(actual - expected) <= ERROR_TOLERANCE * scale,
                }
            )
    return rows
