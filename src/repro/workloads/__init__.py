"""Workload substrate.

The paper profiles real executions of 40 workloads (Table I). This package
generates synthetic equivalents: for each workload, a deterministic
statistical model produces the same number of kernels and invocations with
per-kernel instruction-count structure calibrated to the paper's observed
tier behaviour (Figure 2), cross-kernel characteristic aliasing (what
confuses PKS clustering) and chronological drift (what biases
first-chronological representative selection).
"""

from repro.workloads.catalog import (
    CHALLENGING_SUITES,
    SIMPLE_SUITES,
    all_specs,
    spec_for,
    specs_for_suites,
    workload_names,
)
from repro.workloads.generator import GeneratedKernel, WorkloadRun, generate
from repro.workloads.spec import KernelBehavior, Tier, WorkloadSpec

__all__ = [
    "Tier",
    "KernelBehavior",
    "WorkloadSpec",
    "GeneratedKernel",
    "WorkloadRun",
    "generate",
    "all_specs",
    "spec_for",
    "specs_for_suites",
    "workload_names",
    "SIMPLE_SUITES",
    "CHALLENGING_SUITES",
]
