"""Catalog of the paper's 40 workloads (Table I).

Each entry reproduces the exact kernel/invocation counts from Table I and
encodes per-workload statistical knobs calibrated against the paper's
observations:

* Figure 2 tier structure (e.g. gms/lmr are all Tier-1/2 even at θ=0.1;
  gru/lmc/bert/resnet50 become all Tier-1/2 at larger θ; gst is the most
  Tier-3-heavy workload);
* Figure 3/5 PKS failure modes (heterogeneity within alias families,
  chronological drift that biases first-chronological selection — worst in
  spt and rnnt);
* Figure 4 dispersion extremes (dcg's enormous within-cluster cycle CoV);
* Figure 6 speedup outlier (gst's dominant highly variable kernel);
* Figure 9 architecture affinity (lmc/lmr run faster on Turing; gst, dcg
  and lgt run much faster on Ampere).
"""

from __future__ import annotations

from repro.utils.validation import require
from repro.workloads.spec import KernelBehavior, WorkloadSpec

SIMPLE_SUITES: tuple[str, ...] = ("parboil", "rodinia", "sdk")
CHALLENGING_SUITES: tuple[str, ...] = ("cactus", "mlperf")


def _simple(
    suite: str,
    name: str,
    kernels: int,
    invocations: int,
    *,
    tiers: tuple[float, float, float] = (0.7, 0.3, 0.0),
    tier2_cov: float = 0.15,
    drift: float = 0.0,
    heterogeneity: float = 0.25,
    alias_groups: int | None = None,
    insn_scale: float = 2.0e8,
    size_correlation: float = 0.0,
    direction_sigma: float = 0.2,
) -> WorkloadSpec:
    """Spec template for the easy-to-sample Parboil/Rodinia/SDK workloads."""
    return WorkloadSpec(
        name=name,
        suite=suite,
        num_kernels=kernels,
        num_invocations=invocations,
        tier_fractions=tiers,
        behavior=KernelBehavior(tier2_cov=tier2_cov),
        insn_scale=insn_scale,
        invocation_skew=0.5,
        alias_groups=alias_groups if alias_groups is not None else kernels,
        metric_direction_sigma=direction_sigma,
        heterogeneity=heterogeneity,
        drift_fraction=drift,
        chrono_size_correlation=size_correlation,
    )


_PARBOIL = [
    _simple("parboil", "bfs_ny", 2, 11),
    _simple("parboil", "histo", 4, 252),
    _simple("parboil", "lbm", 1, 3000, tiers=(1.0, 0.0, 0.0)),
    _simple("parboil", "mri-g", 9, 51),
    _simple("parboil", "stencil", 1, 100, tiers=(1.0, 0.0, 0.0)),
]

_RODINIA = [
    # cfd is the paper's one simple-suite PKS failure (23% error, Fig 8):
    # aliased kernels with drifting invocation sizes.
    _simple(
        "rodinia",
        "cfd",
        4,
        14003,
        tiers=(0.3, 0.4, 0.3),
        drift=0.25,
        heterogeneity=0.5,
        alias_groups=2,
        size_correlation=0.9,
        direction_sigma=0.7,
    ),
    _simple("rodinia", "dwt2d", 4, 10),
    _simple("rodinia", "gaussian", 2, 16382, tiers=(0.4, 0.6, 0.0), tier2_cov=0.12),
    _simple("rodinia", "heartwall", 1, 20, tiers=(1.0, 0.0, 0.0)),
    _simple("rodinia", "hotspot3d", 1, 100, tiers=(1.0, 0.0, 0.0)),
    _simple("rodinia", "huffman", 6, 46),
    _simple("rodinia", "lud", 3, 22, tiers=(0.3, 0.7, 0.0), tier2_cov=0.35),
    _simple("rodinia", "nw", 2, 255, tiers=(0.2, 0.8, 0.0), tier2_cov=0.15),
    _simple("rodinia", "srad", 6, 502),
]

_SDK = [
    _simple("sdk", "blackscholes", 1, 512, tiers=(1.0, 0.0, 0.0)),
    _simple("sdk", "cholesky", 25, 143, tiers=(0.5, 0.5, 0.0)),
    _simple("sdk", "gradient", 7, 84),
    _simple("sdk", "dct8x8", 8, 118),
    _simple("sdk", "histogram", 4, 68),
    _simple("sdk", "hsopticalflow", 6, 7576, tiers=(0.5, 0.4, 0.1)),
    _simple("sdk", "mergesort", 4, 49, tiers=(0.4, 0.6, 0.0), tier2_cov=0.3),
    _simple("sdk", "nvjpeg", 2, 32),
    _simple("sdk", "random", 2, 42, tiers=(1.0, 0.0, 0.0)),
    _simple("sdk", "sortingnet", 4, 290, tiers=(0.4, 0.6, 0.0)),
]


def _challenging(
    suite: str,
    name: str,
    kernels: int,
    invocations: int,
    *,
    tiers: tuple[float, float, float],
    behavior: KernelBehavior,
    alias_groups: int,
    heterogeneity: float,
    direction_sigma: float = 0.3,
    drift: float,
    drift_factor: float = 0.25,
    turing_biased_fraction: float = 0.0,
    turing_factor: float = 1.0,
    dominant_kernel_share: float = 0.0,
    insn_scale: float = 6.0e8,
    invocation_skew: float = 0.8,
    profiling_complexity: float = 1.0,
    size_correlation: float = 0.75,
) -> WorkloadSpec:
    """Spec template for the challenging Cactus/MLPerf workloads."""
    return WorkloadSpec(
        name=name,
        suite=suite,
        num_kernels=kernels,
        num_invocations=invocations,
        tier_fractions=tiers,
        behavior=behavior,
        insn_scale=insn_scale,
        invocation_skew=invocation_skew,
        alias_groups=alias_groups,
        metric_direction_sigma=direction_sigma,
        heterogeneity=heterogeneity,
        drift_fraction=drift,
        drift_factor=drift_factor,
        turing_biased_fraction=turing_biased_fraction,
        turing_factor=turing_factor,
        dominant_kernel_share=dominant_kernel_share,
        profiling_complexity=profiling_complexity,
        chrono_size_correlation=size_correlation,
    )


_CACTUS = [
    _challenging(
        "cactus", "gru", 8, 43_837,
        tiers=(0.50, 0.45, 0.05),
        behavior=KernelBehavior(
            tier2_cov=0.45, tier3_modes=5, tier3_spread=15.0, tier3_mode_cov=0.18
        ),
        alias_groups=3, heterogeneity=0.25, drift=0.18, drift_factor=0.35,
        turing_biased_fraction=0.4, turing_factor=0.78,
        direction_sigma=0.7,
        size_correlation=0.9,
    ),
    _challenging(
        # gst: one dominant kernel with wildly varying instruction counts;
        # both samplers end up selecting nearly all of its invocations.
        "cactus", "gst", 15, 175,
        tiers=(0.20, 0.20, 0.60),
        behavior=KernelBehavior(
            tier2_cov=0.3, tier3_modes=24, tier3_spread=200.0, tier3_mode_cov=0.25
        ),
        alias_groups=5, heterogeneity=0.3, drift=0.1,
        dominant_kernel_share=0.6,
        turing_biased_fraction=0.5, turing_factor=1.35,
        insn_scale=2.0e9,
        direction_sigma=0.5,
        size_correlation=0.5,
    ),
    _challenging(
        "cactus", "gms", 14, 92_520,
        tiers=(0.60, 0.40, 0.0),
        behavior=KernelBehavior(tier2_cov=0.08),
        alias_groups=4, heterogeneity=0.25, drift=0.12, drift_factor=0.4,
        direction_sigma=0.5,
        size_correlation=0.85,
    ),
    _challenging(
        "cactus", "lmc", 58, 248_548,
        tiers=(0.35, 0.62, 0.03),
        behavior=KernelBehavior(
            tier2_cov=0.85, tier3_modes=6, tier3_spread=12.0, tier3_mode_cov=0.18
        ),
        alias_groups=6, heterogeneity=0.25, drift=0.2, drift_factor=0.35,
        turing_biased_fraction=0.85, turing_factor=0.58,
        direction_sigma=0.65,
        size_correlation=0.9,
    ),
    _challenging(
        "cactus", "lmr", 62, 74_765,
        tiers=(0.55, 0.45, 0.0),
        behavior=KernelBehavior(tier2_cov=0.08),
        alias_groups=6, heterogeneity=0.25, drift=0.15, drift_factor=0.4,
        turing_biased_fraction=0.85, turing_factor=0.65,
        direction_sigma=0.5,
        size_correlation=0.88,
    ),
    _challenging(
        "cactus", "dcg", 59, 414_585,
        tiers=(0.40, 0.35, 0.25),
        behavior=KernelBehavior(
            tier2_cov=0.8, tier3_modes=10, tier3_spread=2000.0, tier3_mode_cov=0.3
        ),
        alias_groups=5, heterogeneity=0.3, drift=0.22, drift_factor=0.2,
        turing_biased_fraction=0.5, turing_factor=1.30,
        direction_sigma=0.85,
        size_correlation=0.92,
    ),
    _challenging(
        "cactus", "lgt", 74, 532_707,
        tiers=(0.42, 0.38, 0.20),
        behavior=KernelBehavior(
            tier2_cov=0.8, tier3_modes=8, tier3_spread=60.0, tier3_mode_cov=0.3
        ),
        alias_groups=6, heterogeneity=0.3, drift=0.28, drift_factor=0.22,
        turing_biased_fraction=0.4, turing_factor=1.25,
        direction_sigma=0.9,
        size_correlation=0.95,
    ),
    _challenging(
        "cactus", "nst", 50, 1_072_246,
        tiers=(0.40, 0.35, 0.25),
        behavior=KernelBehavior(
            tier2_cov=0.35, tier3_modes=9, tier3_spread=80.0, tier3_mode_cov=0.3
        ),
        alias_groups=4, heterogeneity=0.3, drift=0.4, drift_factor=0.15,
        turing_biased_fraction=0.5, turing_factor=0.75,
        direction_sigma=0.9,
        size_correlation=0.97,
    ),
    _challenging(
        "cactus", "rfl", 57, 206_407,
        tiers=(0.45, 0.40, 0.15),
        behavior=KernelBehavior(
            tier2_cov=0.3, tier3_modes=6, tier3_spread=40.0, tier3_mode_cov=0.18
        ),
        alias_groups=5, heterogeneity=0.25, drift=0.18, drift_factor=0.3,
        direction_sigma=0.75,
        size_correlation=0.92,
    ),
    _challenging(
        # spt: the paper's worst case for PKS (60.4% error with
        # first-chronological selection, 25.3% random, 17.9% centroid).
        "cactus", "spt", 43, 112_668,
        tiers=(0.25, 0.55, 0.20),
        behavior=KernelBehavior(
            tier2_cov=0.95, tier3_modes=12, tier3_spread=200.0, tier3_mode_cov=0.3
        ),
        alias_groups=2, heterogeneity=0.25, drift=0.5, drift_factor=0.06,
        turing_biased_fraction=0.5, turing_factor=0.70,
        direction_sigma=1.0,
        size_correlation=0.985,
    ),
]

_MLPERF = [
    _challenging(
        "mlperf", "3d-unet", 20, 113_183,
        tiers=(0.45, 0.45, 0.10),
        behavior=KernelBehavior(
            tier2_cov=0.7, tier3_modes=6, tier3_spread=30.0, tier3_mode_cov=0.18
        ),
        alias_groups=4, heterogeneity=0.25, drift=0.18, drift_factor=0.3,
        insn_scale=8.0e8, profiling_complexity=2.8,
        direction_sigma=0.65,
        size_correlation=0.85,
    ),
    _challenging(
        "mlperf", "bert", 11, 141_964,
        tiers=(0.50, 0.50, 0.0),
        behavior=KernelBehavior(tier2_cov=0.45),
        alias_groups=4, heterogeneity=0.25, drift=0.15, drift_factor=0.35,
        insn_scale=8.0e8, profiling_complexity=3.0,
        direction_sigma=0.55,
        size_correlation=0.85,
    ),
    _challenging(
        "mlperf", "resnet50", 20, 78_825,
        tiers=(0.60, 0.40, 0.0),
        behavior=KernelBehavior(tier2_cov=0.45),
        alias_groups=5, heterogeneity=0.25, drift=0.12, drift_factor=0.4,
        insn_scale=8.0e8, profiling_complexity=2.6,
        direction_sigma=0.45,
        size_correlation=0.8,
    ),
    _challenging(
        # rnnt: sequence-length-driven multimodality; PKS's 20-cluster cap
        # cannot cover the mode structure (46% error in the paper).
        "mlperf", "rnnt", 39, 205_440,
        tiers=(0.15, 0.55, 0.30),
        behavior=KernelBehavior(
            tier2_cov=0.9, tier3_modes=16, tier3_spread=150.0, tier3_mode_cov=0.3
        ),
        alias_groups=2, heterogeneity=0.25, drift=0.5, drift_factor=0.08,
        insn_scale=1.5e9, profiling_complexity=3.6,
        direction_sigma=1.0,
        size_correlation=0.98,
    ),
    _challenging(
        "mlperf", "ssd-mobilenet", 33, 64_138,
        tiers=(0.50, 0.35, 0.15),
        behavior=KernelBehavior(
            tier2_cov=0.3, tier3_modes=5, tier3_spread=25.0, tier3_mode_cov=0.18
        ),
        alias_groups=5, heterogeneity=0.25, drift=0.15, drift_factor=0.3,
        insn_scale=6.0e8, profiling_complexity=2.4,
        direction_sigma=0.6,
        size_correlation=0.85,
    ),
    _challenging(
        "mlperf", "ssd-resnet34", 26, 57_267,
        tiers=(0.45, 0.40, 0.15),
        behavior=KernelBehavior(
            tier2_cov=0.38, tier3_modes=5, tier3_spread=25.0, tier3_mode_cov=0.18
        ),
        alias_groups=5, heterogeneity=0.25, drift=0.18, drift_factor=0.3,
        insn_scale=6.0e8, profiling_complexity=2.4,
        direction_sigma=0.5,
        size_correlation=0.85,
    ),
]

_ALL: dict[str, WorkloadSpec] = {
    spec.label: spec
    for spec in [*_PARBOIL, *_RODINIA, *_SDK, *_CACTUS, *_MLPERF]
}
require(len(_ALL) == 40, "catalog must contain exactly the 40 Table I workloads")


def all_specs() -> list[WorkloadSpec]:
    """All 40 workload specs in Table I order.

    Deliberately excludes the :mod:`~repro.workloads.adversarial` suite:
    every figure/table driver and golden iterates this list, and the
    paper's experiments are defined over exactly the Table I inventory.
    Adversarial specs resolve through :func:`spec_for` and
    :func:`specs_for_suites` instead.
    """
    return list(_ALL.values())


def _extended() -> dict[str, WorkloadSpec]:
    """Catalog plus the committed fuzz-derived adversarial suite.

    Imported lazily: the adversarial module is regenerated by fuzzing
    campaigns, and a broken regeneration must not take down the whole
    catalog import.
    """
    from repro.workloads.adversarial import ADVERSARIAL_SPECS

    return {**_ALL, **{spec.label: spec for spec in ADVERSARIAL_SPECS}}


def specs_for_suites(suites: tuple[str, ...] | list[str]) -> list[WorkloadSpec]:
    """Specs belonging to the given suites, in Table I order.

    The ``adversarial`` suite (fuzz-derived regression workloads) is
    addressable here even though :func:`all_specs` excludes it.
    """
    return [spec for spec in _extended().values() if spec.suite in suites]


def spec_for(label_or_name: str) -> WorkloadSpec:
    """Look up a spec by ``suite/name`` label or bare workload name."""
    extended = _extended()
    if label_or_name in extended:
        return extended[label_or_name]
    matches = [s for s in extended.values() if s.name == label_or_name]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise KeyError(f"no workload named {label_or_name!r}")
    labels = ", ".join(s.label for s in matches)
    raise KeyError(f"ambiguous workload name {label_or_name!r}: {labels}")


def workload_names(suites: tuple[str, ...] | list[str] | None = None) -> list[str]:
    """Bare workload names, optionally restricted to suites."""
    specs = all_specs() if suites is None else specs_for_suites(suites)
    return [spec.name for spec in specs]
