"""Integer allocation helpers for the workload generator."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require


def largest_remainder(weights: np.ndarray, total: int, minimum: int = 1) -> np.ndarray:
    """Allocate ``total`` integer units proportionally to ``weights``.

    Every entry receives at least ``minimum`` units; the remainder is
    distributed by the largest-remainder (Hamilton) method, which keeps the
    allocation within one unit of exact proportionality.
    """
    weights = np.asarray(weights, dtype=np.float64)
    n = len(weights)
    require(n >= 1, "need at least one weight")
    require(bool(np.all(weights >= 0)), "weights must be non-negative")
    require(weights.sum() > 0, "weights must not all be zero")
    require(total >= minimum * n, "total too small for the per-entry minimum")

    distributable = total - minimum * n
    shares = weights / weights.sum() * distributable
    counts = np.floor(shares).astype(np.int64)
    remainder = distributable - int(counts.sum())
    if remainder > 0:
        fractional = shares - counts
        # Stable tie-break on index keeps the allocation deterministic.
        order = np.lexsort((np.arange(n), -fractional))
        counts[order[:remainder]] += 1
    return counts + minimum


def assign_tiers(
    invocation_counts: np.ndarray,
    tier_fractions: tuple[float, float, float],
    order: np.ndarray,
) -> np.ndarray:
    """Assign each kernel a tier so invocation-weighted tier mass matches.

    Kernels are visited in ``order`` (a permutation, typically random) and
    greedily assigned to the tier with the largest remaining invocation
    quota, so the realized invocation-weighted tier fractions track
    ``tier_fractions`` as closely as the granularity of per-kernel counts
    allows. Returns an array of tier indices (0, 1, 2).
    """
    invocation_counts = np.asarray(invocation_counts, dtype=np.int64)
    total = int(invocation_counts.sum())
    remaining = np.array([f * total for f in tier_fractions], dtype=np.float64)
    tiers = np.empty(len(invocation_counts), dtype=np.int64)
    for kernel_index in order:
        tier = int(np.argmax(remaining))
        tiers[kernel_index] = tier
        remaining[tier] -= invocation_counts[kernel_index]
    return tiers
