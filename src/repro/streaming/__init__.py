"""Incremental (streaming) sampling operators.

The batch pipeline assumes the full profile table is materialized before
``select()`` runs. This package factors the pipeline into operators that
consume a profile *chunk by chunk* — online per-kernel accumulators for
tier assignment, bounded reservoirs feeding the KDE split at finalize,
and selections that emit/retract representative picks as invocations
arrive — so unbounded feeds (a live profiler, the service) can be
sampled with O(kernels + reservoir) memory. The batch path in
:mod:`repro.core.stratify` is a thin driver over these operators and is
pinned byte-identical to its historical output.
"""

from repro.streaming.accumulators import KernelAccumulators, ReservoirStore
from repro.streaming.base import (
    BufferingStream,
    MethodStream,
    StreamContext,
    StreamEvent,
    StreamingSpec,
    iter_table_chunks,
    note_resident_rows,
)
from repro.streaming.periodic import PeriodicStream
from repro.streaming.sieve import SieveStream
from repro.streaming.stratify import StreamingStratifier

__all__ = [
    "BufferingStream",
    "KernelAccumulators",
    "MethodStream",
    "PeriodicStream",
    "ReservoirStore",
    "SieveStream",
    "StreamContext",
    "StreamEvent",
    "StreamingSpec",
    "StreamingStratifier",
    "iter_table_chunks",
    "note_resident_rows",
]
