"""Sieve's incremental selection: picks that emit/retract as rows arrive.

:class:`SieveStream` wraps the :class:`StreamingStratifier` and turns
finalized (or mid-stream) strata into weighted representative picks. On
an unbounded reservoir the finalized selection is byte-identical to
:meth:`repro.core.pipeline.SievePipeline.select` on the same rows; on a
bounded reservoir, Tier-1/2 kernels keep exact picks and exact
instruction-share weights (the accumulators and the first-invocation /
per-CTA trackers survive eviction), while Tier-3 kernels are split over
the retained sample — the documented approximation.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SieveConfig
from repro.core.pipeline import METHOD_NAME, SieveSelection
from repro.core.selection import representative_position
from repro.core.stratify import Stratum
from repro.core.types import Representative
from repro.core.weights import stratum_weights
from repro.observability import metrics, span
from repro.streaming.base import MethodStream, StreamContext
from repro.streaming.stratify import StratumMembers, StreamingStratifier
from repro.utils.errors import SelectionError, StreamingError
from repro.utils.validation import require
from repro.workloads.spec import Tier


class SieveStream(MethodStream):
    """One in-progress incremental Sieve selection."""

    def __init__(self, context: StreamContext, config: SieveConfig):
        super().__init__(context)
        self.config = config
        self.stratifier = StreamingStratifier(
            context.workload, config, context.reservoir_rows
        )
        self._workload = context.workload
        self._saw_chunk = False
        # group label -> (kernel_name, row, invocation_id, weight estimate)
        self._picks: dict[str, tuple[str, int, int, float]] = {}

    @property
    def resident_rows(self) -> int:
        return self.stratifier.resident_rows

    # ------------------------------------------------------------------ #
    # Observe

    def _observe(self, chunk, rows: np.ndarray | None) -> None:
        if not self._saw_chunk and len(chunk):
            # Selection labels and the random-policy seed derive from the
            # profile's own workload name, exactly as the batch path does.
            self._workload = chunk.workload
            self._saw_chunk = True
        touched = self.stratifier.observe(chunk, rows)
        if self.context.collect_events and touched:
            self._refresh(sorted(set(touched)))

    def _refresh(self, slots: list[int]) -> None:
        finalized = self.stratifier.strata_for_slots(slots)
        grand_total = float(self.stratifier.accumulators.clamped_total())
        new_picks: dict[str, tuple[str, int, int, float]] = {}
        for stratum, member in zip(finalized.strata, finalized.members):
            row, invocation_id = self._pick(stratum, member, record_metrics=False)
            weight = (
                stratum.insn_total / grand_total if grand_total > 0 else 0.0
            )
            new_picks[stratum.label] = (
                stratum.kernel_name, row, invocation_id, weight
            )
        kernels = {self.stratifier.accumulators.names[s] for s in slots}
        self._apply_picks(kernels, new_picks)

    def _apply_picks(
        self,
        kernels: set[str],
        new_picks: dict[str, tuple[str, int, int, float]],
    ) -> None:
        """Diff new picks against the published ones; record the events."""
        vanished = sorted(
            group
            for group, (kernel, *_rest) in self._picks.items()
            if kernel in kernels and group not in new_picks
        )
        for group in vanished:
            kernel, row, invocation_id, weight = self._picks.pop(group)
            self._record(
                "retract",
                group=group,
                kernel_name=kernel,
                row=row,
                invocation_id=invocation_id,
                weight=weight,
            )
        for group in sorted(new_picks):
            kernel, row, invocation_id, weight = new_picks[group]
            old = self._picks.get(group)
            if old is not None and (old[1], old[2]) != (row, invocation_id):
                self._record(
                    "retract",
                    group=group,
                    kernel_name=old[0],
                    row=old[1],
                    invocation_id=old[2],
                    weight=old[3],
                )
                old = None
            if old is None:
                self._record(
                    "emit",
                    group=group,
                    kernel_name=kernel,
                    row=row,
                    invocation_id=invocation_id,
                    weight=weight,
                )
            self._picks[group] = new_picks[group]

    # ------------------------------------------------------------------ #
    # Picks

    def _pick(
        self, stratum: Stratum, member: StratumMembers, *, record_metrics: bool
    ) -> tuple[int, int]:
        """(row, invocation_id) for one stratum under the config policy."""
        policy = self.config.selection_policy
        if not member.complete and stratum.tier is not Tier.TIER3:
            # Eviction-proof trackers: exact "first invocation" /
            # per-CTA-size picks even though early rows left the
            # reservoir. Tier-1 strata always select first-chronological.
            key = (
                "first"
                if stratum.tier is Tier.TIER1 or policy == "first"
                else policy
            )
            exact = self.stratifier.exact_pick(member.slot, key)
            if exact is not None:
                if record_metrics:
                    metrics.inc("sieve.selection.rows", policy=policy)
                return exact
        position = representative_position(
            stratum.tier,
            policy,
            workload=self._workload,
            label=stratum.label,
            member_insn=member.insn_raw,
            member_cta=member.cta,
            record_metrics=record_metrics,
        )
        return int(stratum.rows[position]), int(member.invocation_id[position])

    def _group_size(self, stratum: Stratum, member: StratumMembers) -> int:
        if member.complete:
            return stratum.size
        if stratum.tier is not Tier.TIER3:
            return member.population  # exact full-stream count
        retained = self.stratifier.retained_count(member.slot)
        return max(1, member.population * stratum.size // max(1, retained))

    # ------------------------------------------------------------------ #
    # Finalize

    def _finalize(self) -> SieveSelection:
        require(
            self.rows_seen > 0, "stream observed no invocations", StreamingError
        )
        finalized = self.stratifier.finalize()
        require(
            len(finalized.strata) > 0,
            "stratification produced no strata",
            SelectionError,
        )
        weights = stratum_weights(finalized.strata)
        representatives = []
        final_picks: dict[str, tuple[str, int, int, float]] = {}
        with span(
            "sieve.selection",
            workload=self._workload,
            strata=len(finalized.strata),
        ):
            for stratum, member, weight in zip(
                finalized.strata, finalized.members, weights
            ):
                row, invocation_id = self._pick(
                    stratum, member, record_metrics=True
                )
                representatives.append(
                    Representative(
                        kernel_name=stratum.kernel_name,
                        kernel_id=stratum.kernel_id,
                        invocation_id=invocation_id,
                        row=row,
                        weight=float(weight),
                        group=stratum.label,
                        group_size=self._group_size(stratum, member),
                    )
                )
                final_picks[stratum.label] = (
                    stratum.kernel_name, row, invocation_id, float(weight)
                )
        metrics.inc("sieve.representatives", len(representatives))
        if self.context.collect_events:
            self._apply_picks(
                set(self.stratifier.accumulators.names), final_picks
            )
        return SieveSelection(
            workload=self._workload,
            method=METHOD_NAME,
            representatives=tuple(representatives),
            total_instructions=self.stratifier.accumulators.total_instructions(),
            num_invocations=self.rows_seen,
            strata=tuple(finalized.strata),
        )
