"""Incremental stratification: the operator behind ``stratify_table``.

:class:`StreamingStratifier` consumes profile chunks and, at finalize,
produces exactly the strata :func:`repro.core.stratify.stratify_table`
historically produced — the batch path now *is* one ``observe`` of the
whole table followed by ``finalize``, and the fig3/4/6 goldens pin that
byte-identical.

Per chunk, the work is the same grouped-array shape as the batch pass:
one stable argsort of the chunk's kernel ids, segment reductions into
the per-kernel accumulators, and an append of each kernel's segment to
its reservoir. At finalize, kernels whose reservoir is complete (always
true unbounded) replay the exact batch math — the same
:class:`~repro.utils.segments.Segments` reduceat reductions over the
same per-kernel-contiguous layout, which per-segment are independent of
every other segment, hence bit-identical to the one-shot pass. Kernels
whose reservoir overflowed fall back to the full-stream accumulators for
tier assignment (exact integer min/max, Welford CoV) and run the KDE
split over the retained sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.robustness.diagnostics as diagnostics
from repro.core.config import SieveConfig
from repro.core.kde import kde_strata
from repro.core.stratify import Stratum
from repro.observability import metrics
from repro.streaming.accumulators import (
    ChunkStats,
    KernelAccumulators,
    ReservoirStore,
)
from repro.utils.errors import StreamingError
from repro.utils.segments import Segments
from repro.utils.stats import coefficient_of_variation
from repro.utils.validation import require
from repro.workloads.spec import Tier


@dataclass(frozen=True)
class StratumMembers:
    """Side-channel per-stratum member columns for pick policies.

    ``insn_raw``/``cta``/``invocation_id`` align element-wise with the
    stratum's ``rows``; for an overflowed kernel they cover only the
    retained sample (``complete`` is False then).
    """

    insn_raw: np.ndarray
    cta: np.ndarray
    invocation_id: np.ndarray
    complete: bool
    slot: int
    population: int  # exact full-stream invocation count of the kernel


@dataclass(frozen=True)
class FinalizedStrata:
    """Strata plus the member columns selection policies need."""

    strata: list[Stratum]
    members: list[StratumMembers]


class StreamingStratifier:
    """Online Sieve stratification over profile chunks."""

    def __init__(
        self,
        workload: str,
        config: SieveConfig,
        reservoir_rows: int | None = None,
    ):
        require(config.theta > 0, "theta must be positive")
        self.workload = workload
        self.config = config
        self.accumulators = KernelAccumulators()
        self.reservoirs = ReservoirStore(workload, reservoir_rows)
        self.rows_seen = 0
        # Exact pick trackers, maintained only in bounded mode: the first
        # invocation overall and per CTA size survive eviction, so the
        # paper's default policies stay exact even when the reservoir
        # cannot hold the kernel.
        self._first: dict[int, tuple[int, int]] = {}  # slot -> (row, inv)
        self._cta: dict[int, dict[int, list[int]]] = {}  # cta -> [n, row, inv]
        # Single-shot fast path (the batch driver): when exactly one
        # unbounded observe covered the whole stream, its sorted layout
        # and segment reductions are already what finalize would rebuild
        # from the reservoirs, bit for bit. Kept only until a second
        # chunk arrives.
        self._snapshot: tuple | None = None

    # ------------------------------------------------------------------ #
    # Observe

    def observe(self, chunk, rows: np.ndarray | None = None) -> list[int]:
        """Fold one profile chunk in; returns the touched accumulator slots."""
        n = len(chunk)
        if n == 0:
            return []
        if rows is None:
            global_rows = np.arange(self.rows_seen, self.rows_seen + n,
                                    dtype=np.int64)
        else:
            global_rows = np.asarray(rows, dtype=np.int64)
        segments = Segments.group_by(chunk.kernel_id)
        insn_sorted = segments.gather(chunk.insn_count)
        bad_sorted = insn_sorted <= 0
        clamped = np.where(bad_sorted, 1, insn_sorted)
        cta_sorted = segments.gather(chunk.cta_size)
        rows_sorted = global_rows[segments.order]
        inv_sorted = segments.gather(chunk.invocation_id)

        counts = segments.counts.astype(np.int64)
        means = segments.means(clamped)
        deviations = clamped.astype(np.float64) - np.repeat(means, counts)
        stats = ChunkStats(
            counts=counts,
            insn_sum=segments.sums(clamped),
            raw_sum=segments.sums(insn_sorted),
            bad=segments.sums(bad_sorted.astype(np.int64)),
            min_insn=segments.mins(clamped),
            max_insn=segments.maxs(clamped),
            mean=means,
            m2=segments.sums(deviations * deviations),
            max_cta=segments.maxs(cta_sorted).astype(np.int64),
        )
        slots = self.accumulators.slots_for(chunk.kernel_names, segments.keys)
        self.accumulators.merge(slots, stats)

        bounded = self.reservoirs.bounded
        if self.rows_seen == 0 and not bounded:
            # Single-shot fast path: defer the per-kernel reservoir
            # appends — if this stays the only chunk (the batch driver),
            # finalize never needs the reservoirs at all.
            self._snapshot = (
                segments, slots, stats, clamped,
                rows_sorted, inv_sorted, insn_sorted, cta_sorted,
            )
            self.rows_seen += n
            return [int(s) for s in slots]
        self._flush_deferred()
        self._snapshot = None
        self._append_chunk(
            segments, slots, rows_sorted, inv_sorted, insn_sorted, cta_sorted
        )
        self.rows_seen += n
        return [int(s) for s in slots]

    def _append_chunk(
        self, segments, slots, rows_sorted, inv_sorted, insn_sorted, cta_sorted
    ) -> None:
        bounded = self.reservoirs.bounded
        starts = segments.starts.tolist()
        ends = segments.ends.tolist()
        for g, slot in enumerate(slots):
            slot = int(slot)
            lo, hi = starts[g], ends[g]
            if bounded:
                self._track_exact_picks(
                    slot,
                    rows_sorted[lo:hi],
                    inv_sorted[lo:hi],
                    cta_sorted[lo:hi],
                )
            self.reservoirs.append(
                slot,
                self.accumulators.names[slot],
                rows_sorted[lo:hi],
                inv_sorted[lo:hi],
                insn_sorted[lo:hi],
                cta_sorted[lo:hi],
            )

    def _flush_deferred(self) -> None:
        """Materialize the deferred first chunk's reservoir appends."""
        if self._snapshot is None:
            return
        segments, slots, _, _, rows, inv, insn, cta = self._snapshot
        self._append_chunk(segments, slots, rows, inv, insn, cta)
        self._snapshot = None

    def _track_exact_picks(
        self,
        slot: int,
        rows: np.ndarray,
        invocation_id: np.ndarray,
        cta: np.ndarray,
    ) -> None:
        if slot not in self._first:
            self._first[slot] = (int(rows[0]), int(invocation_id[0]))
        table = self._cta.setdefault(slot, {})
        sizes, first, counts = np.unique(
            cta, return_index=True, return_counts=True
        )
        for size, pos, count in zip(sizes, first, counts):
            entry = table.get(int(size))
            if entry is None:
                table[int(size)] = [
                    int(count), int(rows[pos]), int(invocation_id[pos])
                ]
            else:
                entry[0] += int(count)

    # ------------------------------------------------------------------ #
    # Finalize

    @property
    def resident_rows(self) -> int:
        deferred = 0 if self._snapshot is None else len(self._snapshot[4])
        return self.reservoirs.resident_rows() + deferred

    def finalize(self) -> FinalizedStrata:
        """All kernels' strata in batch order, with the legacy metrics."""
        return self._build(range(len(self.accumulators)), emit_metrics=True)

    def strata_for_slots(self, slots) -> FinalizedStrata:
        """A subset's current strata (no metric emission; event refresh)."""
        return self._build(slots, emit_metrics=False)

    def slot_of(self, kernel_name: str) -> int | None:
        return self.accumulators._index.get(kernel_name)

    def retained_count(self, slot: int) -> int:
        return self.reservoirs.retained_count(slot)

    def exact_pick(self, slot: int, policy: str) -> tuple[int, int] | None:
        """An eviction-proof (row, invocation_id) pick, when one exists.

        Maintained only in bounded mode: the first invocation overall
        ("first" policy and every Tier-1 stratum) and the first
        invocation per CTA size ("dominant_cta"/"max_cta") are tracked
        exactly as the stream flows, so single-stratum kernels keep
        batch-exact picks even after their reservoir overflowed.
        """
        if policy == "first":
            return self._first.get(slot)
        table = self._cta.get(slot)
        if not table:
            return None
        if policy == "dominant_cta":
            # Modal CTA size, ties toward the smaller size (batch order:
            # np.unique ascending + first argmax).
            best = max(sorted(table), key=lambda size: table[size][0])
            return table[best][1], table[best][2]
        if policy == "max_cta":
            entry = table[max(table)]
            return entry[1], entry[2]
        return None

    def _single_shot_layout(self, slots) -> tuple | None:
        """The saved first-chunk layout, when it still covers the request.

        Valid only while exactly one unbounded observe has happened and
        the request asks for every slot in natural order — then the
        chunk's sorted arrays ARE the per-kernel-contiguous layout the
        general path would rebuild from the reservoirs, and its
        :class:`ChunkStats` reductions were computed by the very same
        two-pass segment math, so reusing both is bit-identical.
        """
        if self._snapshot is None:
            return None
        ordered = [int(s) for s in slots]
        if ordered != list(range(len(self.accumulators))):
            return None
        segments, _, stats, clamped, rows, inv, raw, cta = self._snapshot
        counts = segments.counts.astype(np.int64)
        tier1 = stats.min_insn == stats.max_insn
        variances = stats.m2 / counts
        stds = np.sqrt(variances)
        with np.errstate(divide="ignore", invalid="ignore"):
            covs = stds / np.abs(stats.mean)
        covs = np.where(counts <= 1, 0.0, covs)
        covs = np.where((stats.mean == 0.0) & (stds == 0.0), 0.0, covs)
        complete = np.ones(len(ordered), dtype=bool)
        return (
            ordered, segments.starts, counts, rows, inv, raw, clamped, cta,
            tier1, covs, stats.insn_sum, complete,
        )

    def _general_layout(self, slots) -> tuple:
        self._flush_deferred()
        accumulators = self.accumulators
        ordered = sorted(
            (int(s) for s in slots),
            key=lambda s: (accumulators.kernel_id[s], s),
        )
        retained = [self.reservoirs.retained(s) for s in ordered]
        counts = np.array([len(r[0]) for r in retained], dtype=np.int64)
        require(
            bool(np.all(counts > 0)) or len(ordered) == 0,
            "stratifier finalized a kernel with no retained invocations",
            StreamingError,
        )
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))[: len(ordered)] \
            if len(ordered) else np.empty(0, dtype=np.int64)
        total = int(counts.sum())
        rows_cat = np.empty(total, dtype=np.int64)
        inv_cat = np.empty(total, dtype=np.int64)
        raw_cat = np.empty(total, dtype=np.int64)
        cta_cat = np.empty(total, dtype=np.int64)
        for g, (rows, inv, raw, cta) in enumerate(retained):
            lo = int(starts[g])
            hi = lo + int(counts[g])
            rows_cat[lo:hi] = rows
            inv_cat[lo:hi] = inv
            raw_cat[lo:hi] = raw
            cta_cat[lo:hi] = cta
        # The concatenated layout is per-kernel contiguous in kernel-id
        # order with chronological rows inside each kernel — exactly the
        # batch pass's stable argsort layout — so the reduceat reductions
        # below are bit-identical to stratify_table's historical ones
        # (reduceat segments reduce independently of one another).
        segments = Segments(
            order=np.arange(total, dtype=np.int64),
            starts=starts.astype(np.int64),
            counts=counts,
            keys=np.array(
                [accumulators.kernel_id[s] for s in ordered], dtype=np.int64
            ),
        )
        bad_cat = raw_cat <= 0
        clamped_cat = np.where(bad_cat, 1, raw_cat)
        tier1_retained = segments.mins(clamped_cat) == segments.maxs(clamped_cat)
        covs_retained = segments.covs(clamped_cat)
        sums_retained = segments.sums(clamped_cat)
        complete = np.array(
            [self.reservoirs.complete(s) for s in ordered], dtype=bool
        )

        tier1 = np.empty(len(ordered), dtype=bool)
        covs = np.empty(len(ordered), dtype=np.float64)
        for g, slot in enumerate(ordered):
            if complete[g]:
                tier1[g] = tier1_retained[g]
                covs[g] = covs_retained[g]
            else:
                tier1[g] = bool(
                    accumulators.min_insn[slot] == accumulators.max_insn[slot]
                )
                covs[g] = accumulators.welford_cov(slot)
        return (
            ordered, starts, counts, rows_cat, inv_cat, raw_cat, clamped_cat,
            cta_cat, tier1, covs, sums_retained, complete,
        )

    def _build(self, slots, emit_metrics: bool) -> FinalizedStrata:
        accumulators = self.accumulators
        config = self.config
        layout = self._single_shot_layout(slots)
        if layout is None:
            layout = self._general_layout(slots)
        (
            ordered, starts, counts, rows_cat, inv_cat, raw_cat, clamped_cat,
            cta_cat, tier1, covs, sums_retained, complete,
        ) = layout
        tier3 = ~tier1 & (covs > config.theta)

        # Scalarize the per-kernel columns once: the 2k+-iteration loop
        # below on numpy scalar indexing costs more than the reductions.
        starts_l = np.asarray(starts).tolist()
        ends_l = (np.asarray(starts) + counts).tolist()
        tier1_l = np.asarray(tier1).tolist()
        tier3_l = tier3.tolist()
        covs_l = np.asarray(covs, dtype=np.float64).tolist()
        sums_l = np.asarray(sums_retained).tolist()
        complete_l = np.asarray(complete).tolist()
        insn_sum_l = accumulators.insn_sum[ordered].tolist()
        bad_l = accumulators.bad[ordered].tolist()
        population_l = accumulators.count[ordered].tolist()

        if emit_metrics:
            total_bad = sum(bad_l)
            if total_bad:
                metrics.inc("sieve.stratify.clamped_insn", total_bad)
            for tier, count in (
                (Tier.TIER1, int(np.count_nonzero(tier1))),
                (Tier.TIER2, int(np.count_nonzero(~tier1 & ~tier3))),
                (Tier.TIER3, int(np.count_nonzero(tier3))),
            ):
                if count:
                    metrics.inc("sieve.stratify.kernels", count, tier=tier.name)

        strata: list[Stratum] = []
        members: list[StratumMembers] = []
        for g, slot in enumerate(ordered):
            kernel_id = accumulators.kernel_id[slot]
            kernel_name = accumulators.names[slot]
            population = population_l[g]
            lo, hi = starts_l[g], ends_l[g]
            rows = rows_cat[lo:hi]
            if emit_metrics and bad_l[g]:
                diagnostics.emit(
                    "stratify",
                    f"kernel {kernel_name!r}: clamped "
                    f"{bad_l[g]} non-positive insn counts "
                    "to 1",
                )
            if not tier3_l[g]:
                # Tier-1/2: one stratum covering the whole kernel. The
                # instruction total comes from the exact full-stream
                # accumulator (identical to the retained segment sum when
                # the reservoir is complete).
                if emit_metrics:
                    metrics.observe("sieve.stratify.stratum_size", len(rows))
                strata.append(
                    Stratum(
                        kernel_id=kernel_id,
                        kernel_name=kernel_name,
                        tier=Tier.TIER1 if tier1_l[g] else Tier.TIER2,
                        index=0,
                        rows=rows,
                        insn_total=insn_sum_l[g],
                        insn_cov=covs_l[g],
                    )
                )
                members.append(
                    StratumMembers(
                        insn_raw=raw_cat[lo:hi],
                        cta=cta_cat[lo:hi],
                        invocation_id=inv_cat[lo:hi],
                        complete=complete_l[g],
                        slot=slot,
                        population=population,
                    )
                )
                continue
            insn = clamped_cat[lo:hi]
            groups = kde_strata(
                insn,
                config.theta,
                grid_points=config.kde_grid_points,
                bandwidth_scale=config.kde_bandwidth_scale,
            )
            kernel_total = insn_sum_l[g]
            retained_total = sums_l[g]
            for index, group in enumerate(groups):
                order = np.sort(group)
                member_rows = rows[order]
                member_insn = insn[order]  # clamped view, keeps totals positive
                if complete_l[g]:
                    insn_total = int(member_insn.sum())
                else:
                    # Scale the retained stratum total up to the exact
                    # kernel total (integer floor; deterministic).
                    insn_total = int(
                        kernel_total * int(member_insn.sum()) // retained_total
                    )
                if emit_metrics:
                    metrics.observe(
                        "sieve.stratify.stratum_size", len(member_rows)
                    )
                strata.append(
                    Stratum(
                        kernel_id=kernel_id,
                        kernel_name=kernel_name,
                        tier=Tier.TIER3,
                        index=index,
                        rows=member_rows,
                        insn_total=insn_total,
                        insn_cov=coefficient_of_variation(member_insn),
                    )
                )
                members.append(
                    StratumMembers(
                        insn_raw=raw_cat[lo:hi][order],
                        cta=cta_cat[lo:hi][order],
                        invocation_id=inv_cat[lo:hi][order],
                        complete=complete_l[g],
                        slot=slot,
                        population=population,
                    )
                )
        return FinalizedStrata(strata=strata, members=members)
