"""The incremental sampling surface: contexts, events, stream base class.

A :class:`MethodStream` is one in-progress incremental selection:
``observe(chunk)`` folds a profile chunk in (returning any emit/retract
events it triggered), ``finalize()`` closes the stream and returns the
method's usual :class:`~repro.core.types.SampleSelection`. Methods that
have no true incremental implementation get :class:`BufferingStream`,
which buffers every chunk and delegates to ``select`` at finalize — the
honest fallback, with an honestly O(rows) resident footprint that the
``streaming.high_water_rows`` gauge makes visible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.observability import metrics
from repro.profiling.table import ProfileTable, concat_profile_tables
from repro.utils.errors import StreamingError
from repro.utils.validation import require

if TYPE_CHECKING:
    from repro.core.types import SampleSelection
    from repro.gpu.hardware import WorkloadMeasurement
    from repro.methods.base import SamplingMethod


@dataclass(frozen=True)
class StreamingSpec:
    """How to stream a profile through a method (engine/CLI surface).

    ``chunk_rows`` is the flush granularity; ``reservoir_rows`` bounds the
    per-kernel retained sample (``None`` retains everything, which keeps
    the finalized selection byte-identical to the batch path).
    """

    chunk_rows: int = 4096
    reservoir_rows: int | None = None

    def __post_init__(self) -> None:
        require(self.chunk_rows >= 1, "chunk_rows must be >= 1", StreamingError)
        require(
            self.reservoir_rows is None or self.reservoir_rows >= 1,
            "reservoir_rows must be >= 1 when bounded",
            StreamingError,
        )


@dataclass(frozen=True)
class StreamEvent:
    """One emit or retract of a representative pick, mid-stream.

    ``weight`` is the pick's weight *estimate at the time the event
    fired* — weights drift as more of the stream arrives, and only the
    finalized selection's weights are authoritative. ``rows_seen`` is the
    stream position (rows observed so far) when the event fired.
    """

    seq: int
    kind: str  # "emit" | "retract"
    group: str
    kernel_name: str
    row: int
    invocation_id: int
    weight: float
    rows_seen: int


@dataclass(frozen=True)
class StreamContext:
    """What a method stream knows about the world.

    ``batch`` optionally carries the full
    :class:`~repro.evaluation.context.WorkloadContext` when the stream is
    driven over an already-materialized workload (the evaluation path);
    feed-driven streams leave it ``None`` and buffering fallbacks then
    assemble a context from the chunks themselves.
    """

    workload: str
    golden: WorkloadMeasurement | None = None
    batch: object | None = None
    reservoir_rows: int | None = None
    #: Emit/retract StreamEvents as picks change mid-stream (costs a
    #: per-chunk refresh of the touched kernels' picks).
    collect_events: bool = False


def note_resident_rows(rows: int) -> None:
    """Record the stream's resident row count and raise the high-water gauge."""
    metrics.set_gauge("streaming.resident_rows", rows)
    registry = metrics.get_registry()
    if rows > registry.gauges.get("streaming.high_water_rows", 0.0):
        metrics.set_gauge("streaming.high_water_rows", rows)


def iter_table_chunks(
    table: ProfileTable, chunk_rows: int
) -> Iterator[ProfileTable]:
    """Slice ``table`` into chronological chunks of ``chunk_rows`` rows."""
    require(chunk_rows >= 1, "chunk_rows must be >= 1", StreamingError)
    for start in range(0, len(table), chunk_rows):
        yield table.slice_rows(start, min(start + chunk_rows, len(table)))


class MethodStream(ABC):
    """One in-progress incremental selection for one method."""

    def __init__(self, context: StreamContext):
        self.context = context
        self.events: list[StreamEvent] = []
        self.rows_seen = 0
        self._finalized = False

    # ------------------------------------------------------------------ #
    # Public surface

    def observe(
        self, chunk: ProfileTable, rows: np.ndarray | None = None
    ) -> list[StreamEvent]:
        """Fold one profile chunk in; returns the events it triggered.

        ``rows`` optionally names each invocation's global row index in
        the stream (for out-of-order delivery); by default rows are
        numbered sequentially in arrival order. Within one kernel, rows
        must arrive in chronological order — the contract every pick
        policy's "first invocation" semantics rest on.
        """
        require(
            not self._finalized, "observe() after finalize()", StreamingError
        )
        if rows is not None:
            rows = np.asarray(rows, dtype=np.int64)
            require(
                len(rows) == len(chunk),
                "explicit row indices must align with the chunk",
                StreamingError,
            )
        before = len(self.events)
        metrics.inc("streaming.chunks")
        metrics.inc("streaming.rows", len(chunk))
        self._observe(chunk, rows)
        self.rows_seen += len(chunk)
        note_resident_rows(self.resident_rows)
        return self.events[before:]

    def finalize(self) -> SampleSelection:
        """Close the stream and return the method's selection."""
        require(not self._finalized, "finalize() twice", StreamingError)
        self._finalized = True
        return self._finalize()

    @property
    def resident_rows(self) -> int:
        """Rows currently held in memory by this stream."""
        return 0

    # ------------------------------------------------------------------ #
    # Subclass surface

    @abstractmethod
    def _observe(self, chunk: ProfileTable, rows: np.ndarray | None) -> None:
        """Fold one chunk into the stream's state."""

    @abstractmethod
    def _finalize(self) -> SampleSelection:
        """Build the final selection."""

    def _record(
        self,
        kind: str,
        *,
        group: str,
        kernel_name: str,
        row: int,
        invocation_id: int,
        weight: float,
    ) -> StreamEvent:
        event = StreamEvent(
            seq=len(self.events),
            kind=kind,
            group=group,
            kernel_name=kernel_name,
            row=int(row),
            invocation_id=int(invocation_id),
            weight=float(weight),
            rows_seen=self.rows_seen,
        )
        self.events.append(event)
        metrics.inc(f"streaming.{kind}s")
        return event


class _AssembledContext:
    """Duck-typed workload context built from buffered chunks.

    Stands in for :class:`~repro.evaluation.context.WorkloadContext` when
    a buffering fallback must call ``select`` on a feed-driven stream.
    Only the profile tables and the golden measurement exist; anything
    else a method asks for raises a typed :class:`StreamingError`.
    """

    def __init__(
        self,
        label: str,
        table: ProfileTable,
        golden: WorkloadMeasurement | None,
    ):
        self.label = label
        self._table = table
        self._golden = golden

    @property
    def sieve_table(self) -> ProfileTable:
        if self._table.metrics is None:
            return self._table
        return self._table.without_metrics()

    @property
    def pks_table(self) -> ProfileTable:
        require(
            self._table.metrics is not None,
            "feed carries no metric columns; PKS-style methods need the "
            "12-metric profile",
            StreamingError,
        )
        return self._table

    @property
    def golden(self) -> WorkloadMeasurement:
        require(
            self._golden is not None,
            "feed-driven stream has no golden measurement",
            StreamingError,
        )
        return self._golden

    def __getattr__(self, name: str):
        raise StreamingError(
            f"buffered stream context cannot supply {name!r}; "
            "this method needs a full workload context",
            workload=self.label,
        )


class BufferingStream(MethodStream):
    """Fallback stream: buffer every chunk, delegate to ``select``.

    This is the default ``begin_stream`` implementation — correct for
    every method, incremental for none. Its resident footprint is the
    whole stream, which ``streaming.high_water_rows`` reports honestly.
    """

    def __init__(
        self,
        method: SamplingMethod,
        context: StreamContext,
        config: object | None,
    ):
        super().__init__(context)
        self.method = method
        self.config = config
        self._chunks: list[ProfileTable] = []

    @property
    def resident_rows(self) -> int:
        return sum(len(chunk) for chunk in self._chunks)

    def _observe(self, chunk: ProfileTable, rows: np.ndarray | None) -> None:
        require(
            rows is None or bool(np.all(np.diff(rows) > 0)),
            "buffering fallback requires in-order chunks",
            StreamingError,
        )
        self._chunks.append(chunk)

    def _finalize(self) -> SampleSelection:
        require(self._chunks, "stream observed no rows", StreamingError)
        if self.context.batch is not None:
            context = self.context.batch
        else:
            context = _AssembledContext(
                self.context.workload,
                concat_profile_tables(self._chunks),
                self.context.golden,
            )
        return self.method.select(context, self.config)
