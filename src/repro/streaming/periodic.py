"""Incremental periodic (systematic) sampling.

Membership in a periodic sample is a pure function of the global row
index — ``row >= offset and (row - offset) % period == 0`` — so the
stream needs O(picks) state and no reservoir: each qualifying row is
emitted the moment it arrives. The batch fallback (an empty grid picks
row 0) maps onto a *provisional* pick that is emitted when row 0 is seen
and retracted as soon as a real grid pick lands — the simplest honest
demonstration of retract semantics.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.periodic import PeriodicSampler
from repro.core.types import Representative, SampleSelection
from repro.streaming.base import MethodStream, StreamContext
from repro.utils.errors import StreamingError
from repro.utils.validation import require


class PeriodicStream(MethodStream):
    """One in-progress incremental periodic selection."""

    def __init__(self, context: StreamContext, config: PeriodicSampler):
        super().__init__(context)
        self.period = config.period
        self.offset = config.offset
        self._workload = context.workload
        self._saw_chunk = False
        self._raw_sum = 0
        # group index -> (kernel_name, kernel_id, row, invocation_id)
        self._picks: dict[int, tuple[str, int, int, int]] = {}
        self._fallback: tuple[str, int, int, int] | None = None
        self._fallback_emitted = False

    def _observe(self, chunk, rows: np.ndarray | None) -> None:
        n = len(chunk)
        if n == 0:
            return
        if not self._saw_chunk:
            self._workload = chunk.workload
            self._saw_chunk = True
        if rows is None:
            global_rows = np.arange(self.rows_seen, self.rows_seen + n,
                                    dtype=np.int64)
        else:
            global_rows = rows
        self._raw_sum += int(chunk.insn_count.sum())
        zero = np.flatnonzero(global_rows == 0)
        if len(zero) and self._fallback is None:
            i = int(zero[0])
            self._fallback = (
                chunk.kernel_name_of_row(i),
                int(chunk.kernel_id[i]),
                0,
                int(chunk.invocation_id[i]),
            )
            if self.context.collect_events and self.offset > 0 and not self._picks:
                # Provisional: stands until (unless) a grid pick arrives.
                self._record(
                    "emit",
                    group="period0",
                    kernel_name=self._fallback[0],
                    row=0,
                    invocation_id=self._fallback[3],
                    weight=1.0,
                )
                self._fallback_emitted = True
        hits = np.flatnonzero(
            (global_rows >= self.offset)
            & ((global_rows - self.offset) % self.period == 0)
        )
        for i in hits:
            i = int(i)
            row = int(global_rows[i])
            group = (row - self.offset) // self.period
            if self._fallback_emitted:
                self._record(
                    "retract",
                    group="period0",
                    kernel_name=self._fallback[0],
                    row=0,
                    invocation_id=self._fallback[3],
                    weight=1.0,
                )
                self._fallback_emitted = False
            pick = (
                chunk.kernel_name_of_row(i),
                int(chunk.kernel_id[i]),
                row,
                int(chunk.invocation_id[i]),
            )
            self._picks[group] = pick
            if self.context.collect_events:
                self._record(
                    "emit",
                    group=f"period{group}",
                    kernel_name=pick[0],
                    row=row,
                    invocation_id=pick[3],
                    weight=0.0,  # 1/len(picks) only known at finalize
                )

    def _finalize(self) -> SampleSelection:
        require(
            self.rows_seen > 0, "stream observed no invocations", StreamingError
        )
        if self._picks:
            ordered = [self._picks[g] for g in sorted(self._picks)]
            groups = sorted(self._picks)
        else:
            require(
                self._fallback is not None,
                "feed never delivered row 0; periodic fallback is undefined",
                StreamingError,
            )
            ordered = [self._fallback]
            groups = [0]
        weight = 1.0 / len(ordered)
        representatives = tuple(
            Representative(
                kernel_name=name,
                kernel_id=kernel_id,
                invocation_id=invocation_id,
                row=row,
                weight=weight,
                group=f"period{i}",
                group_size=min(self.period, self.rows_seen),
            )
            for i, (name, kernel_id, row, invocation_id) in zip(groups, ordered)
        )
        return SampleSelection(
            workload=self._workload,
            method="periodic",
            representatives=representatives,
            total_instructions=self._raw_sum,
            num_invocations=self.rows_seen,
        )
