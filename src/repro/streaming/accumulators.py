"""Online per-kernel statistics and bounded retained samples.

:class:`KernelAccumulators` holds the O(kernels) half of the streaming
stratifier: exact integer count/sum/min/max per kernel plus a Welford
(Chan parallel-merge) mean/M2 pair for the incremental coefficient of
variation. Integer fields are exact over the whole stream regardless of
chunking; the Welford CoV is exact up to float rounding and is only
consulted for kernels whose reservoir overflowed — kernels retained in
full have their CoV recomputed at finalize with the same two-pass
segment reductions the batch path uses, which is what keeps the batch
driver byte-identical.

:class:`ReservoirStore` holds the O(reservoir) half: per-kernel retained
invocations. Unbounded (``capacity=None``) it keeps everything — the
batch driver's mode. Bounded it runs Algorithm R per kernel with a
deterministic per-kernel generator seeded from the workload and kernel
name, drawing exactly one variate per post-capacity arrival in arrival
order — so the retained sample is a pure function of the per-kernel
arrival sequence, invariant to chunk sizes and chunk interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.observability import metrics
from repro.utils.seeding import rng_for

_INT64_MAX = np.iinfo(np.int64).max
_INT64_MIN = np.iinfo(np.int64).min


@dataclass
class ChunkStats:
    """Per-kernel segment reductions of one chunk, ready to merge."""

    counts: np.ndarray  # int64
    insn_sum: np.ndarray  # int64, clamped instruction counts
    raw_sum: np.ndarray  # int64, unclamped instruction counts
    bad: np.ndarray  # int64, non-positive counts clamped to 1
    min_insn: np.ndarray  # int64, clamped
    max_insn: np.ndarray  # int64, clamped
    mean: np.ndarray  # float64, clamped
    m2: np.ndarray  # float64, clamped sum of squared deviations
    max_cta: np.ndarray  # int64


class KernelAccumulators:
    """Growable per-kernel accumulator table, merged vectorized per chunk.

    Kernels are keyed by name in first-seen order; ``kernel_id`` records
    the profile-table id the kernel first appeared under, which defines
    the canonical (batch-compatible) finalize order.
    """

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self.names: list[str] = []
        self.kernel_id: list[int] = []
        n = 0
        self.count = np.zeros(n, dtype=np.int64)
        self.insn_sum = np.zeros(n, dtype=np.int64)
        self.raw_sum = np.zeros(n, dtype=np.int64)
        self.bad = np.zeros(n, dtype=np.int64)
        self.min_insn = np.zeros(n, dtype=np.int64)
        self.max_insn = np.zeros(n, dtype=np.int64)
        self.mean = np.zeros(n, dtype=np.float64)
        self.m2 = np.zeros(n, dtype=np.float64)
        self.max_cta = np.zeros(n, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.names)

    def _grow_to(self, n: int) -> None:
        old = len(self.count)
        if n <= old:
            return
        size = max(n, old * 2, 16)

        def grown(arr: np.ndarray, fill: object) -> np.ndarray:
            out = np.full(size, fill, dtype=arr.dtype)
            out[:old] = arr
            return out

        self.count = grown(self.count, 0)
        self.insn_sum = grown(self.insn_sum, 0)
        self.raw_sum = grown(self.raw_sum, 0)
        self.bad = grown(self.bad, 0)
        self.min_insn = grown(self.min_insn, _INT64_MAX)
        self.max_insn = grown(self.max_insn, _INT64_MIN)
        self.mean = grown(self.mean, 0.0)
        self.m2 = grown(self.m2, 0.0)
        self.max_cta = grown(self.max_cta, _INT64_MIN)

    def slots_for(
        self, kernel_names: tuple[str, ...], chunk_kernel_ids: np.ndarray
    ) -> np.ndarray:
        """Accumulator slots for the chunk's present kernels, registering
        kernels seen for the first time (recording their chunk id)."""
        slots = np.empty(len(chunk_kernel_ids), dtype=np.int64)
        for i, kid in enumerate(chunk_kernel_ids):
            name = kernel_names[int(kid)]
            slot = self._index.get(name)
            if slot is None:
                slot = len(self.names)
                self._index[name] = slot
                self.names.append(name)
                self.kernel_id.append(int(kid))
                self._grow_to(slot + 1)
            slots[i] = slot
        return slots

    def merge(self, slots: np.ndarray, stats: ChunkStats) -> None:
        """Fold one chunk's per-kernel reductions in (Chan merge for M2)."""
        n_a = self.count[slots].astype(np.float64)
        n_b = stats.counts.astype(np.float64)
        n = n_a + n_b
        delta = stats.mean - self.mean[slots]
        self.mean[slots] += delta * n_b / n
        self.m2[slots] += stats.m2 + delta * delta * n_a * n_b / n
        self.count[slots] += stats.counts
        self.insn_sum[slots] += stats.insn_sum
        self.raw_sum[slots] += stats.raw_sum
        self.bad[slots] += stats.bad
        self.min_insn[slots] = np.minimum(self.min_insn[slots], stats.min_insn)
        self.max_insn[slots] = np.maximum(self.max_insn[slots], stats.max_insn)
        self.max_cta[slots] = np.maximum(self.max_cta[slots], stats.max_cta)

    def welford_cov(self, slot: int) -> float:
        """Population CoV from the running mean/M2 (full-stream, online).

        Matches :func:`repro.utils.stats.coefficient_of_variation`
        semantics on degenerate inputs: <= 1 observation or an all-zero
        kernel reduce to 0.
        """
        count = int(self.count[slot])
        if count <= 1:
            return 0.0
        std = float(np.sqrt(self.m2[slot] / count))
        mean = float(self.mean[slot])
        if mean == 0.0:
            return 0.0 if std == 0.0 else float("inf")
        return std / abs(mean)

    def total_instructions(self) -> int:
        """Exact raw instruction total over everything observed."""
        return int(self.raw_sum[: len(self.names)].sum())

    def clamped_total(self) -> int:
        """Exact clamped instruction total (the stratum-weight denominator)."""
        return int(self.insn_sum[: len(self.names)].sum())


@dataclass
class _Reservoir:
    """One kernel's retained invocations."""

    capacity: int | None
    # Unbounded mode: chunk pieces appended per observe.
    pieces: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=list
    )
    # Bounded mode: fixed-size columns plus the arrival index per slot.
    row: np.ndarray | None = None
    invocation_id: np.ndarray | None = None
    insn_raw: np.ndarray | None = None
    cta: np.ndarray | None = None
    arrival: np.ndarray | None = None
    filled: int = 0
    seen: int = 0
    replaced: int = 0
    rng: np.random.Generator | None = None


class ReservoirStore:
    """Per-kernel retained samples (everything, or an Algorithm-R sketch)."""

    def __init__(self, workload: str, capacity: int | None = None):
        self.workload = workload
        self.capacity = capacity
        self._reservoirs: dict[int, _Reservoir] = {}

    @property
    def bounded(self) -> bool:
        return self.capacity is not None

    def _get(self, slot: int) -> _Reservoir:
        reservoir = self._reservoirs.get(slot)
        if reservoir is None:
            reservoir = self._reservoirs[slot] = _Reservoir(self.capacity)
            if self.bounded:
                cap = self.capacity
                reservoir.row = np.zeros(cap, dtype=np.int64)
                reservoir.invocation_id = np.zeros(cap, dtype=np.int64)
                reservoir.insn_raw = np.zeros(cap, dtype=np.int64)
                reservoir.cta = np.zeros(cap, dtype=np.int64)
                reservoir.arrival = np.zeros(cap, dtype=np.int64)
        return reservoir

    def append(
        self,
        slot: int,
        kernel_name: str,
        rows: np.ndarray,
        invocation_id: np.ndarray,
        insn_raw: np.ndarray,
        cta: np.ndarray,
    ) -> None:
        """Fold one kernel's chunk segment in (arrival order)."""
        reservoir = self._get(slot)
        m = len(rows)
        if not self.bounded:
            reservoir.pieces.append((rows, invocation_id, insn_raw, cta))
            reservoir.seen += m
            reservoir.filled += m
            return
        cap = self.capacity
        start = reservoir.seen
        fill = max(0, min(cap - start, m))
        if fill:
            end = start + fill
            reservoir.row[start:end] = rows[:fill]
            reservoir.invocation_id[start:end] = invocation_id[:fill]
            reservoir.insn_raw[start:end] = insn_raw[:fill]
            reservoir.cta[start:end] = cta[:fill]
            reservoir.arrival[start:end] = np.arange(start, end)
            reservoir.filled = end
        if fill < m:
            # Algorithm R over the post-capacity arrivals: one uniform
            # draw on [0, arrival] per item, replacing slot j when j < cap.
            # Drawn in arrival order from a per-kernel generator, so the
            # retained set is chunk-boundary invariant.
            if reservoir.rng is None:
                reservoir.rng = rng_for(
                    "streaming-reservoir", self.workload, kernel_name
                )
            arrivals = np.arange(start + fill, start + m, dtype=np.int64)
            j = reservoir.rng.integers(0, arrivals + 1)
            keep = j < cap
            if np.any(keep):
                targets = j[keep]
                source = fill + np.flatnonzero(keep)
                # Later arrivals overwrite earlier ones landing on the
                # same slot; resolve duplicates to the last occurrence
                # explicitly (fancy-assignment order is unspecified).
                reversed_targets = targets[::-1]
                unique, first = np.unique(reversed_targets, return_index=True)
                last = len(targets) - 1 - first
                reservoir.row[unique] = rows[source[last]]
                reservoir.invocation_id[unique] = invocation_id[source[last]]
                reservoir.insn_raw[unique] = insn_raw[source[last]]
                reservoir.cta[unique] = cta[source[last]]
                reservoir.arrival[unique] = arrivals[keep][last]
                reservoir.replaced += int(np.count_nonzero(keep))
                metrics.inc("streaming.evictions", int(np.count_nonzero(keep)))
        reservoir.seen += m

    def complete(self, slot: int) -> bool:
        """True when every observed invocation of the kernel is retained."""
        reservoir = self._reservoirs.get(slot)
        if reservoir is None:
            return True
        return not self.bounded or reservoir.seen <= self.capacity

    def retained(
        self, slot: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Retained (rows, invocation ids, raw insn, cta), chronological."""
        reservoir = self._reservoirs[slot]
        if not self.bounded:
            pieces = reservoir.pieces
            if len(pieces) == 1:
                return pieces[0]
            return tuple(
                np.concatenate([piece[i] for piece in pieces]) for i in range(4)
            )
        n = reservoir.filled
        order = np.argsort(reservoir.arrival[:n], kind="stable")
        return (
            reservoir.row[:n][order],
            reservoir.invocation_id[:n][order],
            reservoir.insn_raw[:n][order],
            reservoir.cta[:n][order],
        )

    def retained_count(self, slot: int) -> int:
        reservoir = self._reservoirs.get(slot)
        return 0 if reservoir is None else reservoir.filled

    def resident_rows(self) -> int:
        """Rows currently retained across all kernels."""
        return sum(r.filled for r in self._reservoirs.values())
