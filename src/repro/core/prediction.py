"""Performance prediction from representative invocations (Section III-D).

Sieve predicts application IPC as the weighted *harmonic* mean of the
representatives' IPC values (weights = instruction-count shares), then
converts to cycles by dividing the workload's known total instruction count
by the predicted IPC. The CPI-domain weighted *arithmetic* mean is the
algebraically identical dual and is provided for completeness (and tested
for equality).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import PredictionError
from repro.utils.stats import weighted_arithmetic_mean, weighted_harmonic_mean
from repro.utils.validation import require


@dataclass(frozen=True)
class PredictionResult:
    """A sampling method's application-level performance prediction.

    ``contributions`` decomposes ``predicted_cycles`` into one signed
    per-representative term (aligned with the selection's representative
    order): for Sieve this is ``N * w_i / IPC_i`` (the sensitivity basis
    of the weighted-harmonic-mean predictor), for PKS
    ``group_size_i * cycles_i``, and for the statistical baselines the
    Horvitz-Thompson per-sample term. The terms sum to
    ``predicted_cycles`` up to float reassociation, which is what the
    error-attribution layer (:mod:`repro.observability.attribution`)
    builds on. Empty for predictors that provide no decomposition.
    """

    workload: str
    method: str
    predicted_cycles: float
    predicted_ipc: float
    num_representatives: int
    contributions: tuple[float, ...] = ()

    def error_against(self, measured_cycles: int) -> float:
        """The paper's error metric: |predicted - measured| / measured."""
        require(measured_cycles > 0, "measured cycle count must be positive")
        return abs(self.predicted_cycles - measured_cycles) / measured_cycles


def predict_ipc(rep_ipc: np.ndarray, weights: np.ndarray) -> float:
    """Weighted harmonic mean IPC: ``1 / sum(w_i / IPC_i)``."""
    return weighted_harmonic_mean(rep_ipc, weights)


def predict_cycles(total_instructions: int, predicted_ipc: float) -> float:
    """Cycles = known total instruction count / predicted IPC."""
    require(
        total_instructions > 0,
        "total instruction count must be positive",
        PredictionError,
    )
    require(predicted_ipc > 0, "IPC must be positive", PredictionError)
    return total_instructions / predicted_ipc


def predict_cycles_from_cpi(
    total_instructions: int, rep_cpi: np.ndarray, weights: np.ndarray
) -> float:
    """CPI-domain dual: cycles = total instructions x weighted-mean CPI."""
    require(total_instructions > 0, "total instruction count must be positive")
    return total_instructions * weighted_arithmetic_mean(rep_cpi, weights)
