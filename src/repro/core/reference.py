"""Retained scalar reference implementations of the vectorized hot paths.

The profile-side math (stratify/CoV, KDE splits, golden-cycle alignment,
the harmonic-mean predictor, PKS cluster bookkeeping) runs as grouped
numpy array ops since the vectorization pass. These are the *pre-
vectorization* per-kernel / per-row Python loops, kept verbatim (minus
telemetry emission) for two reasons:

* the hypothesis property tests in
  ``tests/core/test_vectorized_reference.py`` pin every vectorized path
  equal to its scalar reference across methods x workloads x caps;
* ``scripts/scale_smoke.py`` times them against the vectorized paths on
  a cap=100k synthetic profile, turning the speedup into a pinned,
  regression-gated number (``BENCH_scale.json``).

Nothing in the production pipeline calls this module.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SieveConfig
from repro.core.kde import kde_strata
from repro.core.prediction import PredictionResult, predict_cycles, predict_ipc
from repro.core.stratify import Stratum
from repro.core.tiers import classify_invocations
from repro.core.types import SampleSelection
from repro.evaluation.imputation import (
    kernel_mean_cycles,
    kernel_mean_ipc,
    measured_ipc_or_none,
)
from repro.gpu.hardware import WorkloadMeasurement
from repro.profiling.table import ProfileTable
from repro.utils.seeding import rng_for
from repro.utils.stats import coefficient_of_variation
from repro.workloads.spec import Tier


def stratify_table_scalar(
    table: ProfileTable, config: SieveConfig
) -> list[Stratum]:
    """Pre-vectorization ``stratify_table``: one pass per kernel.

    ``rows_for_kernel`` scans the whole kernel-id column once per kernel,
    which is the O(rows x kernels) behaviour the grouped implementation
    replaced.
    """
    strata: list[Stratum] = []
    for kernel_id in range(table.num_kernels):
        rows = table.rows_for_kernel(kernel_id)
        if len(rows) == 0:
            continue
        insn = table.insn_count[rows]
        bad = insn <= 0
        if bad.any():
            insn = np.where(bad, 1, insn)
        classification = classify_invocations(insn, config.theta)
        if classification.tier in (Tier.TIER1, Tier.TIER2):
            groups = [np.arange(len(rows))]
        else:
            groups = kde_strata(
                insn,
                config.theta,
                grid_points=config.kde_grid_points,
                bandwidth_scale=config.kde_bandwidth_scale,
            )
        for index, group in enumerate(groups):
            order = np.sort(group)
            member_rows = rows[order]
            member_insn = insn[order]
            strata.append(
                Stratum(
                    kernel_id=kernel_id,
                    kernel_name=table.kernel_names[kernel_id],
                    tier=classification.tier,
                    index=index,
                    rows=member_rows,
                    insn_total=int(member_insn.sum()),
                    insn_cov=coefficient_of_variation(member_insn),
                )
            )
    return strata


def split_by_boundaries_scalar(
    values: np.ndarray, boundaries: np.ndarray
) -> list[np.ndarray]:
    """Pre-vectorization KDE split: one ``flatnonzero`` scan per bin."""
    if len(boundaries) == 0:
        return [np.arange(len(values))]
    bins = np.digitize(values, boundaries)
    return [np.flatnonzero(bins == b) for b in np.unique(bins)]


def cycles_in_table_order_scalar(
    table: ProfileTable, measurement: WorkloadMeasurement
) -> np.ndarray:
    """Pre-vectorization golden-cycle alignment: per-kernel row scans."""
    cycles = np.full(len(table), np.nan, dtype=np.float64)
    for kernel_id, kernel_name in enumerate(table.kernel_names):
        rows = table.rows_for_kernel(kernel_id)
        if len(rows) == 0:
            continue
        per_kernel = measurement.per_kernel.get(kernel_name)
        if per_kernel is None:
            continue
        ids = table.invocation_id[rows]
        valid = (ids >= 0) & (ids < len(per_kernel.cycles))
        values = np.full(len(rows), np.nan)
        values[valid] = per_kernel.cycles[ids[valid]].astype(np.float64)
        values[values <= 0] = np.nan
        cycles[rows] = values

    bad = ~np.isfinite(cycles)
    if bad.any():
        for kernel_id, kernel_name in enumerate(table.kernel_names):
            rows = table.rows_for_kernel(kernel_id)
            kernel_bad = rows[bad[rows]] if len(rows) else rows
            if len(kernel_bad) == 0:
                continue
            fallback = kernel_mean_cycles(kernel_name, measurement)
            if fallback is not None:
                cycles[kernel_bad] = fallback
        still_bad = ~np.isfinite(cycles)
        if still_bad.any():
            finite = cycles[~still_bad]
            cycles[still_bad] = float(finite.mean()) if len(finite) else 0.0
    return cycles


def sieve_predict_scalar(
    selection: SampleSelection, measurement: WorkloadMeasurement
) -> PredictionResult:
    """Pre-vectorization harmonic-mean predictor: one lookup per rep."""
    reps = selection.representatives
    ipc = np.empty(len(reps), dtype=np.float64)
    missing: list[int] = []
    for i, rep in enumerate(reps):
        value = measured_ipc_or_none(rep, measurement)
        if value is None:
            value = kernel_mean_ipc(rep.kernel_name, measurement)
            if value is None:
                missing.append(i)
                continue
        ipc[i] = value

    if missing:
        usable = [i for i in range(len(reps)) if i not in set(missing)]
        if not usable:
            raise ValueError("no representative has a usable measurement")
        fallback = float(ipc[usable].mean())
        for i in missing:
            ipc[i] = fallback

    weights = np.array([r.weight for r in reps], dtype=np.float64)
    if not np.isfinite(weights).all() or weights.sum() <= 0:
        weights = np.full(len(reps), 1.0 / len(reps))
    predicted_ipc = predict_ipc(ipc, weights)
    normalized = weights / weights.sum()
    contributions = selection.total_instructions * normalized / ipc
    return PredictionResult(
        workload=selection.workload,
        method=selection.method,
        predicted_cycles=predict_cycles(
            selection.total_instructions, predicted_ipc
        ),
        predicted_ipc=predicted_ipc,
        num_representatives=len(reps),
        contributions=tuple(float(c) for c in contributions),
    )


def pks_representative_rows_scalar(
    table: ProfileTable,
    projected: np.ndarray,
    labels: np.ndarray,
    centroids: np.ndarray,
    policy: str,
) -> tuple[list[int], list[np.ndarray]]:
    """Pre-vectorization PKS cluster bookkeeping: one scan per cluster."""
    rows: list[int] = []
    members: list[np.ndarray] = []
    for cluster in range(len(centroids)):
        cluster_rows = np.flatnonzero(labels == cluster)
        if len(cluster_rows) == 0:
            continue
        if policy == "first":
            row = int(cluster_rows[0])
        elif policy == "random":
            rng = rng_for("pks-select", table.workload, cluster, len(centroids))
            row = int(cluster_rows[rng.integers(len(cluster_rows))])
        else:  # centroid
            deltas = projected[cluster_rows] - centroids[cluster]
            row = int(
                cluster_rows[np.argmin(np.einsum("ij,ij->i", deltas, deltas))]
            )
        rows.append(row)
        members.append(cluster_rows)
    return rows, members
