"""1-D Gaussian kernel density estimation and valley-based stratification.

Section III-B: Tier-3 kernels are further stratified with Kernel Density
Estimation so that (1) the number of strata is minimized and (2) the
instruction-count CoV within every stratum stays below θ. We estimate the
density of *log* instruction counts (invocation sizes are ratio-scaled),
split the population at density valleys, and recursively re-split any
stratum whose CoV still exceeds θ — falling back to a median split when the
density is unimodal, which guarantees termination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.observability import metrics, span
from repro.utils.errors import SelectionError
from repro.utils.segments import Segments
from repro.utils.stats import coefficient_of_variation
from repro.utils.validation import require


@dataclass(frozen=True)
class GaussianKDE1D:
    """Gaussian KDE with Scott's-rule bandwidth.

    >>> kde = GaussianKDE1D.fit(np.array([1.0, 1.1, 5.0, 5.2]))
    >>> float(kde.density(np.array([1.05]))) > float(kde.density(np.array([3.0])))
    True
    """

    samples: np.ndarray
    bandwidth: float

    @classmethod
    def fit(
        cls, samples: np.ndarray, bandwidth_scale: float = 1.0
    ) -> "GaussianKDE1D":
        """Fit a KDE with bandwidth ``scale * 1.06 sigma n^(-1/5)``."""
        samples = np.asarray(samples, dtype=np.float64)
        require(len(samples) >= 1, "KDE needs at least one sample", SelectionError)
        require(
            bool(np.all(np.isfinite(samples))),
            "KDE samples must be finite",
            SelectionError,
        )
        require(
            bandwidth_scale > 0, "bandwidth scale must be positive", SelectionError
        )
        sigma = float(samples.std())
        n = len(samples)
        bandwidth = 1.06 * sigma * n ** (-1.0 / 5.0) * bandwidth_scale
        if bandwidth <= 0:  # degenerate: all samples identical
            bandwidth = max(abs(float(samples[0])), 1.0) * 1e-6
        return cls(samples=samples, bandwidth=bandwidth)

    def density(self, points: np.ndarray) -> np.ndarray:
        """Evaluate the density estimate at ``points``."""
        points = np.asarray(points, dtype=np.float64)
        z = (points[:, None] - self.samples[None, :]) / self.bandwidth
        kernel = np.exp(-0.5 * z * z)
        norm = len(self.samples) * self.bandwidth * math.sqrt(2.0 * math.pi)
        return kernel.sum(axis=1) / norm

    def grid(self, points: int) -> np.ndarray:
        """An evaluation grid covering the samples plus 3 bandwidths."""
        lo = float(self.samples.min()) - 3.0 * self.bandwidth
        hi = float(self.samples.max()) + 3.0 * self.bandwidth
        return np.linspace(lo, hi, points)

    def valley_points(self, grid_points: int = 512) -> np.ndarray:
        """Locations of local density minima (stratum boundaries)."""
        grid = self.grid(grid_points)
        dens = self.density(grid)
        interior = np.flatnonzero(
            (dens[1:-1] < dens[:-2]) & (dens[1:-1] <= dens[2:])
        )
        return grid[interior + 1]


def _split_by_boundaries(
    values: np.ndarray, boundaries: np.ndarray
) -> list[np.ndarray]:
    """Partition indices of ``values`` by the boundary points.

    One stable argsort of the bin labels instead of one ``flatnonzero``
    scan per occupied bin (the scalar original survives as
    :func:`repro.core.reference.split_by_boundaries_scalar`); groups come
    back in ascending bin order with ascending indices inside each group,
    exactly like the per-bin scans produced.
    """
    if len(boundaries) == 0:
        return [np.arange(len(values))]
    bins = np.digitize(values, boundaries)
    segments = Segments.group_by(bins)
    return [segments.rows(i) for i in range(len(segments))]


def _median_split(values: np.ndarray, indices: np.ndarray) -> list[np.ndarray]:
    """Fallback split: halve the group at its median value."""
    member_values = values[indices]
    median = float(np.median(member_values))
    low = indices[member_values <= median]
    high = indices[member_values > median]
    if len(low) == 0 or len(high) == 0:
        # All values equal to the median: split by position instead.
        half = len(indices) // 2
        low, high = indices[:half], indices[half:]
    return [low, high]


def kde_strata(
    insn_count: np.ndarray,
    theta: float,
    grid_points: int = 512,
    bandwidth_scale: float = 1.0,
) -> list[np.ndarray]:
    """Stratify one kernel's invocations so each stratum's CoV <= θ.

    Returns a list of index arrays into ``insn_count``. Strata are ordered
    by ascending instruction count. The KDE operates on log instruction
    counts; any stratum still exceeding θ is recursively re-stratified,
    with a median split as the unimodal fallback, so the CoV bound is a
    postcondition (except for single-invocation strata, which trivially
    satisfy it).
    """
    insn_count = np.asarray(insn_count, dtype=np.float64)
    require(
        bool(np.all(insn_count > 0)),
        "instruction counts must be positive (run "
        "repro.robustness.validate.repair_table on dirty profiles)",
        SelectionError,
    )
    log_values = np.log(insn_count)

    def refine(indices: np.ndarray, allow_kde: bool) -> list[np.ndarray]:
        if len(indices) <= 1:
            return [indices]
        if coefficient_of_variation(insn_count[indices]) <= theta:
            return [indices]
        groups: list[np.ndarray] = []
        if allow_kde:
            # Fit on an evenly strided subsample for very large populations;
            # the boundary set barely moves and the cost drops from O(n^2).
            fit_values = np.sort(log_values[indices])
            if len(fit_values) > 4096:
                stride = -(-len(fit_values) // 4096)
                fit_values = fit_values[::stride]
            kde = GaussianKDE1D.fit(fit_values, bandwidth_scale)
            boundaries = kde.valley_points(grid_points)
            parts = _split_by_boundaries(log_values[indices], boundaries)
            metrics.inc("sieve.kde.fits")
            if len(parts) > 1:
                groups = [indices[part] for part in parts]
        if not groups:
            metrics.inc("sieve.kde.median_splits")
            groups = _median_split(log_values, indices)
        refined: list[np.ndarray] = []
        for group in groups:
            refined.extend(refine(group, allow_kde=len(group) < len(indices)))
        return refined

    with span("sieve.kde", samples=len(insn_count)):
        strata = refine(np.arange(len(insn_count)), allow_kde=True)
        strata.sort(key=lambda idx: float(insn_count[idx].mean()))
        return strata
