"""Representative kernel invocation selection (Section III-C).

Paper defaults: for Tier-1 strata the first-chronological invocation; for
Tier-2/Tier-3 strata the first-chronological invocation with the stratum's
*most dominant* CTA size (so the representative occupies the hardware the
way most of the stratum does). ``max_cta``, ``first``, ``random`` and
``centroid`` are alternative policies kept for the paper's stated ablation
("we also considered selecting the invocation with the maximum CTA size
... but we found this to be less accurate").

Policies are expressed over a stratum's *member columns* (instruction
count and CTA size per member, chronological order) and return a member
position — the same helper serves the batch path, which gathers member
columns from the profile table, and the streaming path, which holds them
in the stratifier's retained sample.
"""

from __future__ import annotations

import numpy as np

from repro.core.stratify import Stratum
from repro.observability import metrics
from repro.profiling.table import ProfileTable
from repro.utils.errors import SelectionError
from repro.utils.seeding import rng_for
from repro.utils.validation import require
from repro.workloads.spec import Tier


def _first_position(member_cta: np.ndarray, cta: int) -> int:
    matches = np.flatnonzero(member_cta == cta)
    require(
        len(matches) > 0,
        "no invocation with the requested CTA size",
        SelectionError,
    )
    return int(matches[0])


def representative_position(
    tier: Tier,
    policy: str,
    *,
    workload: str,
    label: str,
    member_insn: np.ndarray,
    member_cta: np.ndarray,
    record_metrics: bool = True,
) -> int:
    """Pick one member position for a stratum under ``policy``.

    ``member_insn``/``member_cta`` are the stratum members' raw
    instruction counts and CTA sizes in chronological order, so position
    0 is the first-chronological invocation. ``record_metrics=False``
    suppresses the selection counter for speculative picks (streaming
    event refresh) so only committed selections are counted.
    """
    if record_metrics:
        metrics.inc("sieve.selection.rows", policy=policy)
    if tier is Tier.TIER1 or policy == "first":
        return 0
    if policy == "dominant_cta":
        # Modal CTA size; np.unique ascends, so ties break toward the
        # smaller size.
        sizes, counts = np.unique(member_cta, return_counts=True)
        return _first_position(member_cta, int(sizes[np.argmax(counts)]))
    if policy == "max_cta":
        return _first_position(member_cta, int(member_cta.max()))
    if policy == "random":
        rng = rng_for("sieve-select", workload, label)
        return int(rng.integers(len(member_cta)))
    if policy == "centroid":
        values = np.asarray(member_insn, dtype=np.float64)
        distance = np.abs(values - values.mean())
        return int(np.argmin(distance))
    raise ValueError(f"unknown selection policy {policy!r}")


def select_representative_row(
    table: ProfileTable, stratum: Stratum, policy: str
) -> int:
    """Select one representative row for ``stratum`` under ``policy``.

    Rows within a stratum are stored chronologically, so "first" selections
    are simply the smallest row index among candidates.
    """
    if stratum.tier is Tier.TIER1 or policy == "first":
        metrics.inc("sieve.selection.rows", policy=policy)
        return int(stratum.rows[0])
    position = representative_position(
        stratum.tier,
        policy,
        workload=table.workload,
        label=stratum.label,
        member_insn=table.insn_count[stratum.rows],
        member_cta=table.cta_size[stratum.rows],
    )
    return int(stratum.rows[position])
