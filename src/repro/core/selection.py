"""Representative kernel invocation selection (Section III-C).

Paper defaults: for Tier-1 strata the first-chronological invocation; for
Tier-2/Tier-3 strata the first-chronological invocation with the stratum's
*most dominant* CTA size (so the representative occupies the hardware the
way most of the stratum does). ``max_cta``, ``first``, ``random`` and
``centroid`` are alternative policies kept for the paper's stated ablation
("we also considered selecting the invocation with the maximum CTA size
... but we found this to be less accurate").
"""

from __future__ import annotations

import numpy as np

from repro.core.stratify import Stratum
from repro.observability import metrics
from repro.profiling.table import ProfileTable
from repro.utils.errors import SelectionError
from repro.utils.seeding import rng_for
from repro.utils.validation import require
from repro.workloads.spec import Tier


def _first_with_cta(table: ProfileTable, stratum: Stratum, cta: int) -> int:
    member_cta = table.cta_size[stratum.rows]
    candidates = stratum.rows[member_cta == cta]
    require(
        len(candidates) > 0,
        "no invocation with the requested CTA size",
        SelectionError,
    )
    return int(candidates[0])


def _dominant_cta(table: ProfileTable, stratum: Stratum) -> int:
    """The stratum's modal CTA size (ties broken toward the smaller size)."""
    sizes, counts = np.unique(table.cta_size[stratum.rows], return_counts=True)
    return int(sizes[np.argmax(counts)])


def select_representative_row(
    table: ProfileTable, stratum: Stratum, policy: str
) -> int:
    """Select one representative row for ``stratum`` under ``policy``.

    Rows within a stratum are stored chronologically, so "first" selections
    are simply the smallest row index among candidates.
    """
    metrics.inc("sieve.selection.rows", policy=policy)
    if stratum.tier is Tier.TIER1 or policy == "first":
        return int(stratum.rows[0])
    if policy == "dominant_cta":
        return _first_with_cta(table, stratum, _dominant_cta(table, stratum))
    if policy == "max_cta":
        max_cta = int(table.cta_size[stratum.rows].max())
        return _first_with_cta(table, stratum, max_cta)
    if policy == "random":
        rng = rng_for("sieve-select", table.workload, stratum.label)
        return int(stratum.rows[rng.integers(len(stratum.rows))])
    if policy == "centroid":
        member_insn = table.insn_count[stratum.rows].astype(np.float64)
        distance = np.abs(member_insn - member_insn.mean())
        return int(stratum.rows[np.argmin(distance)])
    raise ValueError(f"unknown selection policy {policy!r}")
