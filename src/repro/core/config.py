"""Sieve configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require

#: Paper default: "a threshold of θ = 0.4 strikes a good balance between
#: accuracy and speed" (Section III-B).
DEFAULT_THETA = 0.4

#: Selection policies for Tier-2/Tier-3 strata. The paper's default picks
#: the first-chronological invocation with the stratum's dominant CTA size;
#: "max_cta" is the alternative the authors tried and found less accurate;
#: "first", "random" and "centroid" exist for ablation studies.
SELECTION_POLICIES = ("dominant_cta", "max_cta", "first", "random", "centroid")


@dataclass(frozen=True)
class SieveConfig:
    """Tunable parameters of the Sieve pipeline."""

    theta: float = DEFAULT_THETA
    selection_policy: str = "dominant_cta"
    kde_grid_points: int = 512
    #: Relative bandwidth multiplier on the Scott rule (1.0 = Scott).
    kde_bandwidth_scale: float = 1.0

    def __post_init__(self) -> None:
        require(self.theta > 0, "theta must be positive")
        require(
            self.selection_policy in SELECTION_POLICIES,
            f"selection_policy must be one of {SELECTION_POLICIES}",
        )
        require(self.kde_grid_points >= 16, "kde_grid_points must be >= 16")
        require(self.kde_bandwidth_scale > 0, "bandwidth scale must be positive")
