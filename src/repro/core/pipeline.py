"""End-to-end Sieve pipeline (Figure 1).

``select`` turns a profile table into representative kernel invocations
with weights; ``predict`` combines those representatives' measured (or
simulated) performance into an application-level prediction.

Both stages degrade gracefully on dirty input: ``select`` raises a typed
:class:`SelectionError` only when nothing is selectable, and ``predict``
imputes a kernel-mean (then workload-mean) IPC for representatives whose
measurements are missing, zero or non-finite — emitting a diagnostic per
fallback through :mod:`repro.robustness.diagnostics` — instead of letting
``inf``/``nan`` propagate silently into the predicted cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.robustness.diagnostics as diagnostics
from repro.core.config import SieveConfig
from repro.core.prediction import PredictionResult, predict_cycles, predict_ipc
from repro.core.selection import select_representative_row
from repro.core.stratify import Stratum, stratify_table
from repro.core.types import Representative, SampleSelection
from repro.core.weights import stratum_weights

# Shared imputation ladder (see repro.evaluation.imputation); re-exported
# here because these names predate the shared module.
from repro.evaluation.imputation import kernel_mean_ipc, measured_ipc_or_none
from repro.gpu.hardware import WorkloadMeasurement
from repro.observability import metrics, span
from repro.profiling.table import ProfileTable
from repro.utils.errors import PredictionError, SelectionError
from repro.utils.validation import require

__all__ = [
    "SievePipeline",
    "SieveSelection",
    "kernel_mean_ipc",
    "measured_ipc_or_none",
]

METHOD_NAME = "sieve"


def _gather_measured_ipc(
    reps: tuple[Representative, ...], measurement: WorkloadMeasurement
) -> tuple[np.ndarray, np.ndarray]:
    """Measured IPC per representative, vectorized per kernel.

    Returns ``(ipc, usable)`` where ``usable[i]`` is False for
    representatives whose measurement is absent or degenerate — the same
    predicate as :func:`repro.evaluation.imputation.measured_ipc_or_none`
    (which survives as the scalar reference path), evaluated as one
    gather through the concatenated per-kernel counter arrays instead of
    one dict lookup + two scalar reads per representative.
    """
    n = len(reps)
    ipc = np.empty(n, dtype=np.float64)
    usable = np.zeros(n, dtype=bool)
    offsets: dict[str, tuple[int, int]] = {}
    insn_parts: list[np.ndarray] = []
    cycle_parts: list[np.ndarray] = []
    position = 0
    for kernel_name, kernel in measurement.per_kernel.items():
        offsets[kernel_name] = (position, len(kernel.cycles))
        position += len(kernel.cycles)
        insn_parts.append(kernel.insn_count)
        cycle_parts.append(kernel.cycles)
    if not insn_parts or n == 0:
        return ipc, usable
    insn_all = np.concatenate(insn_parts)
    cycles_all = np.concatenate(cycle_parts)
    absent = (-1, 0)
    located = [offsets.get(rep.kernel_name, absent) for rep in reps]
    offset = np.array([o for o, _ in located], dtype=np.int64)
    size = np.array([s for _, s in located], dtype=np.int64)
    ids = np.array([rep.invocation_id for rep in reps], dtype=np.int64)
    # Match numpy indexing semantics (negative ids wrap) so the
    # vectorized gather is usable for exactly the rows the scalar
    # per-representative lookups were.
    in_range = (offset >= 0) & (ids >= -size) & (ids < size)
    flat = (offset + np.where(ids < 0, ids + size, ids))[in_range]
    insn = insn_all[flat].astype(np.float64)
    cycles = cycles_all[flat].astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        values = insn / cycles
    good = (cycles > 0) & (insn > 0) & np.isfinite(values)
    idx = np.flatnonzero(in_range)
    ipc[idx[good]] = values[good]
    usable[idx[good]] = True
    return ipc, usable


@dataclass(frozen=True)
class SieveSelection(SampleSelection):
    """Sieve's selection, retaining the stratification for analysis."""

    strata: tuple[Stratum, ...] = ()


class SievePipeline:
    """Profile table -> strata -> representatives -> prediction."""

    def __init__(self, config: SieveConfig | None = None):
        self.config = config or SieveConfig()

    def select(self, table: ProfileTable) -> SieveSelection:
        """Stratify ``table`` and pick one representative per stratum."""
        require(len(table) > 0, "profile table is empty", SelectionError)
        strata = stratify_table(table, self.config)
        require(
            len(strata) > 0, "stratification produced no strata", SelectionError
        )
        weights = stratum_weights(strata)
        representatives = []
        with span("sieve.selection", workload=table.workload, strata=len(strata)):
            for stratum, weight in zip(strata, weights):
                row = select_representative_row(
                    table, stratum, self.config.selection_policy
                )
                representatives.append(
                    Representative(
                        kernel_name=stratum.kernel_name,
                        kernel_id=stratum.kernel_id,
                        invocation_id=int(table.invocation_id[row]),
                        row=row,
                        weight=float(weight),
                        group=stratum.label,
                        group_size=stratum.size,
                    )
                )
        metrics.inc("sieve.representatives", len(representatives))
        return SieveSelection(
            workload=table.workload,
            method=METHOD_NAME,
            representatives=tuple(representatives),
            total_instructions=table.total_instructions,
            num_invocations=len(table),
            strata=tuple(strata),
        )

    def predict(
        self, selection: SieveSelection, measurement: WorkloadMeasurement
    ) -> PredictionResult:
        """Predict application cycles from the representatives' performance.

        ``measurement`` supplies per-invocation cycle counts for the
        representative invocations only (conceptually: the output of
        simulating just the selected samples). Representatives whose
        measurement is missing or degenerate get a kernel-mean IPC
        imputed (workload-mean as a last resort), each with a diagnostic;
        only a measurement with *no* usable invocation at all raises
        :class:`PredictionError`.
        """
        with span("sieve.predict", workload=selection.workload):
            reps = selection.representatives
            ipc, usable = _gather_measured_ipc(reps, measurement)
            missing: list[int] = []
            for i in np.flatnonzero(~usable):
                rep = reps[i]
                value = kernel_mean_ipc(rep.kernel_name, measurement)
                if value is not None:
                    metrics.inc("sieve.predict.imputed", reason="kernel_mean")
                    diagnostics.emit(
                        "sieve.predict",
                        f"representative {rep.group} (kernel "
                        f"{rep.kernel_name!r}, invocation "
                        f"{rep.invocation_id}) has no usable measurement; "
                        f"imputed kernel-mean IPC {value:.4g}",
                    )
                    ipc[i] = value
                else:
                    missing.append(int(i))

            if missing:
                usable = [i for i in range(len(reps)) if i not in set(missing)]
                if not usable:
                    raise PredictionError(
                        f"workload {selection.workload!r}: no representative has "
                        "a usable measurement to predict from"
                    )
                fallback = float(ipc[usable].mean())
                for i in missing:
                    ipc[i] = fallback
                    metrics.inc("sieve.predict.imputed", reason="workload_mean")
                    diagnostics.emit(
                        "sieve.predict",
                        f"representative {reps[i].group} (kernel "
                        f"{reps[i].kernel_name!r}) has no measurements at all; "
                        f"imputed workload-mean IPC {fallback:.4g}",
                    )

            weights = np.array([r.weight for r in reps], dtype=np.float64)
            if not np.isfinite(weights).all() or weights.sum() <= 0:
                diagnostics.emit(
                    "sieve.predict",
                    "degenerate representative weights; falling back to uniform",
                )
                weights = np.full(len(reps), 1.0 / len(reps))
            predicted_ipc = predict_ipc(ipc, weights)
            # Per-representative cycle terms: N * w_i / IPC_i. Their sum is
            # the predicted cycle count (up to float reassociation); the
            # attribution layer decomposes prediction error with them.
            normalized = weights / weights.sum()
            contributions = selection.total_instructions * normalized / ipc
            return PredictionResult(
                workload=selection.workload,
                method=selection.method,
                predicted_cycles=predict_cycles(
                    selection.total_instructions, predicted_ipc
                ),
                predicted_ipc=predicted_ipc,
                num_representatives=len(reps),
                contributions=tuple(float(c) for c in contributions),
            )
