"""End-to-end Sieve pipeline (Figure 1).

``select`` turns a profile table into representative kernel invocations
with weights; ``predict`` combines those representatives' measured (or
simulated) performance into an application-level prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SieveConfig
from repro.core.prediction import PredictionResult, predict_cycles, predict_ipc
from repro.core.selection import select_representative_row
from repro.core.stratify import Stratum, stratify_table
from repro.core.types import Representative, SampleSelection
from repro.core.weights import stratum_weights
from repro.gpu.hardware import WorkloadMeasurement
from repro.profiling.table import ProfileTable
from repro.utils.validation import require

METHOD_NAME = "sieve"


@dataclass(frozen=True)
class SieveSelection(SampleSelection):
    """Sieve's selection, retaining the stratification for analysis."""

    strata: tuple[Stratum, ...] = ()


class SievePipeline:
    """Profile table -> strata -> representatives -> prediction."""

    def __init__(self, config: SieveConfig | None = None):
        self.config = config or SieveConfig()

    def select(self, table: ProfileTable) -> SieveSelection:
        """Stratify ``table`` and pick one representative per stratum."""
        require(len(table) > 0, "profile table is empty")
        strata = stratify_table(table, self.config)
        weights = stratum_weights(strata)
        representatives = []
        for stratum, weight in zip(strata, weights):
            row = select_representative_row(table, stratum, self.config.selection_policy)
            representatives.append(
                Representative(
                    kernel_name=stratum.kernel_name,
                    kernel_id=stratum.kernel_id,
                    invocation_id=int(table.invocation_id[row]),
                    row=row,
                    weight=float(weight),
                    group=stratum.label,
                    group_size=stratum.size,
                )
            )
        return SieveSelection(
            workload=table.workload,
            method=METHOD_NAME,
            representatives=tuple(representatives),
            total_instructions=table.total_instructions,
            num_invocations=len(table),
            strata=tuple(strata),
        )

    def predict(
        self, selection: SieveSelection, measurement: WorkloadMeasurement
    ) -> PredictionResult:
        """Predict application cycles from the representatives' performance.

        ``measurement`` supplies per-invocation cycle counts for the
        representative invocations only (conceptually: the output of
        simulating just the selected samples).
        """
        reps = selection.representatives
        ipc = np.array(
            [
                r.measured_insn(measurement) / r.measured_cycles(measurement)
                for r in reps
            ]
        )
        weights = np.array([r.weight for r in reps])
        predicted_ipc = predict_ipc(ipc, weights)
        return PredictionResult(
            workload=selection.workload,
            method=selection.method,
            predicted_cycles=predict_cycles(selection.total_instructions, predicted_ipc),
            predicted_ipc=predicted_ipc,
            num_representatives=len(reps),
        )
