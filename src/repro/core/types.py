"""Sampling output types shared by Sieve and the baselines.

Both Sieve and PKS reduce a workload to a small set of *representative
kernel invocations* with weights; everything downstream (simulation,
performance prediction, speedup accounting) consumes this common shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.hardware import WorkloadMeasurement
from repro.utils.validation import require


@dataclass(frozen=True)
class Representative:
    """One selected kernel invocation.

    ``invocation_id`` is the per-kernel chronological index (the paper's
    kernel invocation ID); ``row`` is the invocation's row in the profile
    table it was selected from; ``weight`` is the representative's relative
    weight under its method's weighting scheme; ``group`` labels the
    stratum/cluster it represents; ``group_size`` is the number of
    invocations it stands in for.
    """

    kernel_name: str
    kernel_id: int
    invocation_id: int
    row: int
    weight: float
    group: str
    group_size: int

    def __post_init__(self) -> None:
        require(self.weight >= 0, "weights must be non-negative")
        require(self.group_size >= 1, "a representative stands for >= 1")

    def measured_cycles(self, measurement: WorkloadMeasurement) -> int:
        """This invocation's golden-reference cycle count."""
        kernel = measurement.per_kernel[self.kernel_name]
        return int(kernel.cycles[self.invocation_id])

    def measured_insn(self, measurement: WorkloadMeasurement) -> int:
        kernel = measurement.per_kernel[self.kernel_name]
        return int(kernel.insn_count[self.invocation_id])


@dataclass(frozen=True)
class SampleSelection:
    """A sampling method's output for one workload."""

    workload: str
    method: str
    representatives: tuple[Representative, ...]
    total_instructions: int
    num_invocations: int

    def __post_init__(self) -> None:
        require(len(self.representatives) >= 1, "selection must be non-empty")
        require(self.num_invocations >= len(self.representatives),
                "more representatives than invocations")

    @property
    def num_representatives(self) -> int:
        return len(self.representatives)

    def sample_cycles(self, measurement: WorkloadMeasurement) -> int:
        """Cycles spent executing (or simulating) just the representatives."""
        return sum(r.measured_cycles(measurement) for r in self.representatives)
