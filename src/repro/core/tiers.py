"""Tier classification of kernel invocation populations (Section III-B).

* **Tier-1** — all invocations of the kernel execute the exact same number
  of instructions;
* **Tier-2** — instruction-count CoV is non-zero but at most θ;
* **Tier-3** — instruction-count CoV exceeds θ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.stats import coefficient_of_variation
from repro.utils.validation import require
from repro.workloads.spec import Tier


@dataclass(frozen=True)
class TierClassification:
    """Tier of one kernel's invocation population."""

    tier: Tier
    cov: float
    num_invocations: int


def classify_invocations(insn_count: np.ndarray, theta: float) -> TierClassification:
    """Classify one kernel's invocations by instruction-count variability."""
    require(theta > 0, "theta must be positive")
    insn_count = np.asarray(insn_count)
    require(len(insn_count) >= 1, "kernel must have at least one invocation")
    cov = coefficient_of_variation(insn_count)
    if np.all(insn_count == insn_count[0]):
        tier = Tier.TIER1
    elif cov <= theta:
        tier = Tier.TIER2
    else:
        tier = Tier.TIER3
    return TierClassification(tier=tier, cov=cov, num_invocations=len(insn_count))
