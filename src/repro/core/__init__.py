"""Sieve: the paper's primary contribution.

Stratified sampling of GPU-compute kernel invocations (Section III):
profile one characteristic (instruction count), tier kernels by
instruction-count CoV against a threshold θ, split high-variability kernels
with 1-D kernel density estimation, pick one representative invocation per
stratum (first-chronological, dominant CTA size), weight strata by
instruction count, and predict application performance as the weighted
harmonic mean of per-representative IPC.
"""

from repro.core.config import SieveConfig
from repro.core.kde import GaussianKDE1D, kde_strata
from repro.core.pipeline import SievePipeline, SieveSelection
from repro.core.prediction import (
    PredictionResult,
    predict_cycles,
    predict_cycles_from_cpi,
    predict_ipc,
)
from repro.core.stratify import Stratum, stratify_table
from repro.core.tiers import TierClassification, classify_invocations
from repro.core.types import Representative, SampleSelection

__all__ = [
    "SieveConfig",
    "GaussianKDE1D",
    "kde_strata",
    "TierClassification",
    "classify_invocations",
    "Stratum",
    "stratify_table",
    "Representative",
    "SampleSelection",
    "SievePipeline",
    "SieveSelection",
    "PredictionResult",
    "predict_ipc",
    "predict_cycles",
    "predict_cycles_from_cpi",
]
