"""Stratification of a profile table (Section III-B).

Each kernel's invocations are classified into tiers; Tier-1 and Tier-2
kernels form a single stratum each, Tier-3 kernels are split with KDE so
the instruction-count CoV within every stratum falls below θ. Every
stratum, by construction, contains invocations of exactly one kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SieveConfig
from repro.observability import metrics, span
from repro.profiling.table import ProfileTable
from repro.utils.validation import require
from repro.workloads.spec import Tier


@dataclass(frozen=True)
class Stratum:
    """A group of same-kernel invocations with similar instruction count."""

    kernel_id: int
    kernel_name: str
    tier: Tier
    index: int  # ordinal among the kernel's strata
    rows: np.ndarray  # profile-table row indices, chronological order
    insn_total: int
    insn_cov: float

    @property
    def label(self) -> str:
        return f"{self.kernel_name}/s{self.index}"

    @property
    def size(self) -> int:
        return len(self.rows)


def stratify_table(table: ProfileTable, config: SieveConfig) -> list[Stratum]:
    """Sieve's stratification of a whole profile table.

    Returns strata grouped per kernel (kernels in id order, strata ordered
    by ascending instruction count within a kernel).

    The batch path is literally the streaming operator driven once: one
    ``observe`` of the whole table (grouped segment reductions into the
    per-kernel accumulators, everything retained) followed by
    ``finalize`` — which, with a complete reservoir, replays the exact
    batch reduceat math, so the output is bit-identical to the historical
    one-shot pass (pinned by the fig3/4/6 goldens). Non-positive
    instruction counts are clamped to 1 with a per-kernel diagnostic, as
    before; :func:`repro.core.reference.stratify_table_scalar` remains
    the scalar oracle.
    """
    require(config.theta > 0, "theta must be positive")
    from repro.streaming.stratify import StreamingStratifier

    with span("sieve.stratify", workload=table.workload, kernels=table.num_kernels):
        stratifier = StreamingStratifier(table.workload, config)
        stratifier.observe(table)
        strata = stratifier.finalize().strata
    metrics.inc("sieve.stratify.strata", len(strata))
    return strata
