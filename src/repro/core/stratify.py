"""Stratification of a profile table (Section III-B).

Each kernel's invocations are classified into tiers; Tier-1 and Tier-2
kernels form a single stratum each, Tier-3 kernels are split with KDE so
the instruction-count CoV within every stratum falls below θ. Every
stratum, by construction, contains invocations of exactly one kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.robustness.diagnostics as diagnostics
from repro.core.config import SieveConfig
from repro.core.kde import kde_strata
from repro.observability import metrics, span
from repro.profiling.table import ProfileTable
from repro.utils.segments import Segments
from repro.utils.stats import coefficient_of_variation
from repro.utils.validation import require
from repro.workloads.spec import Tier


@dataclass(frozen=True)
class Stratum:
    """A group of same-kernel invocations with similar instruction count."""

    kernel_id: int
    kernel_name: str
    tier: Tier
    index: int  # ordinal among the kernel's strata
    rows: np.ndarray  # profile-table row indices, chronological order
    insn_total: int
    insn_cov: float

    @property
    def label(self) -> str:
        return f"{self.kernel_name}/s{self.index}"

    @property
    def size(self) -> int:
        return len(self.rows)


def stratify_table(table: ProfileTable, config: SieveConfig) -> list[Stratum]:
    """Sieve's stratification of a whole profile table.

    Returns strata grouped per kernel (kernels in id order, strata ordered
    by ascending instruction count within a kernel).

    Grouping is one stable argsort of the kernel-id column plus segment
    reductions (:class:`~repro.utils.segments.Segments`) rather than one
    ``rows_for_kernel`` scan per kernel; the per-kernel tier CoV comes
    from ``reduceat`` segment sums. Only Tier-3 kernels still pay a
    per-kernel KDE call. The scalar original is retained as
    :func:`repro.core.reference.stratify_table_scalar`.
    """
    require(config.theta > 0, "theta must be positive")
    strata: list[Stratum] = []
    with span("sieve.stratify", workload=table.workload, kernels=table.num_kernels):
        segments = Segments.group_by(table.kernel_id)
        insn_sorted = segments.gather(table.insn_count)
        # Graceful degradation: non-positive instruction counts (dropped
        # or corrupted counters) would blow up the log-domain KDE and the
        # CoV. Clamp them to 1 for stratification purposes and say so;
        # repro.robustness.validate.repair_table is the lossless fix.
        bad_sorted = insn_sorted <= 0
        bad_per_kernel = np.zeros(len(segments), dtype=np.int64)
        if bad_sorted.any():
            bad_per_kernel = segments.sums(bad_sorted.astype(np.int64))
            insn_sorted = np.where(bad_sorted, 1, insn_sorted)
            metrics.inc("sieve.stratify.clamped_insn", int(bad_sorted.sum()))
        # Segment tier classification: Tier-1 iff min == max (exact on
        # integers), otherwise the instruction-count CoV against theta.
        tier1 = segments.mins(insn_sorted) == segments.maxs(insn_sorted)
        covs = segments.covs(insn_sorted)
        tier3 = ~tier1 & (covs > config.theta)
        # Int64 segment sums are exact, so the per-kernel stratum totals
        # match the historical int(member_insn.sum()) bit for bit.
        sums = segments.sums(insn_sorted)
        for tier, count in (
            (Tier.TIER1, int(np.count_nonzero(tier1))),
            (Tier.TIER2, int(np.count_nonzero(~tier1 & ~tier3))),
            (Tier.TIER3, int(np.count_nonzero(tier3))),
        ):
            if count:
                metrics.inc("sieve.stratify.kernels", count, tier=tier.name)
        kernel_names = table.kernel_names
        for gi in range(len(segments)):
            kernel_id = int(segments.keys[gi])
            kernel_name = kernel_names[kernel_id]
            rows = segments.rows(gi)  # chronological: the argsort is stable
            if bad_per_kernel[gi]:
                diagnostics.emit(
                    "stratify",
                    f"kernel {kernel_name!r}: clamped "
                    f"{int(bad_per_kernel[gi])} non-positive insn counts to 1",
                )
            if not tier3[gi]:
                # Tier-1/2 kernels form exactly one stratum: the whole
                # segment, whose total and CoV are already reduced above.
                metrics.observe("sieve.stratify.stratum_size", len(rows))
                strata.append(
                    Stratum(
                        kernel_id=kernel_id,
                        kernel_name=kernel_name,
                        tier=Tier.TIER1 if tier1[gi] else Tier.TIER2,
                        index=0,
                        rows=rows,
                        insn_total=int(sums[gi]),
                        insn_cov=float(covs[gi]),
                    )
                )
                continue
            insn = insn_sorted[segments.starts[gi] : segments.ends[gi]]
            groups = kde_strata(
                insn,
                config.theta,
                grid_points=config.kde_grid_points,
                bandwidth_scale=config.kde_bandwidth_scale,
            )
            for index, group in enumerate(groups):
                order = np.sort(group)
                member_rows = rows[order]
                member_insn = insn[order]  # clamped view, keeps totals positive
                metrics.observe("sieve.stratify.stratum_size", len(member_rows))
                strata.append(
                    Stratum(
                        kernel_id=kernel_id,
                        kernel_name=kernel_name,
                        tier=Tier.TIER3,
                        index=index,
                        rows=member_rows,
                        insn_total=int(member_insn.sum()),
                        insn_cov=coefficient_of_variation(member_insn),
                    )
                )
    metrics.inc("sieve.stratify.strata", len(strata))
    return strata
