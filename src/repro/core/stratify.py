"""Stratification of a profile table (Section III-B).

Each kernel's invocations are classified into tiers; Tier-1 and Tier-2
kernels form a single stratum each, Tier-3 kernels are split with KDE so
the instruction-count CoV within every stratum falls below θ. Every
stratum, by construction, contains invocations of exactly one kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.robustness.diagnostics as diagnostics
from repro.core.config import SieveConfig
from repro.core.kde import kde_strata
from repro.core.tiers import classify_invocations
from repro.observability import metrics, span
from repro.profiling.table import ProfileTable
from repro.utils.stats import coefficient_of_variation
from repro.workloads.spec import Tier


@dataclass(frozen=True)
class Stratum:
    """A group of same-kernel invocations with similar instruction count."""

    kernel_id: int
    kernel_name: str
    tier: Tier
    index: int  # ordinal among the kernel's strata
    rows: np.ndarray  # profile-table row indices, chronological order
    insn_total: int
    insn_cov: float

    @property
    def label(self) -> str:
        return f"{self.kernel_name}/s{self.index}"

    @property
    def size(self) -> int:
        return len(self.rows)


def stratify_table(table: ProfileTable, config: SieveConfig) -> list[Stratum]:
    """Sieve's stratification of a whole profile table.

    Returns strata grouped per kernel (kernels in id order, strata ordered
    by ascending instruction count within a kernel).
    """
    strata: list[Stratum] = []
    with span("sieve.stratify", workload=table.workload, kernels=table.num_kernels):
        for kernel_id in range(table.num_kernels):
            rows = table.rows_for_kernel(kernel_id)
            if len(rows) == 0:
                continue
            insn = table.insn_count[rows]
            # Graceful degradation: non-positive instruction counts (dropped
            # or corrupted counters) would blow up the log-domain KDE and the
            # CoV. Clamp them to 1 for stratification purposes and say so;
            # repro.robustness.validate.repair_table is the lossless fix.
            bad = insn <= 0
            if bad.any():
                insn = np.where(bad, 1, insn)
                metrics.inc("sieve.stratify.clamped_insn", int(bad.sum()))
                diagnostics.emit(
                    "stratify",
                    f"kernel {table.kernel_names[kernel_id]!r}: clamped "
                    f"{int(bad.sum())} non-positive insn counts to 1",
                )
            classification = classify_invocations(insn, config.theta)
            if classification.tier in (Tier.TIER1, Tier.TIER2):
                groups = [np.arange(len(rows))]
            else:
                groups = kde_strata(
                    insn,
                    config.theta,
                    grid_points=config.kde_grid_points,
                    bandwidth_scale=config.kde_bandwidth_scale,
                )
            metrics.inc("sieve.stratify.kernels", tier=classification.tier.name)
            for index, group in enumerate(groups):
                order = np.sort(group)
                member_rows = rows[order]
                member_insn = insn[order]  # clamped view, keeps totals positive
                metrics.observe("sieve.stratify.stratum_size", len(member_rows))
                strata.append(
                    Stratum(
                        kernel_id=kernel_id,
                        kernel_name=table.kernel_names[kernel_id],
                        tier=classification.tier,
                        index=index,
                        rows=member_rows,
                        insn_total=int(member_insn.sum()),
                        insn_cov=coefficient_of_variation(member_insn),
                    )
                )
    metrics.inc("sieve.stratify.strata", len(strata))
    return strata
