"""Stratum weighting (Section III-C).

A stratum's weight is its share of the workload's total dynamic instruction
count: "Dividing the total instruction count per stratum to the total
instruction count for the entire workload yields the stratum's weight."
"""

from __future__ import annotations

import numpy as np

import repro.robustness.diagnostics as diagnostics
from repro.core.stratify import Stratum
from repro.utils.errors import SelectionError
from repro.utils.validation import require


def stratum_weights(strata: list[Stratum]) -> np.ndarray:
    """Instruction-count-share weights, summing to one.

    Degenerate input (a zero or negative grand total, as produced by
    corrupted counters) falls back to uniform weights with a diagnostic
    rather than failing the whole selection.
    """
    require(len(strata) >= 1, "need at least one stratum", SelectionError)
    totals = np.array([s.insn_total for s in strata], dtype=np.float64)
    grand_total = totals.sum()
    if grand_total <= 0 or not np.isfinite(grand_total):
        diagnostics.emit(
            "weights",
            f"degenerate instruction totals (sum={grand_total!r}); "
            "falling back to uniform stratum weights",
        )
        return np.full(len(strata), 1.0 / len(strata))
    return totals / grand_total
