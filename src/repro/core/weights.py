"""Stratum weighting (Section III-C).

A stratum's weight is its share of the workload's total dynamic instruction
count: "Dividing the total instruction count per stratum to the total
instruction count for the entire workload yields the stratum's weight."
"""

from __future__ import annotations

import numpy as np

from repro.core.stratify import Stratum
from repro.utils.validation import require


def stratum_weights(strata: list[Stratum]) -> np.ndarray:
    """Instruction-count-share weights, summing to one."""
    require(len(strata) >= 1, "need at least one stratum")
    totals = np.array([s.insn_total for s in strata], dtype=np.float64)
    grand_total = totals.sum()
    require(grand_total > 0, "workload executes no instructions")
    return totals / grand_total
