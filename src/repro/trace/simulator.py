"""Cycle-level trace-driven GPU simulator.

A deliberately small Accel-sim-like model: per-SM warp contexts with
in-order issue, a register scoreboard, greedy-then-oldest or loose
round-robin warp scheduling, per-class execution latencies, a per-SM L1, a
shared L2 and a bandwidth-limited DRAM. It consumes the plain-text traces
produced by :mod:`repro.trace.tracer` and reports cycles and IPC.

The simulator is intentionally scaled down (default 4 SMs) to keep
simulation times proportionate to the scaled traces; IPC is reported per
SM so results are comparable across configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.isa import OpClass
from repro.trace.cache import SetAssociativeCache
from repro.trace.dram import DramModel
from repro.trace.encoding import KernelTrace
from repro.utils.validation import require


@dataclass(frozen=True)
class SimulatorConfig:
    """Scaled-down GPU configuration for trace simulation."""

    num_sms: int = 4
    max_warps_per_sm: int = 16
    schedulers_per_sm: int = 2
    scheduler: str = "gto"  # "gto" (greedy-then-oldest) or "lrr"
    l1_size: int = 32 * 1024
    l2_size: int = 512 * 1024
    l1_latency: int = 30
    l2_latency: int = 90
    shared_latency: int = 24
    alu_latency: int = 4
    sfu_latency: int = 16
    max_cycles: int = 5_000_000

    def __post_init__(self) -> None:
        require(self.num_sms >= 1, "need at least one SM")
        require(self.max_warps_per_sm >= 1, "need at least one warp slot")
        require(self.scheduler in ("gto", "lrr"), "unknown scheduler policy")


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one kernel trace."""

    kernel_name: str
    invocation_id: int
    cycles: int
    warp_instructions: int
    thread_instructions: int
    l1_hit_rate: float
    l2_hit_rate: float
    dram_requests: int

    @property
    def ipc(self) -> float:
        """Thread-level instructions per cycle (whole modeled chip)."""
        return self.thread_instructions / self.cycles if self.cycles else 0.0


class _WarpContext:
    """In-order issue state of one resident warp."""

    __slots__ = ("stream", "pc", "reg_ready", "stall_until", "done", "last_issue")

    def __init__(self, stream):
        self.stream = stream
        self.pc = 0
        self.reg_ready: dict[int, int] = {}
        self.stall_until = 0
        self.done = len(stream) == 0
        self.last_issue = -1

    def ready_at(self, cycle: int) -> bool:
        if self.done or self.stall_until > cycle:
            return False
        insn = self.stream[self.pc]
        for reg in insn.srcs:
            if self.reg_ready.get(reg, 0) > cycle:
                return False
        if insn.dest >= 0 and self.reg_ready.get(insn.dest, 0) > cycle:
            return False
        return True

    def next_event(self, cycle: int) -> int:
        """Earliest cycle at which this warp could become issuable."""
        if self.done:
            return 1 << 60
        bound = self.stall_until
        insn = self.stream[self.pc]
        for reg in insn.srcs:
            bound = max(bound, self.reg_ready.get(reg, 0))
        if insn.dest >= 0:
            bound = max(bound, self.reg_ready.get(insn.dest, 0))
        return max(bound, cycle + 1)


class TraceSimulator:
    """Simulate kernel traces on the scaled-down GPU model."""

    def __init__(self, config: SimulatorConfig | None = None):
        self.config = config or SimulatorConfig()

    def _memory_completion(
        self,
        insn,
        cycle: int,
        l1: SetAssociativeCache,
        l2: SetAssociativeCache,
        dram: DramModel,
    ) -> int:
        """Completion cycle of a memory instruction through the hierarchy."""
        cfg = self.config
        op = insn.opclass
        if op in (OpClass.LOAD_SHARED, OpClass.STORE_SHARED):
            return cycle + cfg.shared_latency
        if l1.access(insn.address):
            return cycle + cfg.l1_latency
        if l2.access(insn.address):
            return cycle + cfg.l2_latency
        return dram.request(cycle)

    def _issue(self, warp: _WarpContext, cycle, l1, l2, dram) -> int:
        """Issue the warp's next instruction; returns active lane count."""
        cfg = self.config
        insn = warp.stream[warp.pc]
        op = insn.opclass
        if op.is_memory:
            completion = self._memory_completion(insn, cycle, l1, l2, dram)
        elif op is OpClass.SFU:
            completion = cycle + cfg.sfu_latency
        else:
            completion = cycle + cfg.alu_latency
        if insn.dest >= 0:
            warp.reg_ready[insn.dest] = completion
        if op in (OpClass.STORE_GLOBAL, OpClass.STORE_SHARED, OpClass.STORE_LOCAL):
            # Stores retire without blocking the warp.
            completion = cycle + 1
        warp.stall_until = cycle + 1
        warp.last_issue = cycle
        warp.pc += 1
        if warp.pc >= len(warp.stream) or op is OpClass.EXIT:
            warp.done = True
        return insn.active_lanes

    def simulate(self, trace: KernelTrace) -> SimulationResult:
        """Run one kernel trace to completion."""
        cfg = self.config
        l1s = [
            SetAssociativeCache(cfg.l1_size, associativity=4)
            for _ in range(cfg.num_sms)
        ]
        l2 = SetAssociativeCache(cfg.l2_size, associativity=8)
        dram = DramModel()

        # Distribute warps across SMs round-robin, honouring the warp cap
        # by running excess warps as additional batches on the same SM slot
        # (sequential residency, as CTA schedulers do).
        per_sm: list[list[_WarpContext]] = [[] for _ in range(cfg.num_sms)]
        for index, stream in enumerate(trace.warps):
            per_sm[index % cfg.num_sms].append(_WarpContext(stream))

        total_cycles = 0
        thread_insns = 0
        warp_insns = 0
        for sm_index, all_warps in enumerate(per_sm):
            l1 = l1s[sm_index]
            sm_cycles = 0
            # Process in residency batches of max_warps_per_sm.
            for start in range(0, len(all_warps), cfg.max_warps_per_sm):
                batch = all_warps[start : start + cfg.max_warps_per_sm]
                cycle = 0
                last_greedy: _WarpContext | None = None
                rr_index = 0
                while any(not w.done for w in batch):
                    if cycle > cfg.max_cycles:
                        raise RuntimeError("simulation exceeded max_cycles")
                    issued = 0
                    for _slot in range(cfg.schedulers_per_sm):
                        candidate = None
                        if (
                            cfg.scheduler == "gto"
                            and last_greedy is not None
                            and last_greedy.ready_at(cycle)
                        ):
                            candidate = last_greedy
                        else:
                            order = (
                                range(len(batch))
                                if cfg.scheduler == "gto"
                                else [
                                    (rr_index + offset) % len(batch)
                                    for offset in range(len(batch))
                                ]
                            )
                            for warp_index in order:
                                warp = batch[warp_index]
                                if warp.ready_at(cycle):
                                    candidate = warp
                                    rr_index = (warp_index + 1) % len(batch)
                                    break
                        if candidate is None:
                            break
                        thread_insns += self._issue(candidate, cycle, l1, l2, dram)
                        warp_insns += 1
                        issued += 1
                        last_greedy = candidate
                    if issued == 0:
                        # Jump to the next cycle anything can happen.
                        cycle = min(w.next_event(cycle) for w in batch if not w.done)
                    else:
                        cycle += 1
                # Residency batches on the same SM run back to back.
                sm_cycles += cycle
            total_cycles = max(total_cycles, sm_cycles)

        return SimulationResult(
            kernel_name=trace.kernel_name,
            invocation_id=trace.invocation_id,
            cycles=max(total_cycles, 1),
            warp_instructions=warp_insns,
            thread_instructions=thread_insns,
            l1_hit_rate=(
                sum(c.stats.hits for c in l1s)
                / max(sum(c.stats.accesses for c in l1s), 1)
            ),
            l2_hit_rate=l2.stats.hit_rate,
            dram_requests=dram.requests,
        )
