"""Serial versus parallel simulation wall-time accounting (Section V-G).

"As each kernel invocation is a plain text file, it is possible to
simulate a workload by dispatching each trace file to a separate core
(i.e., parallel simulation), or simulate them one by one on a single core
(i.e., serial simulation)." The paper quotes Accel-sim's ~6 KIPS
simulation rate; this module turns a selection's instruction footprint
into estimated wall times under both dispatch models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import SampleSelection
from repro.gpu.hardware import WorkloadMeasurement
from repro.utils.validation import require

#: The paper's quoted simulation speed for Accel-sim (thread-level
#: instructions simulated per second).
DEFAULT_SIMULATION_RATE_IPS = 6_000.0


@dataclass(frozen=True)
class SimulationTimeEstimate:
    """Estimated wall time to simulate a selection's representatives."""

    workload: str
    method: str
    num_traces: int
    total_instructions: int
    longest_trace_instructions: int
    serial_seconds: float
    parallel_seconds: float

    @property
    def serial_days(self) -> float:
        return self.serial_seconds / 86_400.0

    @property
    def parallel_hours(self) -> float:
        return self.parallel_seconds / 3_600.0


def estimate_simulation_time(
    selection: SampleSelection,
    measurement: WorkloadMeasurement,
    simulation_rate_ips: float = DEFAULT_SIMULATION_RATE_IPS,
) -> SimulationTimeEstimate:
    """Estimate serial/parallel simulation time for a selection.

    Serial time is the sum over representative invocations of their
    instruction counts at the simulation rate; parallel time (one trace per
    core, unlimited cores) is determined by the longest-running trace.
    """
    require(simulation_rate_ips > 0, "simulation rate must be positive")
    insn = [rep.measured_insn(measurement) for rep in selection.representatives]
    total = int(sum(insn))
    longest = int(max(insn))
    return SimulationTimeEstimate(
        workload=selection.workload,
        method=selection.method,
        num_traces=len(insn),
        total_instructions=total,
        longest_trace_instructions=longest,
        serial_seconds=total / simulation_rate_ips,
        parallel_seconds=longest / simulation_rate_ips,
    )
