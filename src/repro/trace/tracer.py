"""Selection-aware tracer (the paper's modified Accel-sim/NVBit tracer).

"We have modified the Accel-sim tracer, which uses the NVBit
instrumentation tool, to only create the SASS trace of the selected kernel
invocations" (Section V-G). Given a workload run and a sample selection,
this tracer synthesizes a SASS-like instruction trace for each
representative invocation — and nothing else.

Full-fidelity traces of ~1e9-instruction invocations are impractical to
hold in memory, so the tracer emits a *scaled* trace: a configurable warp
subset executing the invocation's instruction mix with its coalescing,
divergence and sharing behaviour. The scaled trace drives the cycle-level
simulator at a proportionally reduced instruction budget; the scale factor
is recorded in the result so IPC (a ratio) remains directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.types import SampleSelection
from repro.gpu.isa import OpClass, WarpInstruction
from repro.trace.encoding import KernelTrace, render_trace
from repro.utils.seeding import rng_for
from repro.utils.validation import require
from repro.workloads.generator import GeneratedKernel, WorkloadRun

#: Cache line / sector granularity for generated addresses.
SECTOR = 32

#: Base of the synthetic global-memory address space per warp.
GLOBAL_BASE = 0x1000_0000


@dataclass(frozen=True)
class TracerConfig:
    """Controls the size of the emitted traces."""

    max_warps: int = 64
    max_warp_instructions: int = 4096
    registers: int = 16  # architectural registers used by generated code

    def __post_init__(self) -> None:
        require(self.max_warps >= 1, "need at least one warp")
        require(self.max_warp_instructions >= 8, "trace too short to be useful")
        require(self.registers >= 4, "need a few registers for dependences")


class SelectionTracer:
    """Emit traces for the representative invocations of a selection."""

    def __init__(self, config: TracerConfig | None = None):
        self.config = config or TracerConfig()

    # ------------------------------------------------------------------ #

    def _instruction_mix(
        self, kernel: GeneratedKernel, row_index: int
    ) -> dict[OpClass, float]:
        """Per-warp-instruction probabilities from the invocation metrics."""
        batch = kernel.batch
        insn = float(batch.insn_count[row_index])
        mem_rates = {
            OpClass.LOAD_GLOBAL: float(batch.thread_global_loads[row_index]) / insn,
            OpClass.STORE_GLOBAL: float(batch.thread_global_stores[row_index]) / insn,
            OpClass.LOAD_SHARED: float(batch.thread_shared_loads[row_index]) / insn,
            OpClass.STORE_SHARED: float(batch.thread_shared_stores[row_index]) / insn,
            OpClass.LOAD_LOCAL: float(batch.thread_local_loads[row_index]) / insn,
            OpClass.ATOMIC: float(batch.thread_global_atomics[row_index]) / insn,
        }
        compute_budget = max(1.0 - sum(mem_rates.values()), 0.05)
        traits = kernel.traits
        mix = dict(mem_rates)
        mix[OpClass.FP32] = compute_budget * traits.fp_ratio
        mix[OpClass.SFU] = compute_budget * traits.sfu_ratio
        mix[OpClass.BRANCH] = compute_budget * 0.05
        mix[OpClass.INT32] = max(compute_budget - mix[OpClass.FP32]
                                 - mix[OpClass.SFU] - mix[OpClass.BRANCH], 0.0)
        total = sum(mix.values())
        return {op: p / total for op, p in mix.items() if p > 0}

    def _warp_stream(
        self,
        mix: dict[OpClass, float],
        length: int,
        warp_id: int,
        divergence: float,
        coalescing: float,
        rng: np.random.Generator,
    ) -> tuple[WarpInstruction, ...]:
        """Generate one warp's instruction stream."""
        ops = list(mix.keys())
        probabilities = np.array([mix[op] for op in ops])
        choices = rng.choice(len(ops), size=length - 1, p=probabilities)
        registers = self.config.registers

        # Lane mask honours the measured divergence efficiency.
        active_lanes = max(1, round(32 * divergence))
        mask = (1 << active_lanes) - 1

        stream: list[WarpInstruction] = []
        stride = SECTOR if coalescing > 0.75 else SECTOR * 8
        address = GLOBAL_BASE + warp_id * 0x10000
        shared_address = warp_id % 16 * 0x100
        for position, choice in enumerate(choices):
            op = ops[choice]
            dest = int(rng.integers(registers)) if op is not OpClass.BRANCH else -1
            srcs = (int(rng.integers(registers)), int(rng.integers(registers)))
            if op.is_memory:
                if op in (OpClass.LOAD_SHARED, OpClass.STORE_SHARED):
                    insn_address = shared_address
                else:
                    address += stride
                    insn_address = address
            else:
                insn_address = 0
            stream.append(
                WarpInstruction(
                    opclass=op,
                    active_mask=mask,
                    address=insn_address,
                    dest=dest,
                    srcs=srcs,
                )
            )
            if position % 64 == 63:  # periodic loop back through the buffer
                address = GLOBAL_BASE + warp_id * 0x10000
        stream.append(WarpInstruction(opclass=OpClass.EXIT, active_mask=mask))
        return tuple(stream)

    # ------------------------------------------------------------------ #

    def trace_invocation(
        self, run: WorkloadRun, kernel_name: str, invocation_id: int
    ) -> KernelTrace:
        """Synthesize the (scaled) trace of one kernel invocation."""
        kernel = run.kernel_by_name(kernel_name)
        batch = kernel.batch
        require(
            0 <= invocation_id < len(batch), f"invocation {invocation_id} out of range"
        )
        cta_size = int(batch.cta_size[invocation_id])
        warps_total = int(batch.warps_per_cta[invocation_id]) * int(
            batch.num_ctas[invocation_id]
        )
        warps = min(warps_total, self.config.max_warps)
        warp_insns_total = float(batch.insn_count[invocation_id]) / 32.0
        per_warp = int(
            min(
                max(warp_insns_total / warps_total, 8),
                self.config.max_warp_instructions,
            )
        )
        mix = self._instruction_mix(kernel, invocation_id)
        rng = rng_for("tracer", run.label, kernel_name, invocation_id)
        coalescing = 1.0 if batch.coalesced_global_loads[invocation_id] * 24 <= (
            batch.thread_global_loads[invocation_id] or 1
        ) else 0.5
        streams = tuple(
            self._warp_stream(
                mix,
                per_warp,
                warp_id,
                float(batch.divergence_efficiency[invocation_id]),
                coalescing,
                rng,
            )
            for warp_id in range(warps)
        )
        return KernelTrace(
            kernel_name=kernel_name,
            invocation_id=invocation_id,
            num_ctas=int(batch.num_ctas[invocation_id]),
            cta_size=cta_size,
            warps=streams,
        )

    def trace_selection(
        self, run: WorkloadRun, selection: SampleSelection
    ) -> list[KernelTrace]:
        """Traces for every representative invocation of ``selection``."""
        return [
            self.trace_invocation(run, rep.kernel_name, rep.invocation_id)
            for rep in selection.representatives
        ]

    def write_selection(
        self, run: WorkloadRun, selection: SampleSelection, directory: str | Path
    ) -> list[Path]:
        """Write one plain-text trace file per representative invocation."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for trace in self.trace_selection(run, selection):
            path = directory / f"{trace.kernel_name}_{trace.invocation_id}.trace"
            path.write_text(render_trace(trace))
            paths.append(path)
        return paths
