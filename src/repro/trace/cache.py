"""Set-associative cache model for the trace-driven simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import require


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class SetAssociativeCache:
    """LRU set-associative cache tracking tags only (no data).

    ``access`` returns True on hit. Misses allocate (write-allocate for
    stores, which is how sector caches on modern GPUs behave for the
    simulator's purposes).
    """

    size_bytes: int
    line_bytes: int = 32
    associativity: int = 4
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        require(self.size_bytes >= self.line_bytes, "cache smaller than a line")
        require(self.associativity >= 1, "associativity must be >= 1")
        num_lines = self.size_bytes // self.line_bytes
        self.num_sets = max(num_lines // self.associativity, 1)
        # Per-set list of tags in LRU order (index 0 = least recent).
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]

    def access(self, address: int) -> bool:
        """Access one address; returns True on hit, False on miss+fill."""
        line = address // self.line_bytes
        index = line % self.num_sets
        tag = line // self.num_sets
        entries = self._sets[index]
        self.stats.accesses += 1
        if tag in entries:
            entries.remove(tag)
            entries.append(tag)
            self.stats.hits += 1
            return True
        entries.append(tag)
        if len(entries) > self.associativity:
            entries.pop(0)
        return False

    def reset_stats(self) -> None:
        self.stats = CacheStats()
