"""DRAM model for the trace-driven simulator.

Fixed service latency plus a bandwidth-limited service queue: each request
occupies the channel for ``cycles_per_request`` cycles; a request issued at
cycle ``t`` completes at ``max(t, channel_free) + latency``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require


@dataclass
class DramModel:
    latency_cycles: int = 300
    cycles_per_request: float = 2.0  # channel occupancy per 32B sector

    def __post_init__(self) -> None:
        require(self.latency_cycles >= 1, "latency must be >= 1 cycle")
        require(self.cycles_per_request > 0, "occupancy must be positive")
        self._channel_free = 0.0
        self.requests = 0

    def request(self, cycle: int) -> int:
        """Issue one sector request at ``cycle``; returns completion cycle."""
        start = max(float(cycle), self._channel_free)
        self._channel_free = start + self.cycles_per_request
        self.requests += 1
        return int(start + self.latency_cycles)

    def reset(self) -> None:
        self._channel_free = 0.0
        self.requests = 0
