"""PKP-style intra-invocation projection (extension).

Principal Kernel Projection (Baddouh et al.) stops simulating a kernel
invocation once its IPC has converged to a steady state. The paper
discards PKP from its comparison but notes it "can be applied to both
techniques with similar benefits" — so we provide it as an optional
extension on top of the trace simulator: simulate warp batches
incrementally and stop early once the running IPC stabilizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.encoding import KernelTrace
from repro.trace.simulator import SimulatorConfig, TraceSimulator
from repro.utils.validation import require


@dataclass(frozen=True)
class ProjectionResult:
    """Early-exit simulation outcome."""

    kernel_name: str
    invocation_id: int
    converged: bool
    projected_ipc: float
    simulated_warp_fraction: float
    checkpoints: tuple[float, ...]  # running IPC after each batch


def simulate_with_projection(
    trace: KernelTrace,
    config: SimulatorConfig | None = None,
    batch_warps: int = 8,
    tolerance: float = 0.05,
    min_batches: int = 2,
) -> ProjectionResult:
    """Simulate ``trace`` in warp batches, stopping on IPC convergence.

    After each batch the running IPC is compared with the previous
    checkpoint; once the relative change drops below ``tolerance`` (and at
    least ``min_batches`` ran), the remaining warps are skipped and the
    converged IPC is projected onto the full invocation.
    """
    require(batch_warps >= 1, "batch must contain at least one warp")
    require(0 < tolerance < 1, "tolerance must be in (0, 1)")
    simulator = TraceSimulator(config)

    checkpoints: list[float] = []
    for upto in range(batch_warps, trace.num_warps + batch_warps, batch_warps):
        partial = KernelTrace(
            kernel_name=trace.kernel_name,
            invocation_id=trace.invocation_id,
            num_ctas=trace.num_ctas,
            cta_size=trace.cta_size,
            warps=trace.warps[: min(upto, trace.num_warps)],
        )
        result = simulator.simulate(partial)
        checkpoints.append(result.ipc)
        if len(checkpoints) >= max(min_batches, 2):
            previous, current = checkpoints[-2], checkpoints[-1]
            if previous > 0 and abs(current - previous) / previous < tolerance:
                return ProjectionResult(
                    kernel_name=trace.kernel_name,
                    invocation_id=trace.invocation_id,
                    converged=True,
                    projected_ipc=current,
                    simulated_warp_fraction=min(upto, trace.num_warps)
                    / trace.num_warps,
                    checkpoints=tuple(checkpoints),
                )
        if upto >= trace.num_warps:
            break
    return ProjectionResult(
        kernel_name=trace.kernel_name,
        invocation_id=trace.invocation_id,
        converged=False,
        projected_ipc=checkpoints[-1] if checkpoints else 0.0,
        simulated_warp_fraction=1.0,
        checkpoints=tuple(checkpoints),
    )
