"""Plain-text SASS-like trace format.

The paper: "The traces are simple plain text files which are then simulated
by Accel-sim on conventional CPUs." One trace file holds one kernel
invocation: a small header followed by one line per warp-level dynamic
instruction.

Format::

    # kernel <name> invocation <id>
    # grid <num_ctas> block <cta_size> warps <n>
    <warp_id> <mnemonic> <active_mask_hex> <address_hex> <dest> <src,src,...>
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.isa import WarpInstruction, opclass_for_mnemonic
from repro.utils.validation import require


@dataclass(frozen=True)
class KernelTrace:
    """An instruction trace of one kernel invocation."""

    kernel_name: str
    invocation_id: int
    num_ctas: int
    cta_size: int
    warps: tuple[tuple[WarpInstruction, ...], ...]  # per warp, in order

    def __post_init__(self) -> None:
        require(self.num_ctas >= 1, "trace needs >= 1 CTA")
        require(self.cta_size >= 1, "trace needs >= 1 thread per CTA")
        require(len(self.warps) >= 1, "trace needs >= 1 warp")

    @property
    def num_warps(self) -> int:
        return len(self.warps)

    @property
    def num_instructions(self) -> int:
        """Warp-level dynamic instruction count."""
        return sum(len(w) for w in self.warps)

    @property
    def thread_instructions(self) -> int:
        """Thread-level dynamic instruction count (sums active lanes)."""
        return sum(i.active_lanes for w in self.warps for i in w)


def render_trace(trace: KernelTrace) -> str:
    """Serialize a trace to its plain-text form."""
    lines = [
        f"# kernel {trace.kernel_name} invocation {trace.invocation_id}",
        f"# grid {trace.num_ctas} block {trace.cta_size} warps {trace.num_warps}",
    ]
    for warp_id, instructions in enumerate(trace.warps):
        for insn in instructions:
            srcs = ",".join(str(s) for s in insn.srcs) if insn.srcs else "-"
            lines.append(
                f"{warp_id} {insn.mnemonic} {insn.active_mask:08x} "
                f"{insn.address:x} {insn.dest} {srcs}"
            )
    return "\n".join(lines) + "\n"


def parse_trace(text: str) -> KernelTrace:
    """Parse a trace previously produced by :func:`render_trace`."""
    lines = text.strip().splitlines()
    require(len(lines) >= 3, "trace too short")
    header1 = lines[0].split()
    require(header1[:2] == ["#", "kernel"], "bad trace header")
    kernel_name = header1[2]
    invocation_id = int(header1[4])
    header2 = lines[1].split()
    require(header2[:2] == ["#", "grid"], "bad trace header")
    num_ctas = int(header2[2])
    cta_size = int(header2[4])
    num_warps = int(header2[6])

    warps: list[list[WarpInstruction]] = [[] for _ in range(num_warps)]
    for line in lines[2:]:
        fields = line.split()
        warp_id = int(fields[0])
        srcs = () if fields[5] == "-" else tuple(int(s) for s in fields[5].split(","))
        warps[warp_id].append(
            WarpInstruction(
                opclass=opclass_for_mnemonic(fields[1]),
                active_mask=int(fields[2], 16),
                address=int(fields[3], 16),
                dest=int(fields[4]),
                srcs=srcs,
            )
        )
    return KernelTrace(
        kernel_name=kernel_name,
        invocation_id=invocation_id,
        num_ctas=num_ctas,
        cta_size=cta_size,
        warps=tuple(tuple(w) for w in warps),
    )
