"""Trace-driven simulation substrate (Section V-G).

The end purpose of Sieve is to hand a *reduced* set of kernel invocations
to a detailed simulator. The paper modifies the Accel-sim tracer (built on
NVBit) to emit SASS traces for only the selected invocations, then
simulates those traces. This package reproduces that pipeline in
miniature:

* :mod:`repro.trace.encoding` — the plain-text trace format;
* :mod:`repro.trace.tracer` — emit (scaled) instruction traces for the
  representative invocations only;
* :mod:`repro.trace.simulator` — a cycle-level trace-driven GPU simulator
  (warp schedulers, scoreboard, execution units, L1/L2 caches, DRAM);
* :mod:`repro.trace.simtime` — serial vs parallel simulation wall-time
  accounting at a configurable simulator speed (the paper quotes ~6 KIPS);
* :mod:`repro.trace.projection` — a PKP-style IPC-convergence early-exit
  (the extension the paper notes is orthogonal to both Sieve and PKS).
"""

from repro.trace.encoding import KernelTrace, parse_trace, render_trace
from repro.trace.projection import ProjectionResult, simulate_with_projection
from repro.trace.simtime import SimulationTimeEstimate, estimate_simulation_time
from repro.trace.simulator import SimulatorConfig, SimulationResult, TraceSimulator
from repro.trace.tracer import SelectionTracer, TracerConfig

__all__ = [
    "KernelTrace",
    "render_trace",
    "parse_trace",
    "TracerConfig",
    "SelectionTracer",
    "SimulatorConfig",
    "SimulationResult",
    "TraceSimulator",
    "SimulationTimeEstimate",
    "estimate_simulation_time",
    "ProjectionResult",
    "simulate_with_projection",
]
