"""GPU hardware substrate.

The paper evaluates Sieve through *real silicon validation* on an Nvidia
RTX 3080 (Ampere) and RTX 2080Ti (Turing). This package is the stand-in for
that silicon: an analytical, interval-style GPU timing model that maps each
kernel invocation's execution characteristics to a deterministic cycle
count on a configurable architecture.

The samplers under test (Sieve, PKS) never look inside this model — they
only consume the per-invocation cycle counts it produces, exactly as the
paper's scripts only consume profiler and hardware-counter output.
"""

from repro.gpu.arch import AMPERE_RTX3080, TURING_RTX2080TI, GpuArchitecture
from repro.gpu.hardware import HardwareExecutor, KernelMeasurement, WorkloadMeasurement
from repro.gpu.kernel import InvocationBatch, KernelTraits
from repro.gpu.occupancy import OccupancyResult, occupancy_for

__all__ = [
    "GpuArchitecture",
    "AMPERE_RTX3080",
    "TURING_RTX2080TI",
    "KernelTraits",
    "InvocationBatch",
    "OccupancyResult",
    "occupancy_for",
    "HardwareExecutor",
    "KernelMeasurement",
    "WorkloadMeasurement",
]
