"""Memory-hierarchy traffic model.

Converts the per-invocation memory characteristics (coalesced transaction
counts, Table II) plus the kernel's hidden cache locality into DRAM byte
traffic and a latency-exposure estimate. The model is a classic two-level
inclusive filter: L1 absorbs ``l1_hit_rate`` of the sector traffic, L2
absorbs ``l2_hit_rate`` of the L1 misses, with the effective L2 hit rate
degraded when the kernel's working set exceeds the L2 capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.arch import SECTOR_BYTES, GpuArchitecture
from repro.gpu.kernel import InvocationBatch, KernelTraits


@dataclass(frozen=True)
class MemoryTraffic:
    """Per-invocation memory traffic (arrays aligned with the batch)."""

    l1_sector_accesses: np.ndarray  # transactions reaching L1
    l2_sector_accesses: np.ndarray  # L1 misses reaching L2
    dram_bytes: np.ndarray  # bytes reaching DRAM
    atomic_ops: np.ndarray  # global atomics (serialize at L2)


def capacity_adjusted_l2_hit(
    arch: GpuArchitecture, traits: KernelTraits, footprint_bytes: np.ndarray
) -> np.ndarray:
    """Degrade the kernel's nominal L2 hit rate by working-set pressure.

    A footprint comfortably inside L2 keeps the nominal hit rate; beyond
    capacity the hit rate decays harmonically, approaching zero for
    streaming footprints far larger than the cache.
    """
    footprint = np.maximum(np.asarray(footprint_bytes, dtype=np.float64), 1.0)
    pressure = footprint / float(arch.l2_size_bytes)
    scale = 1.0 / np.maximum(pressure, 1.0)
    return traits.l2_hit_rate * scale


def memory_traffic(
    arch: GpuArchitecture, traits: KernelTraits, batch: InvocationBatch
) -> MemoryTraffic:
    """Compute the memory traffic of every invocation in ``batch``."""
    global_sectors = (
        batch.coalesced_global_loads + batch.coalesced_global_stores
    ).astype(np.float64)
    local_sectors = batch.coalesced_local_loads.astype(np.float64)
    l1_accesses = global_sectors + local_sectors

    l1_misses = l1_accesses * (1.0 - traits.l1_hit_rate)

    # Unique-footprint estimate: distinct sectors touched, assuming the
    # nominal L1 hit rate reflects intra-invocation reuse.
    footprint_bytes = l1_misses * SECTOR_BYTES
    l2_hit = capacity_adjusted_l2_hit(arch, traits, footprint_bytes)
    dram_sectors = l1_misses * (1.0 - l2_hit)

    return MemoryTraffic(
        l1_sector_accesses=l1_accesses,
        l2_sector_accesses=l1_misses,
        dram_bytes=dram_sectors * SECTOR_BYTES,
        atomic_ops=batch.thread_global_atomics.astype(np.float64),
    )
