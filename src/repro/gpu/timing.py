"""Interval-analysis timing model.

The model estimates the cycle count of each kernel invocation as the
maximum of a compute interval and a memory interval (plus a partial-overlap
residual), scaled by a latency-hiding utilization term driven by occupancy
and the kernel's hidden instruction-level parallelism. This is the standard
shape of analytical GPU models (Hong & Kim, GPUMech, GCoM) and is rich
enough to reproduce every behaviour the paper's evaluation depends on:

* cycles are a deterministic function of (kernel, instruction count, CTA
  shape) with small measurement noise — the property Sieve exploits;
* kernels with identical microarchitecture-independent characteristics but
  different hidden traits (ILP, cache locality, personality) run at
  different speeds — the property that defeats PKS clustering;
* architecture configs (SM datapaths, bandwidth, clock) shift kernels
  differently — the property probed by the Figure 9 relative study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.arch import WARP_SIZE, GpuArchitecture
from repro.gpu.kernel import InvocationBatch, KernelTraits
from repro.gpu.memory import memory_traffic
from repro.gpu.occupancy import occupancy_table
from repro.observability import metrics, span

#: Arithmetic-pipeline latency (cycles) used in the latency-hiding term.
ALU_LATENCY = 8.0

#: L1 / L2 hit service latencies (cycles).
L1_HIT_LATENCY = 30.0
L2_HIT_LATENCY = 200.0

#: Global atomics retire at the L2; aggregate chip throughput (ops/cycle).
ATOMIC_THROUGHPUT = 64.0

#: Fraction of the shorter interval that does *not* overlap with the longer
#: one (0 would be a pure max-of-intervals model).
OVERLAP_RESIDUAL = 0.2

#: Smoothed cost of the ragged final CTA wave, in units of one CTA's work
#: on the critical-path SM.
WAVE_TAIL_PENALTY = 0.2


@dataclass(frozen=True)
class TimingBreakdown:
    """Per-invocation interval decomposition (arrays aligned to the batch)."""

    compute_cycles: np.ndarray
    memory_cycles: np.ndarray
    total_cycles: np.ndarray  # noiseless model output, before measurement noise


def _memory_warp_instructions(batch: InvocationBatch) -> np.ndarray:
    """Warp-level memory instructions issued (thread-level counts / 32)."""
    thread_level = (
        batch.thread_global_loads
        + batch.thread_global_stores
        + batch.thread_local_loads
        + batch.thread_shared_loads
        + batch.thread_shared_stores
        + batch.thread_global_atomics
    ).astype(np.float64)
    return thread_level / WARP_SIZE


def invocation_timing(
    arch: GpuArchitecture, traits: KernelTraits, batch: InvocationBatch
) -> TimingBreakdown:
    """Model the cycle count of every invocation in ``batch`` on ``arch``."""
    metrics.inc("gpu.timing.invocations", len(batch))
    with span("gpu.timing"):
        return _invocation_timing(arch, traits, batch)


def _invocation_timing(
    arch: GpuArchitecture, traits: KernelTraits, batch: InvocationBatch
) -> TimingBreakdown:
    ctas_per_sm, active_warps = occupancy_table(arch, traits, batch.cta_size)
    num_ctas = batch.num_ctas.astype(np.float64)

    # Warp-level issue slots. Divergence below 1.0 inflates the number of
    # issue slots needed per thread-level instruction.
    warp_insns = batch.insn_count.astype(np.float64) / (
        WARP_SIZE * batch.divergence_efficiency
    )
    mem_warp_insns = np.minimum(_memory_warp_instructions(batch), warp_insns)
    compute_warp_insns = warp_insns - mem_warp_insns

    # CTA-wave makespan: the critical-path SM executes its proportional
    # share of CTAs plus a smoothed tail penalty for the ragged final wave
    # (small grids cannot spread across all SMs, so their per-SM share —
    # and hence their achieved IPC — degrades). A smooth penalty rather
    # than integer wave quantization reflects how CTA work-stealing
    # amortizes wave boundaries on real hardware.
    critical_ctas = np.maximum(num_ctas / arch.num_sms, 1.0) + WAVE_TAIL_PENALTY
    per_sm_share = critical_ctas / num_ctas

    per_sm_warp_insns = warp_insns * per_sm_share
    per_sm_compute = compute_warp_insns * per_sm_share
    per_sm_mem_issue = mem_warp_insns * per_sm_share

    # Issue-bound and unit-bound compute intervals (cycles per SM).
    issue_bound = per_sm_warp_insns / arch.schedulers_per_sm
    fp = per_sm_compute * traits.fp_ratio / arch.warp_throughput(arch.fp32_lanes_per_sm)
    integer = (
        per_sm_compute
        * traits.int_ratio
        / arch.warp_throughput(arch.int32_lanes_per_sm)
    )
    sfu = per_sm_compute * traits.sfu_ratio / arch.warp_throughput(arch.sfu_lanes_per_sm)
    lsu = per_sm_mem_issue / arch.warp_throughput(arch.lsu_lanes_per_sm)
    unit_bound = np.maximum.reduce([fp + integer, sfu, lsu])
    raw_compute = np.maximum(issue_bound, unit_bound)

    # Latency hiding: resident warps (possibly fewer than occupancy allows
    # when the grid is small) times ILP versus the average exposed latency.
    resident_ctas = np.minimum(ctas_per_sm.astype(np.float64), num_ctas)
    resident_warps = np.minimum(
        active_warps.astype(np.float64),
        resident_ctas * batch.warps_per_cta.astype(np.float64),
    )
    mem_fraction = np.divide(
        mem_warp_insns, warp_insns, out=np.zeros_like(warp_insns), where=warp_insns > 0
    )
    miss_latency = traits.l1_hit_rate * L1_HIT_LATENCY + (1.0 - traits.l1_hit_rate) * (
        traits.l2_hit_rate * L2_HIT_LATENCY
        + (1.0 - traits.l2_hit_rate) * arch.dram_latency_cycles
    )
    avg_latency = ALU_LATENCY + mem_fraction * miss_latency
    supply = resident_warps * traits.ilp
    utilization = supply / (supply + avg_latency)
    compute_cycles = raw_compute / utilization

    # Memory interval: chip-wide DRAM bytes over deliverable bandwidth, plus
    # L2 atomic serialization.
    traffic = memory_traffic(arch, traits, batch)
    memory_cycles = (
        traffic.dram_bytes / arch.bytes_per_cycle
        + traffic.atomic_ops / ATOMIC_THROUGHPUT
    )

    longer = np.maximum(compute_cycles, memory_cycles)
    shorter = np.minimum(compute_cycles, memory_cycles)
    total = (
        arch.kernel_launch_overhead_cycles
        + (longer + OVERLAP_RESIDUAL * shorter)
        * traits.personality
        * traits.efficiency_on(arch.family)
    )
    return TimingBreakdown(
        compute_cycles=compute_cycles,
        memory_cycles=memory_cycles,
        total_cycles=total,
    )
