"""GPU architecture configurations.

Two concrete configurations mirror the paper's experimental setup
(Section IV): an RTX 3080 (Ampere GA102, 68 SMs, 10 GB, 760 GB/s) as the
baseline, and an RTX 2080Ti (Turing TU102, 68 SMs, 11 GB, 616 GB/s) for the
relative-accuracy study (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require

#: Threads per warp on every Nvidia architecture modeled here.
WARP_SIZE = 32

#: Bytes per coalesced global-memory transaction (one 32-byte sector).
SECTOR_BYTES = 32


@dataclass(frozen=True)
class GpuArchitecture:
    """Static description of a GPU chip used by the timing model.

    Throughput fields are expressed per SM per cycle in *thread-level*
    lanes; the timing model converts them to warp-instruction throughput by
    dividing by :data:`WARP_SIZE`.
    """

    name: str
    family: str  # "ampere" | "turing" | ...
    num_sms: int
    clock_ghz: float
    memory_gb: float
    dram_bandwidth_gbs: float
    l2_size_bytes: int
    max_threads_per_sm: int
    max_warps_per_sm: int
    max_ctas_per_sm: int
    registers_per_sm: int
    shared_memory_per_sm: int
    schedulers_per_sm: int  # dual-issue ports; peak warp-insns issued /cycle/SM
    fp32_lanes_per_sm: int
    int32_lanes_per_sm: int
    sfu_lanes_per_sm: int
    lsu_lanes_per_sm: int
    dram_latency_cycles: float
    kernel_launch_overhead_cycles: float

    def __post_init__(self) -> None:
        require(self.num_sms > 0, "num_sms must be positive")
        require(self.clock_ghz > 0, "clock_ghz must be positive")
        require(self.dram_bandwidth_gbs > 0, "bandwidth must be positive")
        require(self.max_threads_per_sm >= WARP_SIZE, "SM must hold a warp")
        require(
            self.max_warps_per_sm * WARP_SIZE <= self.max_threads_per_sm * 2,
            "warp limit inconsistent with thread limit",
        )

    @property
    def bytes_per_cycle(self) -> float:
        """Aggregate DRAM bytes deliverable per core cycle."""
        return self.dram_bandwidth_gbs / self.clock_ghz

    def warp_throughput(self, unit_lanes: int) -> float:
        """Warp-instructions per cycle per SM for a unit with ``unit_lanes``."""
        return unit_lanes / WARP_SIZE


#: The paper's baseline GPU: Nvidia RTX 3080, Ampere GA102.
#: Ampere doubles the FP32 datapath per SM relative to Turing (the second
#: FP32 pipe is shared with INT32), which is why FP-heavy kernels gain more
#: from Ampere than INT-heavy ones.
AMPERE_RTX3080 = GpuArchitecture(
    name="rtx3080",
    family="ampere",
    num_sms=68,
    clock_ghz=1.710,
    memory_gb=10.0,
    dram_bandwidth_gbs=760.0,
    l2_size_bytes=5 * 1024 * 1024,
    max_threads_per_sm=1536,
    max_warps_per_sm=48,
    max_ctas_per_sm=16,
    registers_per_sm=65536,
    shared_memory_per_sm=100 * 1024,
    schedulers_per_sm=4,
    fp32_lanes_per_sm=128,
    int32_lanes_per_sm=64,
    sfu_lanes_per_sm=16,
    lsu_lanes_per_sm=32,
    dram_latency_cycles=470.0,
    kernel_launch_overhead_cycles=3000.0,
)

#: The paper's second GPU: Nvidia RTX 2080Ti, Turing TU102.
TURING_RTX2080TI = GpuArchitecture(
    name="rtx2080ti",
    family="turing",
    num_sms=68,
    clock_ghz=1.545,
    memory_gb=11.0,
    dram_bandwidth_gbs=616.0,
    l2_size_bytes=int(5.5 * 1024 * 1024),
    max_threads_per_sm=1024,
    max_warps_per_sm=32,
    max_ctas_per_sm=16,
    registers_per_sm=65536,
    shared_memory_per_sm=64 * 1024,
    schedulers_per_sm=4,
    fp32_lanes_per_sm=64,
    int32_lanes_per_sm=64,
    sfu_lanes_per_sm=16,
    lsu_lanes_per_sm=32,
    dram_latency_cycles=420.0,
    kernel_launch_overhead_cycles=3000.0,
)

KNOWN_ARCHITECTURES: dict[str, GpuArchitecture] = {
    AMPERE_RTX3080.name: AMPERE_RTX3080,
    TURING_RTX2080TI.name: TURING_RTX2080TI,
}


def architecture_by_name(name: str) -> GpuArchitecture:
    """Look up a known architecture configuration by its short name."""
    try:
        return KNOWN_ARCHITECTURES[name]
    except KeyError:
        known = ", ".join(sorted(KNOWN_ARCHITECTURES))
        raise KeyError(f"unknown architecture {name!r}; known: {known}") from None
