"""Hardware execution: the golden-reference "real silicon".

:class:`HardwareExecutor` plays the role of the paper's RTX 3080 / RTX
2080Ti test machines. Running a workload yields the per-invocation cycle
counts (with small, deterministic measurement noise) that both samplers'
accuracy is judged against — the paper's "golden reference, total cycle
count, collected on real hardware" (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

import numpy as np

from repro.gpu.arch import GpuArchitecture
from repro.gpu.kernel import InvocationBatch, KernelTraits
from repro.gpu.timing import invocation_timing
from repro.utils.seeding import rng_for


class KernelLike(Protocol):
    """What the executor needs from a kernel object."""

    @property
    def traits(self) -> KernelTraits: ...

    @property
    def batch(self) -> InvocationBatch: ...


class WorkloadLike(Protocol):
    """What the executor needs from a workload object."""

    @property
    def name(self) -> str: ...

    @property
    def kernels(self) -> Iterable[KernelLike]: ...


@dataclass(frozen=True)
class KernelMeasurement:
    """Measured execution of all invocations of one kernel."""

    kernel_name: str
    cycles: np.ndarray  # int64, per invocation
    insn_count: np.ndarray  # int64, per invocation (copied for convenience)

    @property
    def ipc(self) -> np.ndarray:
        """Instructions per cycle, per invocation."""
        return self.insn_count.astype(np.float64) / self.cycles.astype(np.float64)

    @property
    def total_cycles(self) -> int:
        return int(self.cycles.sum())


@dataclass(frozen=True)
class WorkloadMeasurement:
    """Measured execution of a whole workload on one architecture."""

    workload_name: str
    architecture: str
    clock_ghz: float
    per_kernel: dict[str, KernelMeasurement]

    @property
    def total_cycles(self) -> int:
        """Golden-reference application cycle count (sum over invocations)."""
        return sum(m.total_cycles for m in self.per_kernel.values())

    @property
    def total_instructions(self) -> int:
        return int(sum(int(m.insn_count.sum()) for m in self.per_kernel.values()))

    @property
    def wall_time_seconds(self) -> float:
        """End-to-end GPU time at the architecture's core clock."""
        return self.total_cycles / (self.clock_ghz * 1e9)

    def ipc(self) -> float:
        """Application IPC: total instructions over total cycles."""
        return self.total_instructions / self.total_cycles


class HardwareExecutor:
    """Execute workloads on a modeled GPU and report hardware counters.

    Measurement noise is multiplicative log-normal with the kernel's
    ``measurement_noise_cov``, seeded from (architecture, workload, kernel)
    so repeated "runs" of the same experiment are identical — mirroring the
    paper's single golden-reference collection per platform.
    """

    def __init__(self, arch: GpuArchitecture):
        self.arch = arch

    def measure_kernel(
        self, workload_name: str, kernel_name: str, traits: KernelTraits,
        batch: InvocationBatch,
    ) -> KernelMeasurement:
        """Measure every invocation of one kernel."""
        timing = invocation_timing(self.arch, traits, batch)
        cycles = timing.total_cycles
        if traits.measurement_noise_cov > 0:
            rng = rng_for("hardware", self.arch.name, workload_name, kernel_name)
            sigma = traits.measurement_noise_cov
            noise = rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=len(batch))
            cycles = cycles * noise
        return KernelMeasurement(
            kernel_name=kernel_name,
            cycles=np.maximum(np.rint(cycles), 1.0).astype(np.int64),
            insn_count=batch.insn_count.astype(np.int64),
        )

    def measure(self, workload: WorkloadLike) -> WorkloadMeasurement:
        """Measure every kernel invocation of ``workload``."""
        per_kernel: dict[str, KernelMeasurement] = {}
        for kernel in workload.kernels:
            name = kernel.traits.name
            if name in per_kernel:
                raise ValueError(f"duplicate kernel name {name!r} in workload")
            per_kernel[name] = self.measure_kernel(
                workload.name, name, kernel.traits, kernel.batch
            )
        return WorkloadMeasurement(
            workload_name=workload.name,
            architecture=self.arch.name,
            clock_ghz=self.arch.clock_ghz,
            per_kernel=per_kernel,
        )
