"""Kernel-level data structures shared by the hardware model and samplers.

Two halves live here:

* :class:`KernelTraits` — the *hidden* microarchitectural behaviour of a
  kernel (ILP, cache locality, per-architecture efficiency, ...). These are
  deliberately **not** part of the 12 microarchitecture-independent
  characteristics PKS profiles (Table II); they are what makes two kernels
  with identical profiled characteristics run at different speeds, which is
  the central failure mode of PKS the paper identifies.
* :class:`InvocationBatch` — the vectorized per-invocation descriptors of a
  kernel: instruction count, launch shape, and the Table II metric columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.arch import WARP_SIZE
from repro.utils.validation import require


@dataclass(frozen=True)
class KernelTraits:
    """Hidden per-kernel behaviour consumed only by the hardware model.

    ``fp_ratio``/``sfu_ratio`` partition the kernel's non-memory
    instructions into FP32 / SFU / INT32 classes. ``arch_efficiency`` maps
    an architecture *family* to a cycle multiplier below/above 1.0,
    capturing workload-dependent architecture affinity (e.g. the paper's
    lmc/lmr, which run *faster* on Turing than on Ampere, Figure 9).
    """

    name: str
    regs_per_thread: int = 32
    smem_per_cta: int = 0
    ilp: float = 2.0
    l1_hit_rate: float = 0.5
    l2_hit_rate: float = 0.4
    fp_ratio: float = 0.6
    sfu_ratio: float = 0.02
    personality: float = 1.0
    measurement_noise_cov: float = 0.01
    arch_efficiency: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require(bool(self.name), "kernel name must be non-empty")
        require(self.regs_per_thread >= 1, "regs_per_thread must be >= 1")
        require(self.smem_per_cta >= 0, "smem_per_cta must be >= 0")
        require(self.ilp > 0, "ilp must be positive")
        require(0.0 <= self.l1_hit_rate <= 1.0, "l1_hit_rate must be in [0, 1]")
        require(0.0 <= self.l2_hit_rate <= 1.0, "l2_hit_rate must be in [0, 1]")
        require(
            0.0 <= self.fp_ratio + self.sfu_ratio <= 1.0,
            "fp_ratio + sfu_ratio must lie in [0, 1]",
        )
        require(self.personality > 0, "personality must be positive")
        require(self.measurement_noise_cov >= 0, "noise CoV must be >= 0")

    @property
    def int_ratio(self) -> float:
        """Fraction of compute instructions executed on the INT32 pipe."""
        return 1.0 - self.fp_ratio - self.sfu_ratio

    def efficiency_on(self, family: str) -> float:
        """Cycle multiplier for an architecture family (default 1.0)."""
        return self.arch_efficiency.get(family, 1.0)


#: Column order of the 12 PKS execution characteristics (Table II).
PKS_METRIC_NAMES: tuple[str, ...] = (
    "coalesced_global_loads",
    "coalesced_global_stores",
    "coalesced_local_loads",
    "thread_global_loads",
    "thread_global_stores",
    "thread_local_loads",
    "thread_shared_loads",
    "thread_shared_stores",
    "thread_global_atomics",
    "instruction_count",
    "divergence_efficiency",
    "num_thread_blocks",
)


@dataclass
class InvocationBatch:
    """Vectorized descriptors for all invocations of one kernel.

    Arrays are aligned: element ``i`` of every array describes the kernel's
    ``i``-th chronological invocation. ``chrono_index`` gives each
    invocation's global (whole-workload) chronological position, which is
    what "first-chronological" selection policies order by.
    """

    insn_count: np.ndarray  # int64, thread-level dynamic instructions
    cta_size: np.ndarray  # int32, threads per CTA
    num_ctas: np.ndarray  # int64, CTAs in the grid
    coalesced_global_loads: np.ndarray  # int64, transactions
    coalesced_global_stores: np.ndarray  # int64, transactions
    coalesced_local_loads: np.ndarray  # int64, transactions
    thread_global_loads: np.ndarray  # int64
    thread_global_stores: np.ndarray  # int64
    thread_local_loads: np.ndarray  # int64
    thread_shared_loads: np.ndarray  # int64
    thread_shared_stores: np.ndarray  # int64
    thread_global_atomics: np.ndarray  # int64
    divergence_efficiency: np.ndarray  # float64 in (0, 1]
    chrono_index: np.ndarray  # int64, global chronological order

    def __post_init__(self) -> None:
        n = len(self.insn_count)
        for column in self._columns():
            require(len(column) == n, "all invocation columns must align")
        require(bool(np.all(self.insn_count > 0)), "instruction counts must be > 0")
        require(bool(np.all(self.cta_size >= 1)), "CTA size must be >= 1 thread")
        require(bool(np.all(self.num_ctas >= 1)), "grids must have >= 1 CTA")
        require(
            bool(
                np.all(
                    (self.divergence_efficiency > 0)
                    & (self.divergence_efficiency <= 1.0)
                )
            ),
            "divergence efficiency must be in (0, 1]",
        )

    def _columns(self) -> tuple[np.ndarray, ...]:
        return (
            self.insn_count,
            self.cta_size,
            self.num_ctas,
            self.coalesced_global_loads,
            self.coalesced_global_stores,
            self.coalesced_local_loads,
            self.thread_global_loads,
            self.thread_global_stores,
            self.thread_local_loads,
            self.thread_shared_loads,
            self.thread_shared_stores,
            self.thread_global_atomics,
            self.divergence_efficiency,
            self.chrono_index,
        )

    def __len__(self) -> int:
        return len(self.insn_count)

    @property
    def warps_per_cta(self) -> np.ndarray:
        """Warps per CTA at warp granularity."""
        return (self.cta_size + WARP_SIZE - 1) // WARP_SIZE

    @property
    def total_threads(self) -> np.ndarray:
        return self.cta_size.astype(np.int64) * self.num_ctas

    def pks_metric_matrix(self) -> np.ndarray:
        """Return the (n_invocations, 12) matrix of Table II characteristics.

        Column order follows :data:`PKS_METRIC_NAMES`.
        """
        columns = [
            self.coalesced_global_loads,
            self.coalesced_global_stores,
            self.coalesced_local_loads,
            self.thread_global_loads,
            self.thread_global_stores,
            self.thread_local_loads,
            self.thread_shared_loads,
            self.thread_shared_stores,
            self.thread_global_atomics,
            self.insn_count,
            self.divergence_efficiency,
            self.num_ctas,
        ]
        return np.column_stack([np.asarray(c, dtype=np.float64) for c in columns])
