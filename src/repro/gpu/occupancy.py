"""CUDA-style occupancy calculation.

Occupancy — how many CTAs of a kernel fit concurrently on one SM — drives
the timing model's latency-hiding term. The calculation mirrors the CUDA
occupancy calculator: the limiter is the minimum over thread, warp,
register, shared-memory and hardware CTA-slot constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.arch import WARP_SIZE, GpuArchitecture
from repro.gpu.kernel import KernelTraits
from repro.utils.validation import require


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy of one launch configuration on one architecture."""

    ctas_per_sm: int
    active_warps_per_sm: int
    limiter: str  # which resource bounds occupancy

    @property
    def occupancy(self) -> float:
        """Active warps as a fraction of the (caller-supplied) warp limit.

        Stored lazily by :func:`occupancy_for` via ``active_warps_per_sm``;
        callers wanting the ratio should divide by the architecture's
        ``max_warps_per_sm``.
        """
        return float(self.active_warps_per_sm)


def occupancy_for(
    arch: GpuArchitecture, traits: KernelTraits, cta_size: int
) -> OccupancyResult:
    """Compute CTAs resident per SM for one CTA size.

    Raises :class:`ValueError` if a single CTA cannot fit on an SM at all
    (too many threads, registers or shared memory), which on real hardware
    would be a launch failure.
    """
    require(cta_size >= 1, "CTA size must be >= 1")
    warps_per_cta = -(-cta_size // WARP_SIZE)

    limits = {
        "threads": arch.max_threads_per_sm // (warps_per_cta * WARP_SIZE),
        "warps": arch.max_warps_per_sm // warps_per_cta,
        "ctas": arch.max_ctas_per_sm,
    }

    regs_per_cta = traits.regs_per_thread * warps_per_cta * WARP_SIZE
    limits["registers"] = arch.registers_per_sm // max(regs_per_cta, 1)

    if traits.smem_per_cta > 0:
        limits["shared_memory"] = arch.shared_memory_per_sm // traits.smem_per_cta
    else:
        limits["shared_memory"] = arch.max_ctas_per_sm

    limiter = min(limits, key=lambda k: limits[k])
    ctas_per_sm = limits[limiter]
    if ctas_per_sm < 1:
        raise ValueError(
            f"kernel {traits.name!r} with CTA size {cta_size} cannot launch on "
            f"{arch.name}: limited by {limiter}"
        )
    return OccupancyResult(
        ctas_per_sm=int(ctas_per_sm),
        active_warps_per_sm=int(ctas_per_sm * warps_per_cta),
        limiter=limiter,
    )


def occupancy_table(
    arch: GpuArchitecture, traits: KernelTraits, cta_sizes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized occupancy over an array of CTA sizes.

    Returns ``(ctas_per_sm, active_warps_per_sm)`` arrays aligned with
    ``cta_sizes``. CTA sizes repeat heavily within a kernel, so results are
    memoized per distinct size.
    """
    cta_sizes = np.asarray(cta_sizes)
    unique_sizes, inverse = np.unique(cta_sizes, return_inverse=True)
    ctas = np.empty(len(unique_sizes), dtype=np.int64)
    warps = np.empty(len(unique_sizes), dtype=np.int64)
    for i, size in enumerate(unique_sizes):
        result = occupancy_for(arch, traits, int(size))
        ctas[i] = result.ctas_per_sm
        warps[i] = result.active_warps_per_sm
    return ctas[inverse], warps[inverse]
