"""A miniature SASS-like instruction set.

The trace package (Section V-G reproduction) emits and simulates
instruction traces in this ISA. It is a deliberately small subset of SASS
covering the classes the timing model distinguishes: FP32/INT32 arithmetic,
special-function ops, the memory-space load/store families, atomics,
branches and the exit marker.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.utils.validation import require


class OpClass(Enum):
    """Execution-unit class of an opcode."""

    FP32 = "fp32"
    INT32 = "int32"
    SFU = "sfu"
    LOAD_GLOBAL = "ldg"
    STORE_GLOBAL = "stg"
    LOAD_SHARED = "lds"
    STORE_SHARED = "sts"
    LOAD_LOCAL = "ldl"
    STORE_LOCAL = "stl"
    ATOMIC = "atom"
    BRANCH = "bra"
    EXIT = "exit"

    @property
    def is_memory(self) -> bool:
        return self in _MEMORY_CLASSES

    @property
    def is_global_memory(self) -> bool:
        return self in (OpClass.LOAD_GLOBAL, OpClass.STORE_GLOBAL, OpClass.ATOMIC)


_MEMORY_CLASSES = frozenset(
    {
        OpClass.LOAD_GLOBAL,
        OpClass.STORE_GLOBAL,
        OpClass.LOAD_SHARED,
        OpClass.STORE_SHARED,
        OpClass.LOAD_LOCAL,
        OpClass.STORE_LOCAL,
        OpClass.ATOMIC,
    }
)

#: Representative SASS mnemonics per class, used when rendering traces.
MNEMONICS: dict[OpClass, str] = {
    OpClass.FP32: "FFMA",
    OpClass.INT32: "IMAD",
    OpClass.SFU: "MUFU",
    OpClass.LOAD_GLOBAL: "LDG.E",
    OpClass.STORE_GLOBAL: "STG.E",
    OpClass.LOAD_SHARED: "LDS",
    OpClass.STORE_SHARED: "STS",
    OpClass.LOAD_LOCAL: "LDL",
    OpClass.STORE_LOCAL: "STL",
    OpClass.ATOMIC: "ATOM.ADD",
    OpClass.BRANCH: "BRA",
    OpClass.EXIT: "EXIT",
}

_BY_MNEMONIC = {mnemonic: op for op, mnemonic in MNEMONICS.items()}


def opclass_for_mnemonic(mnemonic: str) -> OpClass:
    """Inverse of :data:`MNEMONICS` (raises ``KeyError`` if unknown)."""
    return _BY_MNEMONIC[mnemonic]


@dataclass(frozen=True)
class WarpInstruction:
    """One warp-level dynamic instruction in a trace.

    ``active_mask`` is the 32-bit lane mask; ``address`` is the base
    address of a memory access (0 for non-memory ops); ``dest`` / ``srcs``
    are small register ids used by the scoreboard for dependence tracking.
    """

    opclass: OpClass
    active_mask: int = 0xFFFFFFFF
    address: int = 0
    dest: int = -1  # -1: no destination register
    srcs: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        require(0 <= self.active_mask <= 0xFFFFFFFF, "mask must fit 32 bits")
        require(self.address >= 0, "address must be non-negative")

    @property
    def mnemonic(self) -> str:
        return MNEMONICS[self.opclass]

    @property
    def active_lanes(self) -> int:
        return bin(self.active_mask).count("1")
