"""Command-line interface: regenerate any of the paper's experiments.

Examples::

    sieve-repro table1
    sieve-repro fig3 --cap 50000
    sieve-repro fig9
    sieve-repro sample cactus/lmc --theta 0.4
    sieve-repro validate profile.csv --repair fixed.csv
    sieve-repro --inject-faults drop:0.1,nan:0.05 sample cactus/lmc
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import SieveConfig
from repro.evaluation import experiments
from repro.evaluation.context import build_context
from repro.evaluation.engine import (
    EngineConfig,
    EvaluationEngine,
    ResultCache,
    default_cache_dir,
)
from repro.evaluation.reporting import (
    comparison_row_dict,
    experiment_row_dict,
    format_table,
    percent,
    times,
)
from repro.evaluation.runner import evaluate_method
from repro.methods import MethodRequest, get_method, method_entries
from repro.observability import manifest as obs_manifest
from repro.observability import spans as obs_spans
from repro.observability.spans import span
from repro.robustness import diagnostics
from repro.robustness.faults import FaultPlan, parse_fault_plan
from repro.utils.errors import ReproError
from repro.workloads.catalog import CHALLENGING_SUITES

#: Commands whose handlers honor --inject-faults.
FAULT_AWARE_COMMANDS = frozenset({"fig3", "fig8", "compare", "sample", "attribute"})

#: Commands whose handlers route work through the evaluation engine
#: (and therefore honor --jobs / --no-cache / --cache-dir).
ENGINE_AWARE_COMMANDS = frozenset(
    {"fig3", "fig8", "compare", "fuzz", "serve", "loadgen"}
)

#: Artifacts the current command deposited for --trace-out: the engine it
#: ran through and the comparison rows/aggregates it printed. Reset per
#: ``main()`` invocation; module-level so handlers stay plain functions.
_trace_artifacts: dict = {}


def _fault_plan(args) -> FaultPlan | None:
    # main() warns when the command is not fault-aware; here the flag is
    # simply absent or already vetted.
    if not getattr(args, "inject_faults", None):
        return None
    return parse_fault_plan(args.inject_faults, seed=args.fault_seed)


def _engine(args) -> EvaluationEngine:
    """Build the evaluation engine an engine-aware command will use."""
    from pathlib import Path

    engine = EvaluationEngine(
        EngineConfig(
            jobs=args.jobs,
            use_cache=not args.no_cache,
            cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        )
    )
    _trace_artifacts["engine"] = engine
    return engine


def _report_engine(engine: EvaluationEngine) -> None:
    stats = engine.cache_stats
    if stats is not None:
        print(
            f"[engine] jobs={engine.config.jobs} cache {stats.summary()} "
            f"({engine.cache.directory})",
            file=sys.stderr,
        )


def _print_comparison(rows, aggregates_of) -> None:
    aggregates = aggregates_of(rows)
    _trace_artifacts["workloads"] = [comparison_row_dict(row) for row in rows]
    _trace_artifacts["aggregates"] = {k: float(v) for k, v in aggregates.items()}
    _trace_artifacts["attribution"] = experiments.collect_attributions(rows)
    table_rows = [
        (
            row.workload,
            percent(row.sieve.error),
            percent(row.pks.error),
            f"{row.sieve.cycle_cov:.2f}",
            f"{row.pks.cycle_cov:.2f}",
            times(row.sieve.speedup),
            times(row.pks.speedup),
        )
        for row in rows
    ]
    print(
        format_table(
            ["workload", "sieve_err", "pks_err", "sieve_cov", "pks_cov",
             "sieve_speedup", "pks_speedup"],
            table_rows,
        )
    )
    for name, value in aggregates.items():
        print(f"{name}: {value:.4g}")


def _parse_methods(spec: str, theta: float) -> tuple[MethodRequest, ...]:
    """Turn ``--methods a,b`` into validated method requests.

    Every name must resolve in the registry (a typo gets the typed
    ``UnknownMethodError`` listing what *is* registered); Sieve picks up
    the command's ``--theta``.
    """
    requests = []
    for name in (part.strip() for part in spec.split(",")):
        if not name:
            continue
        get_method(name)
        config = SieveConfig(theta=theta) if name == "sieve" else None
        requests.append(MethodRequest(name, config))
    return tuple(requests)


def _print_experiment(rows, keys) -> None:
    """Generic per-method table for non-default method comparisons."""
    _trace_artifacts["workloads"] = [experiment_row_dict(row) for row in rows]
    _trace_artifacts["attribution"] = experiments.collect_attributions(rows)
    headers = ["workload"]
    for key in keys:
        headers += [f"{key}_err", f"{key}_speedup"]
    table_rows = []
    for row in rows:
        cells: list = [row.workload]
        for key in keys:
            result = row[key]
            cells += [percent(result.error), times(result.speedup)]
        table_rows.append(cells)
    print(format_table(headers, table_rows))


def _cmd_methods(args) -> None:
    """List every registered sampling method (built-ins + entry points)."""
    rows = [
        (
            method.name,
            method.config_schema.__name__ if method.config_schema else "-",
            method.description,
        )
        for method in method_entries()
    ]
    print(format_table(["method", "config", "description"], rows))


def _cmd_table1(args) -> None:
    rows = experiments.table1_inventory(args.cap)
    print(format_table(
        ["suite", "workload", "kernels", "invocations"],
        [(r["suite"], r["workload"], r["kernels"], r["invocations"]) for r in rows],
    ))


def _cmd_table2(args) -> None:
    rows = experiments.table2_metrics()
    print(format_table(
        ["execution characteristic", "PKS", "Sieve"],
        [(r["characteristic"], r["pks"], r["sieve"]) for r in rows],
    ))


def _cmd_fig2(args) -> None:
    rows = experiments.figure2_tiers(max_invocations=args.cap)
    headers = ["workload"] + [k for k in rows[0] if k != "workload"]
    print(format_table(
        headers,
        [[row["workload"]] + [percent(row[h]) for h in headers[1:]] for row in rows],
    ))


def _cmd_fig3(args) -> None:
    engine = _engine(args)
    rows = experiments.compare_methods(
        max_invocations=args.cap, fault_plan=_fault_plan(args), engine=engine
    )
    _print_comparison(rows, experiments.figure3_accuracy)
    _report_engine(engine)


def _cmd_fig5(args) -> None:
    rows = experiments.figure5_selection_policies(max_invocations=args.cap)
    print(format_table(
        ["workload", "pks_first", "pks_random", "pks_centroid", "sieve"],
        [
            (r["workload"], percent(r["pks_first"]), percent(r["pks_random"]),
             percent(r["pks_centroid"]), percent(r["sieve"]))
            for r in rows
        ],
    ))


def _cmd_fig7(args) -> None:
    rows = experiments.figure7_profiling(max_invocations=args.cap)
    print(format_table(
        ["workload", "pks_days", "sieve_days", "speedup"],
        [
            (r["workload"], f"{r['pks_days']:.3f}", f"{r['sieve_days']:.4f}",
             times(r["speedup"]))
            for r in rows
        ],
    ))


def _cmd_fig8(args) -> None:
    engine = _engine(args)
    rows = experiments.figure8_simple_suites(
        args.cap, fault_plan=_fault_plan(args), engine=engine
    )
    _print_comparison(rows, experiments.figure3_accuracy)
    _report_engine(engine)


def _cmd_fig9(args) -> None:
    rows = experiments.figure9_relative(max_invocations=args.cap)
    print(format_table(
        ["workload", "hardware", "sieve", "pks", "sieve_err", "pks_err"],
        [
            (r["workload"], f"{r['hardware']:.3f}", f"{r['sieve']:.3f}",
             f"{r['pks']:.3f}", percent(r["sieve_error"]), percent(r["pks_error"]))
            for r in rows
        ],
    ))


def _cmd_fig10(args) -> None:
    rows = experiments.figure10_theta_sweep(max_invocations=args.cap)
    print(format_table(
        ["theta", "avg_error", "max_error", "hmean_speedup"],
        [
            (r["theta"], percent(r["avg_error"]), percent(r["max_error"]),
             times(r["hmean_speedup"]))
            for r in rows
        ],
    ))


def _cmd_trace(args) -> None:
    """Emit plain-text traces for a workload's Sieve selection (§V-G)."""
    from pathlib import Path

    from repro.core.pipeline import SievePipeline
    from repro.trace.tracer import SelectionTracer, TracerConfig

    context = build_context(args.workload, args.cap)
    selection = SievePipeline(SieveConfig(theta=args.theta)).select(
        context.sieve_table
    )
    reps = selection.representatives[: args.limit] if args.limit else (
        selection.representatives
    )
    import dataclasses

    subset = dataclasses.replace(selection, representatives=reps, strata=())
    tracer = SelectionTracer(
        TracerConfig(max_warps=args.max_warps,
                     max_warp_instructions=args.max_insns)
    )
    paths = tracer.write_selection(context.run, subset, Path(args.out))
    total = sum(p.stat().st_size for p in paths)
    print(f"wrote {len(paths)} trace files ({total / 1e6:.1f} MB) to {args.out}")


def _cmd_trace_export(args) -> int:
    """Export telemetry in a standard format (Chrome trace, JSONL,
    Prometheus). With a workload, runs the requested methods first so the
    exported trace covers a real evaluation; with --from-manifest, reuses
    the spans a previous ``--trace-out`` manifest embedded."""
    from pathlib import Path

    from repro.observability import export as obs_export
    from repro.observability import metrics as obs_metrics

    if args.from_manifest:
        manifest = obs_manifest.RunManifest.load(args.from_manifest)
        records = obs_export.records_from_dicts(manifest.spans)
        snapshot = manifest.metrics
        if args.format != "prometheus" and not records:
            print(
                f"error: {args.from_manifest} embeds no spans "
                "(was it written with --trace-out?)",
                file=sys.stderr,
            )
            return 2
    else:
        if not args.workload:
            print("error: a workload (or --from-manifest) is required",
                  file=sys.stderr)
            return 2
        mark = obs_spans.mark()
        context = build_context(
            args.workload, args.cap, fault_plan=_fault_plan(args)
        )
        for request in _parse_methods(args.methods, args.theta):
            evaluate_method(request.method, context, request.config)
        records = obs_spans.records(since=mark)
        snapshot = obs_metrics.get_registry().snapshot()

    out = Path(args.out) if args.out else None
    if args.format == "chrome":
        out = out or Path("trace.json")
        obs_export.write_chrome_trace(out, records)
    elif args.format == "jsonl":
        out = out or Path("trace.jsonl")
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            obs_export.export_jsonl(records, structural=args.structural)
        )
    else:  # prometheus
        out = out or Path("metrics.prom")
        obs_export.write_prometheus(out, snapshot)
    print(f"wrote {args.format} export to {out}")
    return 0


def _cmd_attribute(args) -> int:
    """Explain a prediction: signed per-kernel/per-stratum error shares."""
    import json as json_module
    from pathlib import Path

    from repro.observability.report import render_attribution

    if args.from_manifest:
        manifest = obs_manifest.RunManifest.load(args.from_manifest)
        entries = list(manifest.attribution)
        if not entries:
            print(
                f"error: {args.from_manifest} carries no attribution entries",
                file=sys.stderr,
            )
            return 2
    else:
        if not args.workload:
            print("error: a workload (or --from-manifest) is required",
                  file=sys.stderr)
            return 2
        context = build_context(
            args.workload, args.cap, fault_plan=_fault_plan(args)
        )
        entries = []
        for request in _parse_methods(args.methods, args.theta):
            result = evaluate_method(request.method, context, request.config)
            if result.attribution is not None:
                entries.append(result.attribution.to_dict())
    _trace_artifacts["attribution"] = entries
    print(render_attribution(entries, top=args.top))
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json_module.dumps(entries, indent=2, sort_keys=True) + "\n")
        print(f"[attribute] JSON written to {path}", file=sys.stderr)
    return 0


def _cmd_simulate(args) -> None:
    """Simulate previously written trace files cycle by cycle (§V-G)."""
    from pathlib import Path

    from repro.evaluation.reporting import format_table
    from repro.trace.encoding import parse_trace
    from repro.trace.simulator import SimulatorConfig, TraceSimulator

    simulator = TraceSimulator(SimulatorConfig(num_sms=args.sms))
    rows = []
    for path in sorted(Path(args.directory).glob("*.trace")):
        result = simulator.simulate(parse_trace(path.read_text()))
        rows.append(
            (path.name, result.cycles, result.warp_instructions,
             f"{result.ipc:.1f}", f"{result.l1_hit_rate:.2f}",
             result.dram_requests)
        )
    if not rows:
        print(f"no .trace files in {args.directory}")
        return
    print(format_table(
        ["trace", "cycles", "warp_insns", "ipc", "l1_hit", "dram"], rows
    ))


def _cmd_sample(args) -> int:
    if args.feed is not None:
        return _sample_feed(args)
    if args.workload is None:
        print("sample: a workload label (or --from FEED) is required",
              file=sys.stderr)
        return 2
    if args.method:
        requests = _parse_methods(args.method, args.theta)
    else:
        requests = _parse_methods("sieve,pks", args.theta)
    context = build_context(args.workload, args.cap, fault_plan=_fault_plan(args))
    print(f"workload        : {context.label}")
    print(f"invocations     : {len(context.sieve_table)}")
    print(f"golden cycles   : {context.golden.total_cycles:,}")
    attributions = []
    for request in requests:
        if args.stream:
            from repro.evaluation.runner import evaluate_method_streaming

            result = evaluate_method_streaming(
                request.method,
                context,
                request.config,
                chunk_rows=args.chunk_rows,
                reservoir_rows=args.reservoir,
            )
        else:
            result = evaluate_method(request.method, context, request.config)
        if result.attribution is not None:
            attributions.append(result.attribution.to_dict())
        print(
            f"{result.method:12s}: {result.num_representatives:4d} reps, "
            f"error {percent(result.error)}, speedup {times(result.speedup)}"
        )
    if args.stream:
        _print_stream_gauges()
    _trace_artifacts["attribution"] = attributions
    return 0


def _print_stream_gauges() -> None:
    from repro.observability import metrics as obs_metrics

    gauges = obs_metrics.get_registry().gauges
    high_water = gauges.get("streaming.high_water_rows")
    if high_water is not None:
        print(f"stream high-water: {int(high_water)} resident rows")


def _sample_feed(args) -> int:
    """Stream a CSV/JSONL profile feed (file or stdin) through a method."""
    from repro.profiling.csv_io import ProfileTableReader
    from repro.streaming.base import StreamContext

    if not args.stream:
        print("sample: --from requires --stream", file=sys.stderr)
        return 2
    method_names = [
        name.strip() for name in (args.method or "sieve").split(",") if name.strip()
    ]
    if len(method_names) != 1:
        print("sample: feed mode streams exactly one method", file=sys.stderr)
        return 2
    method = get_method(method_names[0])
    config = SieveConfig(theta=args.theta) if method.name == "sieve" else None
    reader = ProfileTableReader(
        args.feed, chunk_rows=args.chunk_rows, fmt=args.format
    )
    stream = method.begin_stream(
        StreamContext(
            workload=reader.workload,
            reservoir_rows=args.reservoir,
            collect_events=args.verbose,
        ),
        config,
    )
    for chunk in reader:
        for event in stream.observe(chunk):
            print(
                f"{event.kind:7s} @row {event.rows_seen:>9d}  "
                f"{event.group:16s} {event.kernel_name} "
                f"row={event.row} inv={event.invocation_id} "
                f"weight={event.weight:.4f}"
            )
    selection = stream.finalize()
    mode = "buffered" if not method.streams_incrementally else "incremental"
    print(f"workload        : {selection.workload}")
    print(f"invocations     : {selection.num_invocations:,} ({mode} stream)")
    print(f"total insns     : {selection.total_instructions:,}")
    print(
        f"{selection.method:12s}: {selection.num_representatives:4d} reps "
        f"from {reader.rows_read:,} streamed rows"
    )
    if args.verbose:
        for rep in selection.representatives:
            print(
                f"  pick {rep.group:16s} {rep.kernel_name} "
                f"row={rep.row} inv={rep.invocation_id} "
                f"weight={rep.weight:.4f}"
            )
    _print_stream_gauges()
    return 0


def _cmd_validate(args) -> int:
    """Validate (and optionally repair) a profile CSV (robustness tool)."""
    from repro.profiling.csv_io import write_profile_csv
    from repro.robustness.validate import repair_table, validate_profile_csv

    report, table = validate_profile_csv(args.csv)
    print(report.summary())
    shown = report.issues[: args.limit] if args.limit else report.issues
    if shown:
        print(format_table(
            ["severity", "kind", "row", "kernel", "message"],
            [
                (i.severity, i.kind,
                 "-" if i.row is None else i.row,
                 i.kernel or "-", i.message)
                for i in shown
            ],
        ))
        if len(shown) < len(report.issues):
            print(f"... and {len(report.issues) - len(shown)} more issues")
    if args.repair:
        if table is None:
            print("nothing salvageable to repair", file=sys.stderr)
            return 1
        result = repair_table(table)
        write_profile_csv(result.table, args.repair)
        print(
            f"repaired table written to {args.repair} "
            f"({len(result.table)} rows, {len(result.actions)} repair actions)"
        )
        for action in result.actions[: args.limit or len(result.actions)]:
            print(f"  {action.kind} row {action.row} [{action.kernel}]: "
                  f"{action.detail}")
    return 0 if report.ok else 1


def _cmd_compare(args) -> None:
    """Method scorecard on chosen workloads (default: Sieve vs PKS, fig3)."""
    engine = _engine(args)
    requests = _parse_methods(args.methods, args.theta)
    keys = [request.key for request in requests]
    if keys == ["sieve", "pks"]:
        # The paper's headline comparison keeps its richer table.
        rows = experiments.compare_methods(
            labels=args.workloads or None,
            max_invocations=args.cap,
            theta=args.theta,
            fault_plan=_fault_plan(args),
            engine=engine,
        )
        _print_comparison(rows, experiments.figure3_accuracy)
    else:
        spec = experiments.ExperimentSpec(
            name="cli-compare",
            methods=requests,
            labels=tuple(args.workloads or ()),
            suites=() if args.workloads else CHALLENGING_SUITES,
            max_invocations=args.cap,
            fault_plan=_fault_plan(args),
        )
        _print_experiment(experiments.run_experiment(spec, engine), keys)
    _report_engine(engine)


def _cmd_report(args) -> int:
    """Render run manifests; diff exactly two and gate on regressions.

    With ``--against <rev>`` the baseline comes from the performance
    version store instead: every stored run of that revision is compared
    statistically against the given manifest(s).
    """
    from repro.observability.manifest import (
        RunManifest,
        diff_manifests,
        regression_failures,
    )
    from repro.observability.report import render_diff, render_manifest

    manifests = [RunManifest.load(path) for path in args.manifests]
    if args.against:
        return _report_against(args, manifests)
    if len(manifests) == 2:
        regressions = diff_manifests(
            manifests[0], manifests[1], max_slowdown=args.max_slowdown
        )
        print(render_diff(manifests[0], manifests[1], regressions))
        return 1 if regression_failures(regressions) else 0
    for index, manifest in enumerate(manifests):
        if index:
            print()
        print(render_manifest(manifest))
    return 0


def _report_against(args, manifests) -> int:
    """Statistical gate of the given manifests vs a stored revision."""
    from pathlib import Path

    from repro.observability.manifest import RunManifest
    from repro.perfstore import (
        PerfStore,
        figure_from_command,
        gate_manifests,
        render_gate_report,
        store_from_env,
    )
    from repro.utils.errors import PerfStoreError

    figure = args.figure or figure_from_command(manifests[0].command)
    store = PerfStore(args.store) if args.store else store_from_env()
    baseline: list = []
    label = args.against
    try:
        version = store.resolve(args.against)
        baseline = [run.manifest for run in store.runs(version, figure)]
        label = version[:12]
    except PerfStoreError as exc:
        diagnostics.emit("perfstore", str(exc), severity="info")
    if not baseline:
        fallback = Path("benchmarks/baselines") / f"BENCH_{figure}.json"
        if not fallback.exists():
            print(
                f"error: revision {args.against!r} has no stored {figure} "
                f"profile and no committed fallback at {fallback}",
                file=sys.stderr,
            )
            return 2
        diagnostics.emit(
            "perfstore",
            f"revision {args.against!r} has no stored {figure} profile; "
            f"falling back to {fallback}",
            severity="info",
        )
        baseline = [RunManifest.load(fallback)]
        label = str(fallback)
    report = gate_manifests(
        baseline,
        manifests,
        alpha=args.alpha,
        min_ratio=args.min_ratio,
        min_seconds=args.min_seconds,
        fallback_slowdown=args.max_slowdown,
        baseline_label=label,
        current_label=f"current ({len(manifests)} run(s))",
        figure=figure,
    )
    print(render_gate_report(report, verbose=args.verbose))
    return 1 if report.regressed else 0


def _perf_store(args):
    from repro.perfstore import PerfStore, store_from_env

    return PerfStore(args.store) if args.store else store_from_env()


def _cmd_perf(args) -> int:
    """Inspect the performance version store (list/ingest/log/bisect-hint)."""
    from repro.observability.manifest import RunManifest
    from repro.perfstore import (
        bisect_hint,
        perf_log,
        render_bisect_hint,
        render_perf_log,
    )

    store = _perf_store(args)
    if args.perf_command == "list":
        rows = []
        for version, figures in store.summary().items():
            for figure, runs in sorted(figures.items()):
                rows.append((version[:12], figure, runs))
        if not rows:
            print(f"(empty store at {store.root})")
            return 0
        print(format_table(["version", "figure", "runs"], rows))
        return 0
    if args.perf_command == "ingest":
        for path in args.manifests:
            receipt = store.ingest(
                RunManifest.load(path),
                figure=args.figure,
                version=args.version,
            )
            dedup = "" if receipt.stored_object else " (object deduplicated)"
            print(
                f"ingested {path} as {receipt.figure} run {receipt.seq} of "
                f"{receipt.version[:12]}{dedup}"
            )
        return 0
    if args.perf_command == "log":
        entries = perf_log(
            store, args.figure, selector=args.metric, limit=args.limit
        )
        print(f"{args.figure} [{args.metric}] at {store.root}:")
        print(render_perf_log(entries))
        return 0
    # bisect-hint
    hint = bisect_hint(
        store,
        args.figure,
        selector=args.metric,
        alpha=args.alpha,
        min_ratio=args.min_ratio,
        min_abs=args.min_seconds,
    )
    print(render_bisect_hint(hint))
    return 1 if hint["first_regression"] else 0


def _cmd_fuzz_promote(args) -> int:
    """Promote shrunk fuzz findings into the adversarial suite."""
    from repro.perfstore import promote_findings, render_promotion

    promoted = promote_findings(
        args.findings,
        engine=_engine(args),
        catalog_path=args.catalog,
        limit=args.limit,
        min_score=args.min_score,
    )
    print(render_promotion(promoted))
    return 0


def _cmd_fuzz(args) -> int:
    """Run (or resume) a fuzzing campaign; or verify the committed suite."""
    from pathlib import Path

    from repro.evaluation.engine import RetryPolicy
    from repro.fuzz import FuzzConfig, run_campaign
    from repro.fuzz.campaign import load_findings
    from repro.observability.report import render_findings
    from repro.workloads.adversarial import ADVERSARIAL_ENTRIES, verify_suite

    if args.verify_suite:
        rows = verify_suite(engine=_engine(args))
        print(format_table(
            ["workload", "method", "expected", "actual", "ok"],
            [
                (r["label"], r["method"], f"{r['expected']:.6f}",
                 f"{r['actual']:.6f}", "yes" if r["ok"] else "NO")
                for r in rows
            ],
        ))
        bad = [r for r in rows if not r["ok"]]
        if bad:
            print(
                f"error: {len(bad)} pinned adversarial error(s) no longer "
                "reproduce — a sampler or the generator changed behaviour",
                file=sys.stderr,
            )
            return 1
        print(f"{len(ADVERSARIAL_ENTRIES)} adversarial entries reproduce")
        return 0

    out = Path(args.out)
    engine = EvaluationEngine(
        EngineConfig(
            jobs=args.jobs,
            use_cache=not args.no_cache,
            cache_dir=Path(args.cache_dir) if args.cache_dir else None,
            quarantine_path=out / "quarantine.json",
            retry=RetryPolicy(
                max_attempts=args.max_attempts,
                deadline_s=args.deadline,
                backoff_base_s=0.01,
            ),
        )
    )
    _trace_artifacts["engine"] = engine
    config = FuzzConfig(
        seed=args.seed,
        budget=args.budget,
        max_invocations=args.max_invocations,
        threshold=args.threshold,
        top_k=args.top_k,
        fault_rate=args.fault_rate,
        chaos=args.chaos,
        shrink_steps=args.shrink_steps,
        jobs=args.jobs,
        deadline_s=args.deadline,
        max_attempts=args.max_attempts,
        out_dir=out,
        stop_after=args.stop_after,
    )
    result = run_campaign(config, engine=engine, resume=args.resume)
    if result.stopped_early:
        print(
            f"campaign paused: {result.scored}/{args.budget} candidates "
            f"scored (checkpoint: {result.checkpoint_path}); continue with "
            "--resume"
        )
        _report_engine(engine)
        return 0
    print(render_findings(load_findings(result.findings_path)))
    print(f"findings written to {result.findings_path}")
    _report_engine(engine)
    return 0


def _cmd_cache(args) -> int:
    """Inspect or clear the on-disk evaluation result cache."""
    from pathlib import Path

    directory = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    cache = ResultCache(directory)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {directory}")
        return 0
    entries = cache.entries()
    print(f"cache directory : {directory}")
    print(f"entries         : {len(entries)}")
    print(f"size            : {cache.size_bytes() / 1e6:.2f} MB")
    return 0


def _cmd_serve(args) -> int:
    """Run the sampling service in the foreground until interrupted."""
    import asyncio

    from repro.service.server import ServiceConfig, SieveService

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        window_s=args.window_s,
        max_batch=args.max_batch,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        deadline_s=args.deadline_s,
    )
    service = SieveService(config)
    _trace_artifacts["engine"] = service.engine

    async def _run() -> None:
        server = asyncio.create_task(service.serve())
        while service.port is None and not server.done():
            await asyncio.sleep(0.01)
        if service.port is not None:
            print(
                f"[serve] listening on http://{service.host}:{service.port} "
                f"(jobs={config.jobs}, window={config.window_s * 1000:.1f}ms)",
                file=sys.stderr,
            )
        await server

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("[serve] stopped", file=sys.stderr)
    return 0


def _cmd_loadgen(args) -> int:
    """Generate/replay a request schedule against a running service."""
    from repro.service import loadgen
    from repro.service.server import ServiceConfig, start_in_thread
    from repro.workloads.catalog import specs_for_suites

    if args.trace:
        requests = loadgen.load_trace(args.trace)
    else:
        if args.workloads:
            workloads = tuple(
                label.strip() for label in args.workloads.split(",") if label.strip()
            )
        else:
            workloads = tuple(
                f"{spec.suite}/{spec.name}"
                for spec in specs_for_suites(CHALLENGING_SUITES)
            )
        mix = loadgen.RequestMix(
            workloads=workloads,
            methods=tuple(
                name.strip() for name in args.methods.split(",") if name.strip()
            ),
            cap=args.cap if args.cap is not None else 400,
            predict_fraction=args.predict_fraction,
        )
        requests = loadgen.generate_requests(
            loadgen.parse_pattern(args.pattern), mix, args.requests, args.seed
        )
    if args.record:
        path = loadgen.save_trace(requests, args.record)
        print(f"[loadgen] trace written to {path}", file=sys.stderr)
    if args.dry_run:
        print(f"[loadgen] generated {len(requests)} requests (dry run)")
        return 0

    handle = None
    if args.spawn:
        handle = start_in_thread(
            ServiceConfig(
                jobs=args.jobs,
                use_cache=not args.no_cache,
                cache_dir=args.cache_dir,
            )
        )
        host, port = handle.host, handle.port
        print(f"[loadgen] spawned service at {handle.url}", file=sys.stderr)
    else:
        if args.port is None:
            print("error: --port is required without --spawn", file=sys.stderr)
            return 2
        host, port = args.host, args.port
    try:
        report = loadgen.run_loadgen(
            host,
            port,
            requests,
            clients=args.clients,
            open_loop=args.open_loop,
            timeout_s=args.timeout_s,
        )
    finally:
        if handle is not None:
            handle.stop()
    for key, value in report.summary().items():
        print(f"{key}: {value}")
    if args.bench_out:
        manifest = report.to_manifest()
        path = manifest.save(args.bench_out)
        print(f"[loadgen] manifest written to {path}", file=sys.stderr)
    return 1 if report.status_counts()["http_5xx"] else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sieve-repro",
        description="Regenerate experiments from the Sieve paper (ISPASS 2023)",
    )
    parser.add_argument(
        "--cap",
        type=int,
        default=None,
        help="cap invocations per workload (default: full Table I scale)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for engine-aware commands (fig3, fig8); "
        "1 = serial (default)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk evaluation result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="evaluation result cache location (default: "
        "$SIEVE_REPRO_CACHE_DIR or ~/.cache/sieve-repro)",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="MODE:RATE[,MODE:RATE...]",
        default=None,
        help="corrupt profiles/golden reference before sampling "
        "(modes: drop, truncate, duplicate, nan, negative, cycle_noise, "
        "clock_drift, zero_cycles); honored by fig3, fig8 and sample",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for --inject-faults (default 0)",
    )
    parser.add_argument(
        "--quiet-diagnostics",
        action="store_true",
        help="suppress degraded-path diagnostics on stderr",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a run manifest (per-stage timings, accuracy rows, "
        "cache stats, attribution, raw spans) to PATH as JSON; render it "
        "with 'sieve-repro report', export it with 'trace export'",
    )
    parser.add_argument(
        "--stream-spans",
        metavar="PATH",
        default=None,
        help="stream finished spans to PATH as JSONL while the command "
        "runs (crash-safe prefix; worker spans merge in task order)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    commands = {
        "table1": _cmd_table1,
        "table2": _cmd_table2,
        "fig2": _cmd_fig2,
        "fig3": _cmd_fig3,
        "fig5": _cmd_fig5,
        "fig7": _cmd_fig7,
        "fig8": _cmd_fig8,
        "fig9": _cmd_fig9,
        "fig10": _cmd_fig10,
    }
    for name, handler in commands.items():
        sub.add_parser(name).set_defaults(handler=handler)
    sample = sub.add_parser("sample", help="run sampling methods on one workload")
    sample.add_argument("workload", nargs="?", default=None)
    sample.add_argument("--theta", type=float, default=0.4)
    sample.add_argument(
        "--method",
        default=None,
        help="registered method name(s), comma-separated "
        "(default: sieve,pks; see 'sieve-repro methods list')",
    )
    sample.add_argument(
        "--stream", action="store_true",
        help="consume the profile incrementally through the method's "
        "begin_stream surface instead of one batch select",
    )
    sample.add_argument(
        "--chunk-rows", type=int, default=4096, metavar="N",
        help="rows per streamed chunk (default 4096)",
    )
    sample.add_argument(
        "--reservoir", type=int, default=None, metavar="N",
        help="bound the per-kernel reservoir to N retained rows "
        "(default: unbounded, which keeps streaming == batch)",
    )
    sample.add_argument(
        "--from", dest="feed", default=None, metavar="FEED",
        help="stream a CSV/JSONL profile feed from FEED ('-' for stdin) "
        "instead of a catalog workload; implies a single method "
        "(default sieve)",
    )
    sample.add_argument(
        "--format", choices=("csv", "jsonl"), default=None,
        help="feed format (default: sniffed from suffix / first byte)",
    )
    sample.add_argument(
        "--verbose", action="store_true",
        help="print emit/retract events as the stream progresses",
    )
    sample.set_defaults(handler=_cmd_sample)

    compare = sub.add_parser(
        "compare",
        help="method scorecard on chosen workloads "
        "(default: Sieve vs PKS on the challenging suites, i.e. fig3)",
    )
    compare.add_argument(
        "workloads", nargs="*",
        help="workload labels (default: all challenging workloads)",
    )
    compare.add_argument("--theta", type=float, default=0.4)
    compare.add_argument(
        "--methods",
        default="sieve,pks",
        help="comma-separated registered method names to compare "
        "(default: sieve,pks; see 'sieve-repro methods list')",
    )
    compare.set_defaults(handler=_cmd_compare)

    methods = sub.add_parser(
        "methods", help="inspect the sampling-method registry"
    )
    methods.add_argument(
        "methods_command",
        nargs="?",
        choices=("list",),
        default="list",
        help="list (default): every registered method with its config schema",
    )
    methods.set_defaults(handler=_cmd_methods)

    report = sub.add_parser(
        "report",
        help="render run manifests; with exactly two, diff them and "
        "exit 1 on regressions; with --against REV, gate statistically "
        "against the performance store",
    )
    report.add_argument(
        "manifests", nargs="+",
        help="manifest JSON file(s); two = baseline then current; with "
        "--against, all are repeated runs of the current code",
    )
    report.add_argument(
        "--max-slowdown", type=float, default=1.25,
        help="per-stage wall-time ratio tolerated when diffing, and the "
        "single-sample fallback limit for --against (default 1.25)",
    )
    report.add_argument(
        "--against", metavar="REV", default=None,
        help="gate the manifests against the stored runs of REV (commit "
        "SHA, prefix or symbolic rev) from the performance store",
    )
    report.add_argument(
        "--store", default=None,
        help="performance store directory (default: $SIEVE_PERFSTORE_DIR "
        "or ~/.cache/sieve-repro/perfstore)",
    )
    report.add_argument(
        "--figure", default=None,
        help="store figure key (default: inferred from the manifest command)",
    )
    report.add_argument(
        "--alpha", type=float, default=0.05,
        help="rank-test significance level for --against (default 0.05)",
    )
    report.add_argument(
        "--min-ratio", type=float, default=1.10,
        help="practical-significance floor: median slowdown ratio "
        "(default 1.10)",
    )
    report.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="practical-significance floor: absolute median slowdown "
        "(default 0.05)",
    )
    report.add_argument(
        "--verbose", action="store_true",
        help="also list statistically indistinguishable metrics",
    )
    report.set_defaults(handler=_cmd_report)

    perf = sub.add_parser(
        "perf",
        help="performance version store: list stored profiles, ingest "
        "manifests, walk a metric's lineage, locate regressions",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)
    perf_list = perf_sub.add_parser(
        "list", help="stored versions, figures and run counts"
    )
    perf_ingest = perf_sub.add_parser(
        "ingest", help="record manifest file(s) into the store"
    )
    perf_ingest.add_argument("manifests", nargs="+",
                             help="manifest JSON file(s) to ingest")
    perf_ingest.add_argument(
        "--figure", default=None,
        help="figure key (default: inferred from each manifest's command)",
    )
    perf_ingest.add_argument(
        "--version", default=None,
        help="version to file the runs under (default: "
        "$SIEVE_PERFSTORE_VERSION or git HEAD)",
    )
    perf_log_p = perf_sub.add_parser(
        "log", help="one metric's distribution per stored version, oldest first"
    )
    perf_hint = perf_sub.add_parser(
        "bisect-hint",
        help="first version-to-version transition where the metric "
        "regressed (exit 1 when one is found)",
    )
    for p in (perf_list, perf_ingest, perf_log_p, perf_hint):
        p.add_argument(
            "--store", default=None,
            help="store directory (default: $SIEVE_PERFSTORE_DIR or "
            "~/.cache/sieve-repro/perfstore)",
        )
    for p in (perf_log_p, perf_hint):
        p.add_argument("--figure", default="fig3",
                       help="store figure key (default fig3)")
        p.add_argument(
            "--metric", default="total",
            help="metric selector: total, stage:<name>, agg:<key> or "
            "workload:<name>.<key> (default total)",
        )
    perf_log_p.add_argument("--limit", type=int, default=0,
                            help="newest N versions only (0 = all)")
    perf_hint.add_argument("--alpha", type=float, default=0.05)
    perf_hint.add_argument("--min-ratio", type=float, default=1.10)
    perf_hint.add_argument("--min-seconds", type=float, default=0.02)
    perf.set_defaults(handler=_cmd_perf)

    trace = sub.add_parser(
        "trace",
        help="selection traces and telemetry exports "
        "('trace <workload>' still writes selection traces)",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    selection = trace_sub.add_parser(
        "selection", help="write trace files for a workload's Sieve selection"
    )
    selection.add_argument("workload")
    selection.add_argument("--out", default="traces")
    selection.add_argument("--theta", type=float, default=0.4)
    selection.add_argument("--limit", type=int, default=None,
                           help="trace only the first N representatives")
    selection.add_argument("--max-warps", type=int, default=16)
    selection.add_argument("--max-insns", type=int, default=512)
    selection.set_defaults(handler=_cmd_trace)

    export = trace_sub.add_parser(
        "export",
        help="export telemetry: Chrome/Perfetto trace, canonical JSONL "
        "or Prometheus textfile",
    )
    export.add_argument(
        "workload", nargs="?", default=None,
        help="workload to evaluate before exporting (omit with --from-manifest)",
    )
    export.add_argument(
        "--format", choices=("chrome", "jsonl", "prometheus"), default="chrome"
    )
    export.add_argument(
        "--out", default=None,
        help="output path (default: trace.json / trace.jsonl / metrics.prom)",
    )
    export.add_argument(
        "--structural", action="store_true",
        help="jsonl only: drop timings/ids, leaving run-invariant structure",
    )
    export.add_argument("--theta", type=float, default=0.4)
    export.add_argument(
        "--methods", default="sieve,pks",
        help="methods to run before exporting (default: sieve,pks)",
    )
    export.add_argument(
        "--from-manifest", default=None,
        help="export from the spans/metrics a --trace-out manifest embedded",
    )
    export.set_defaults(handler=_cmd_trace_export)

    attribute = sub.add_parser(
        "attribute",
        help="decompose a method's prediction error into signed per-kernel "
        "and per-stratum contributions",
    )
    attribute.add_argument(
        "workload", nargs="?", default=None,
        help="workload to attribute (omit with --from-manifest)",
    )
    attribute.add_argument("--theta", type=float, default=0.4)
    attribute.add_argument(
        "--methods", default="sieve,pks",
        help="comma-separated registered method names (default: sieve,pks)",
    )
    attribute.add_argument(
        "--top", type=int, default=8,
        help="rows per table, ranked by |contribution| (default 8)",
    )
    attribute.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the attribution entries to PATH as JSON",
    )
    attribute.add_argument(
        "--from-manifest", default=None,
        help="render the attributions a --trace-out manifest recorded",
    )
    attribute.set_defaults(handler=_cmd_attribute)

    simulate = sub.add_parser(
        "simulate", help="cycle-level simulation of written trace files"
    )
    simulate.add_argument("directory")
    simulate.add_argument("--sms", type=int, default=2)
    simulate.set_defaults(handler=_cmd_simulate)

    validate = sub.add_parser(
        "validate", help="validate (and optionally repair) a profile CSV"
    )
    validate.add_argument("csv", help="profile CSV to validate")
    validate.add_argument(
        "--repair", metavar="OUT", default=None,
        help="write a repaired copy of the profile to OUT",
    )
    validate.add_argument(
        "--limit", type=int, default=50,
        help="max issues/actions to print (0 = all; default 50)",
    )
    validate.set_defaults(handler=_cmd_validate)

    fuzz = sub.add_parser(
        "fuzz",
        help="seeded adversarial fuzzing of the workload generator "
        "(mutate specs, score sampler error + stratification health, "
        "shrink the worst cases)",
    )
    fuzz.add_argument("--seed", default="sieve-fuzz",
                      help="campaign seed (default: sieve-fuzz)")
    fuzz.add_argument("--budget", type=int, default=32,
                      help="candidates to generate and score (default 32)")
    fuzz.add_argument("--threshold", type=float, default=0.12,
                      help="score above which a candidate is a finding "
                      "(default 0.12)")
    fuzz.add_argument("--top-k", type=int, default=3,
                      help="findings to shrink and report (default 3)")
    fuzz.add_argument("--max-invocations", type=int, default=2000,
                      help="invocation cap per candidate (default 2000)")
    fuzz.add_argument("--fault-rate", type=float, default=0.35,
                      help="probability a candidate composes a data-fault "
                      "plan (default 0.35)")
    fuzz.add_argument("--chaos", metavar="MODE:RATE[,...]", default=None,
                      help="task-surface chaos layered on every candidate "
                      "(modes: hang, crash, task_error) to exercise the "
                      "engine's isolation")
    fuzz.add_argument("--shrink-steps", type=int, default=24,
                      help="max engine evaluations per shrink (default 24)")
    fuzz.add_argument("--deadline", type=float, default=120.0,
                      help="per-attempt wall-clock deadline in seconds "
                      "(default 120)")
    fuzz.add_argument("--max-attempts", type=int, default=3,
                      help="attempts per task before it counts as failed "
                      "(default 3)")
    fuzz.add_argument("--out", default="fuzz-out",
                      help="campaign directory for checkpoint/findings/"
                      "quarantine (default fuzz-out)")
    fuzz.add_argument("--resume", action="store_true",
                      help="continue from the checkpoint in --out")
    fuzz.add_argument("--stop-after", type=int, default=None,
                      help="pause after scoring N new candidates "
                      "(checkpointing; mainly for testing --resume)")
    fuzz.add_argument("--verify-suite", action="store_true",
                      help="re-evaluate the committed adversarial suite "
                      "against its pinned errors and exit (1 on drift)")
    fuzz.set_defaults(handler=_cmd_fuzz, fuzz_command=None)
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command", required=False)
    promote = fuzz_sub.add_parser(
        "promote",
        help="promote a campaign's shrunk findings into the committed "
        "adversarial suite (re-pins errors, records provenance)",
    )
    promote.add_argument(
        "--findings", required=True,
        help="findings.json written by a completed campaign",
    )
    promote.add_argument(
        "--catalog", default=None,
        help="promoted-catalog path (default: adversarial_promoted.json "
        "next to the adversarial module, or $SIEVE_ADVERSARIAL_PROMOTED)",
    )
    promote.add_argument(
        "--limit", type=int, default=0,
        help="promote at most N findings, highest score first (0 = all)",
    )
    promote.add_argument(
        "--min-score", type=float, default=0.0,
        help="skip findings whose shrunk score is below this (default 0)",
    )
    promote.set_defaults(handler=_cmd_fuzz_promote)

    serve = sub.add_parser(
        "serve",
        help="run the sampling-as-a-service HTTP server "
        "(POST /v1/select, /v1/predict; GET /v1/methods, /v1/healthz, "
        "/v1/metrics)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8712,
        help="listen port (default 8712; 0 = ephemeral)",
    )
    serve.add_argument(
        "--window-s", type=float, default=0.005, dest="window_s",
        help="micro-batching window in seconds (default 0.005)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=32,
        help="max engine tasks per batch (default 32)",
    )
    serve.add_argument(
        "--deadline-s", type=float, default=120.0, dest="deadline_s",
        help="per-attempt task deadline in seconds (default 120)",
    )
    serve.set_defaults(handler=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive the service with seeded synthetic traffic or a "
        "recorded trace and report throughput/latency",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument(
        "--port", type=int, default=None,
        help="target service port (required unless --spawn)",
    )
    loadgen.add_argument(
        "--spawn", action="store_true",
        help="boot a private service in-process for the run",
    )
    loadgen.add_argument(
        "--pattern", default="poisson:50",
        help="arrival pattern: static:RATE, poisson:RATE or "
        "dynamic:RATE@FRAC,... (default poisson:50)",
    )
    loadgen.add_argument(
        "--requests", type=int, default=64,
        help="number of requests to generate (default 64)",
    )
    loadgen.add_argument(
        "--clients", type=int, default=8,
        help="concurrent client connections (default 8)",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--workloads", default=None,
        help="comma-separated catalog labels "
        "(default: the challenging suites)",
    )
    loadgen.add_argument(
        "--methods", default="sieve,pks",
        help="comma-separated method names to mix (default sieve,pks)",
    )
    loadgen.add_argument(
        "--predict-fraction", type=float, default=0.5, dest="predict_fraction",
        help="fraction of requests hitting /v1/predict (default 0.5)",
    )
    loadgen.add_argument(
        "--open-loop", action="store_true", dest="open_loop",
        help="honor the schedule's arrival offsets instead of "
        "closed-loop max pressure",
    )
    loadgen.add_argument(
        "--timeout-s", type=float, default=60.0, dest="timeout_s",
        help="per-request client timeout (default 60)",
    )
    loadgen.add_argument(
        "--trace", default=None,
        help="replay a recorded JSONL trace instead of generating",
    )
    loadgen.add_argument(
        "--record", default=None,
        help="save the generated schedule as a JSONL trace",
    )
    loadgen.add_argument(
        "--dry-run", action="store_true", dest="dry_run",
        help="generate (and optionally --record) without running",
    )
    loadgen.add_argument(
        "--bench-out", default=None, dest="bench_out",
        help="write a BENCH_service-style manifest to PATH",
    )
    loadgen.set_defaults(handler=_cmd_loadgen)

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk evaluation result cache"
    )
    cache.add_argument(
        "cache_command",
        nargs="?",
        choices=("stats", "clear"),
        default="stats",
        help="stats (default) or clear",
    )
    cache.set_defaults(handler=_cmd_cache)
    return parser


def _trace_config(args) -> dict:
    """The JSON-able slice of parsed args worth pinning in a manifest."""
    config = {"cap": args.cap, "jobs": args.jobs, "cache": not args.no_cache}
    for key in ("theta", "workload", "workloads", "inject_faults", "fault_seed"):
        value = getattr(args, key, None)
        if value:
            config[key] = value
    return config


def _write_manifest(args, captured: list[dict]) -> None:
    from datetime import datetime, timezone

    manifest = obs_manifest.collect_manifest(
        f"sieve-repro {args.command}",
        config=_trace_config(args),
        engine=_trace_artifacts.get("engine"),
        workloads=_trace_artifacts.get("workloads", ()),
        aggregates=_trace_artifacts.get("aggregates"),
        diagnostics=captured,
        since=_trace_artifacts["spans_mark"],
        events_since=_trace_artifacts["events_mark"],
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        include_spans=True,
        attribution=_trace_artifacts.get("attribution", ()),
    )
    path = manifest.save(args.trace_out)
    print(f"[trace] manifest written to {path}", file=sys.stderr)
    # Auto-record into the performance store when SIEVE_PERFSTORE_DIR is
    # set — every traced run becomes a data point for the statistical gate.
    from repro.perfstore.store import maybe_record

    maybe_record(manifest)


#: Global flags that consume the next token; the trace shim must skip
#: their values when hunting for the subcommand position.
_VALUE_FLAGS = frozenset(
    {
        "--cap", "--jobs", "--cache-dir", "--inject-faults", "--fault-seed",
        "--trace-out", "--stream-spans",
    }
)


def _shim_trace_argv(argv: list[str]) -> list[str]:
    """Keep ``trace <workload>`` working now that trace has subcommands.

    ``trace`` grew ``selection``/``export`` subparsers; historical usage
    (``sieve-repro trace cactus/gru --out dir``) is rewritten to
    ``trace selection ...`` before parsing.
    """
    index = 0
    while index < len(argv):
        token = argv[index]
        if token in _VALUE_FLAGS:
            index += 2
            continue
        if token.startswith("-"):
            index += 1
            continue
        if token == "trace":
            following = argv[index + 1] if index + 1 < len(argv) else None
            if following not in ("selection", "export", "-h", "--help", None):
                return argv[: index + 1] + ["selection"] + argv[index + 1 :]
        return argv
    return argv


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    args = build_parser().parse_args(_shim_trace_argv(argv))
    unsubscribe = None
    if not args.quiet_diagnostics:
        unsubscribe = diagnostics.subscribe(
            lambda record: print(str(record), file=sys.stderr)
        )
    captured: list[dict] = []
    capture_unsubscribe = diagnostics.subscribe(
        lambda record: captured.append(
            {
                "severity": record.severity,
                "source": record.source,
                "message": record.message,
            }
        )
    )
    _trace_artifacts.clear()
    _trace_artifacts["spans_mark"] = obs_spans.mark()
    _trace_artifacts["events_mark"] = obs_manifest.events_mark()
    stream_sink = None
    if args.stream_spans:
        from repro.observability.export import JsonlStreamSink

        stream_sink = JsonlStreamSink(args.stream_spans)
        obs_spans.add_sink(stream_sink)
    try:
        if args.inject_faults and args.command not in FAULT_AWARE_COMMANDS:
            diagnostics.emit(
                "cli",
                f"--inject-faults is not supported by {args.command!r} and was "
                f"ignored (supported: {', '.join(sorted(FAULT_AWARE_COMMANDS))})",
            )
        if args.jobs != 1 and args.command not in ENGINE_AWARE_COMMANDS:
            diagnostics.emit(
                "cli",
                f"--jobs is not supported by {args.command!r} and was ignored "
                f"(supported: {', '.join(sorted(ENGINE_AWARE_COMMANDS))})",
            )
        with span(f"cli.{args.command}"):
            exit_code = args.handler(args) or 0
        if args.trace_out:
            _write_manifest(args, captured)
        return exit_code
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0
    except ReproError as exc:
        # Typed pipeline failures get a clean one-liner, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if stream_sink is not None:
            obs_spans.remove_sink(stream_sink)
            stream_sink.close()
        capture_unsubscribe()
        if unsubscribe is not None:
            unsubscribe()


if __name__ == "__main__":
    sys.exit(main())
