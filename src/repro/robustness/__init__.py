"""Robustness subsystem: fault injection, validation, diagnostics.

Real profiler output is routinely dirty — truncated runs, dropped
invocations, NaN counters, duplicated rows. This package provides

* :mod:`repro.robustness.faults` — a deterministic, seedable harness that
  injects such corruptions into profile tables, CSV files and hardware
  measurements;
* :mod:`repro.robustness.validate` — schema/invariant validation and
  repair of profile tables, producing structured reports;
* :mod:`repro.robustness.diagnostics` — the warning channel through which
  the pipelines report every degraded-path decision they take.
"""

from repro.robustness.diagnostics import Diagnostic, capture_diagnostics, emit
from repro.robustness.faults import (
    FAULT_MODES,
    FaultPlan,
    FaultRecord,
    FaultSpec,
    inject_csv_faults,
    inject_measurement_faults,
    inject_table_faults,
    parse_fault_plan,
)
from repro.robustness.validate import (
    RepairAction,
    RepairResult,
    ValidationIssue,
    ValidationReport,
    repair_table,
    validate_profile_csv,
    validate_table,
)

__all__ = [
    "Diagnostic",
    "capture_diagnostics",
    "emit",
    "FAULT_MODES",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "inject_csv_faults",
    "inject_measurement_faults",
    "inject_table_faults",
    "parse_fault_plan",
    "RepairAction",
    "RepairResult",
    "ValidationIssue",
    "ValidationReport",
    "repair_table",
    "validate_profile_csv",
    "validate_table",
]
