"""Diagnostics channel for graceful-degradation warnings.

When a pipeline stage survives bad input by taking a documented fallback
(kernel-mean imputation, uniform weights, clamped counters) it must say
so — silently degraded predictions are worse than crashes. Stages call
:func:`emit`; every record lands in a bounded in-memory channel that
callers can inspect (:func:`records`), subscribe to (:func:`subscribe` —
the CLI installs a stderr printer), or capture in a scope
(:func:`capture_diagnostics` — what tests use).

The channel is process-global and append-ordered; it is *not* a logging
framework. It exists so that "the run completed" and "the run completed
but 14 representatives were imputed" are distinguishable programmatically.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

#: Diagnostic severities, mildest first.
SEVERITIES = ("info", "warning", "error")

#: Upper bound on retained records; older records are evicted FIFO.
MAX_RECORDS = 10_000


@dataclass(frozen=True)
class Diagnostic:
    """One degraded-path event emitted by a pipeline stage."""

    severity: str  # one of SEVERITIES
    source: str  # e.g. "sieve.predict", "csv.read", "stratify"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.source}: {self.message}"


_records: deque[Diagnostic] = deque(maxlen=MAX_RECORDS)
_sinks: list[Callable[[Diagnostic], None]] = []


def emit(source: str, message: str, severity: str = "warning") -> Diagnostic:
    """Record a diagnostic and forward it to all subscribed sinks."""
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")
    record = Diagnostic(severity=severity, source=source, message=message)
    _records.append(record)
    for sink in list(_sinks):
        sink(record)
    return record


def records() -> tuple[Diagnostic, ...]:
    """All retained diagnostics, oldest first."""
    return tuple(_records)


def clear() -> None:
    """Drop all retained diagnostics (sinks stay subscribed)."""
    _records.clear()


def subscribe(sink: Callable[[Diagnostic], None]) -> Callable[[], None]:
    """Add a sink called on every future emit; returns an unsubscriber."""
    _sinks.append(sink)

    def unsubscribe() -> None:
        if sink in _sinks:
            _sinks.remove(sink)

    return unsubscribe


@contextmanager
def capture_diagnostics() -> Iterator[list[Diagnostic]]:
    """Collect diagnostics emitted inside the ``with`` block.

    >>> with capture_diagnostics() as caught:
    ...     _ = emit("doctest", "fallback taken")
    >>> [c.source for c in caught]
    ['doctest']
    """
    caught: list[Diagnostic] = []
    unsubscribe = subscribe(caught.append)
    try:
        yield caught
    finally:
        unsubscribe()
