"""Schema/invariant validation and repair of profile tables.

:func:`validate_table` checks the invariants both samplers rely on —
positive instruction counts and launch shapes, finite non-negative
metrics, per-kernel invocation-id monotonicity, declared-vs-actual row
counts — and returns a structured :class:`ValidationReport`.

Issues carry a severity: ``error`` marks corruption that would poison the
pipelines (and that :func:`repair_table` can remove), while ``warning``
marks *missing* data (invocation-id gaps, truncation) that no repair can
recreate but that the pipelines tolerate. A report is ``ok`` when it has
no errors.

:func:`validate_profile_csv` is the lenient file-level twin: it scans a
CSV row by row, records every malformed row instead of raising, salvages
the parseable rows into a table and validates that.

:func:`repair_table` drops or imputes the error-level rows/cells and
records every action taken; its output always passes
:func:`validate_table` with no errors (a property the test suite enforces
with hypothesis).
"""

from __future__ import annotations

import csv
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.profiling.csv_io import (
    parse_data_row,
    parse_header,
    parse_preamble,
)
from repro.profiling.table import ProfileTable
from repro.utils.errors import ProfileError

#: issue kinds considered data corruption (repairable); everything else is
#: missing data and reported as a warning.
_ERROR_KINDS = frozenset({
    "nonpositive-insn",
    "nonpositive-cta-size",
    "nonpositive-num-ctas",
    "nonfinite-metric",
    "negative-metric",
    "duplicate-invocation",
    "nonmonotonic-invocation",
    "malformed-row",
    "malformed-header",
    "unreadable-file",
    "empty-table",
})


@dataclass(frozen=True)
class ValidationIssue:
    """One invariant violation, located as precisely as possible."""

    kind: str
    message: str
    row: int | None = None  # table row index, or 1-based CSV line number
    kernel: str | None = None

    @property
    def severity(self) -> str:
        return "error" if self.kind in _ERROR_KINDS else "warning"


@dataclass
class ValidationReport:
    """Structured result of validating one profile table or CSV file."""

    source: str
    rows_checked: int
    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no *error*-severity issues were found."""
        return not any(i.severity == "error" for i in self.issues)

    @property
    def clean(self) -> bool:
        """True when no issues at all (not even warnings) were found."""
        return not self.issues

    def counts_by_kind(self) -> dict[str, int]:
        return dict(Counter(issue.kind for issue in self.issues))

    def summary(self) -> str:
        if self.clean:
            return f"{self.source}: OK ({self.rows_checked} rows, no issues)"
        parts = ", ".join(
            f"{kind} x{count}"
            for kind, count in sorted(self.counts_by_kind().items())
        )
        status = "OK with warnings" if self.ok else "CORRUPT"
        return (
            f"{self.source}: {status} ({self.rows_checked} rows, "
            f"{len(self.issues)} issues: {parts})"
        )


# --------------------------------------------------------------------- #
# Table-level validation


def validate_table(
    table: ProfileTable, declared_rows: int | None = None
) -> ValidationReport:
    """Check every pipeline-relied invariant of ``table``."""
    report = ValidationReport(
        source=f"table:{table.workload}", rows_checked=len(table)
    )
    issues = report.issues

    if len(table) == 0:
        issues.append(ValidationIssue("empty-table", "table has no rows"))
        return report

    if declared_rows is not None and declared_rows != len(table):
        issues.append(ValidationIssue(
            "row-count-mismatch",
            f"declared {declared_rows} rows, found {len(table)} "
            "(truncated or dropped rows?)",
        ))

    def flag_rows(mask: np.ndarray, kind: str, describe) -> None:
        for row in np.flatnonzero(mask):
            issues.append(ValidationIssue(
                kind, describe(int(row)), row=int(row),
                kernel=table.kernel_name_of_row(int(row)),
            ))

    flag_rows(
        table.insn_count <= 0, "nonpositive-insn",
        lambda r: f"insn_count={int(table.insn_count[r])}",
    )
    flag_rows(
        table.cta_size <= 0, "nonpositive-cta-size",
        lambda r: f"cta_size={int(table.cta_size[r])}",
    )
    flag_rows(
        table.num_ctas <= 0, "nonpositive-num-ctas",
        lambda r: f"num_ctas={int(table.num_ctas[r])}",
    )

    if table.metrics is not None:
        bad = ~np.isfinite(table.metrics)
        for row, col in zip(*np.nonzero(bad)):
            issues.append(ValidationIssue(
                "nonfinite-metric",
                f"metric {table.metric_names[col]!r} is "
                f"{table.metrics[row, col]!r}",
                row=int(row), kernel=table.kernel_name_of_row(int(row)),
            ))
        negative = np.isfinite(table.metrics) & (table.metrics < 0)
        for row, col in zip(*np.nonzero(negative)):
            issues.append(ValidationIssue(
                "negative-metric",
                f"metric {table.metric_names[col]!r} = "
                f"{float(table.metrics[row, col])!r} < 0",
                row=int(row), kernel=table.kernel_name_of_row(int(row)),
            ))

    # Per-kernel invocation-id structure: ids must be strictly increasing
    # in chronological (row) order; equal ids are duplicates, decreasing
    # ids are ordering corruption, skipped ids are dropped invocations.
    for kernel_id in range(table.num_kernels):
        rows = table.rows_for_kernel(kernel_id)
        if len(rows) == 0:
            continue
        name = table.kernel_names[kernel_id]
        ids = table.invocation_id[rows]
        deltas = np.diff(ids)
        for j in np.flatnonzero(deltas == 0):
            issues.append(ValidationIssue(
                "duplicate-invocation",
                f"invocation {int(ids[j + 1])} appears twice",
                row=int(rows[j + 1]), kernel=name,
            ))
        for j in np.flatnonzero(deltas < 0):
            issues.append(ValidationIssue(
                "nonmonotonic-invocation",
                f"invocation id drops from {int(ids[j])} to {int(ids[j + 1])}",
                row=int(rows[j + 1]), kernel=name,
            ))
        gaps = int(ids[0]) + int(np.sum(np.maximum(deltas - 1, 0)))
        if gaps > 0:
            issues.append(ValidationIssue(
                "invocation-gap",
                f"{gaps} invocation ids missing from the sequence",
                kernel=name,
            ))

    return report


# --------------------------------------------------------------------- #
# Lenient CSV validation


def validate_profile_csv(
    path: str | Path,
) -> tuple[ValidationReport, ProfileTable | None]:
    """Scan a profile CSV leniently, reporting every problem found.

    Unlike :func:`repro.profiling.csv_io.read_profile_csv` this never
    raises on malformed *rows*: each one becomes a ``malformed-row`` issue
    (with its 1-based line number) and is skipped. The salvaged rows are
    assembled into a table which then runs through :func:`validate_table`;
    that report's issues are merged in. Returns ``(report, table)`` where
    ``table`` is ``None`` only when nothing was salvageable (unreadable
    preamble/header or zero good rows).
    """
    path = Path(path)
    report = ValidationReport(source=str(path), rows_checked=0)

    try:
        handle = path.open(newline="")
    except OSError as exc:
        report.issues.append(ValidationIssue("unreadable-file", str(exc)))
        return report, None

    with handle:
        reader = csv.reader(handle)
        try:
            preamble = next(reader)
            workload, declared_rows = parse_preamble(preamble, path)
            header = next(reader)
            metric_columns = parse_header(header, path)
        except StopIteration:
            report.issues.append(ValidationIssue(
                "malformed-header", "file ends before preamble/header"
            ))
            return report, None
        except ProfileError as exc:
            report.issues.append(ValidationIssue(
                "malformed-header", str(exc), row=exc.row
            ))
            return report, None

        parsed = []
        for row in reader:
            report.rows_checked += 1
            try:
                parsed.append(parse_data_row(row, len(metric_columns)))
            except ValueError as exc:
                report.issues.append(ValidationIssue(
                    "malformed-row", str(exc), row=reader.line_num
                ))

    if not parsed:
        report.issues.append(ValidationIssue(
            "empty-table", "no parseable invocation rows"
        ))
        return report, None

    kernel_names: list[str] = []
    kernel_index: dict[str, int] = {}
    n = len(parsed)
    kernel_id = np.empty(n, dtype=np.int32)
    invocation_id = np.empty(n, dtype=np.int64)
    insn = np.empty(n, dtype=np.int64)
    cta_size = np.empty(n, dtype=np.int32)
    num_ctas = np.empty(n, dtype=np.int64)
    metrics = (
        np.empty((n, len(metric_columns)), dtype=np.float64)
        if metric_columns
        else None
    )
    for i, (name, inv, count, cta, ctas, values) in enumerate(parsed):
        if name not in kernel_index:
            kernel_index[name] = len(kernel_names)
            kernel_names.append(name)
        kernel_id[i] = kernel_index[name]
        invocation_id[i] = inv
        insn[i] = count
        cta_size[i] = cta
        num_ctas[i] = ctas
        if metrics is not None:
            metrics[i] = values

    table = ProfileTable(
        workload=workload,
        kernel_names=tuple(kernel_names),
        kernel_id=kernel_id,
        invocation_id=invocation_id,
        insn_count=insn,
        cta_size=cta_size,
        num_ctas=num_ctas,
        metrics=metrics,
        metric_names=tuple(metric_columns) if metric_columns else (),
    )
    table_report = validate_table(table, declared_rows=declared_rows)
    report.issues.extend(table_report.issues)
    return report, table


# --------------------------------------------------------------------- #
# Repair


@dataclass(frozen=True)
class RepairAction:
    """One repair decision: what was dropped or imputed, and why."""

    kind: str  # "drop-row" | "impute-metric" | "clamp-metric"
    row: int
    kernel: str
    detail: str


@dataclass
class RepairResult:
    """A repaired table plus the full log of actions taken."""

    table: ProfileTable
    actions: list[RepairAction]

    @property
    def changed(self) -> bool:
        return bool(self.actions)


def repair_table(
    table: ProfileTable, report: ValidationReport | None = None
) -> RepairResult:
    """Drop or impute every error-level defect of ``table``.

    Policy, in order: duplicate/non-monotonic invocation rows are dropped
    (first occurrence wins); rows with non-positive instruction counts or
    launch shapes are dropped (their true magnitudes are unknowable);
    non-finite metric cells are imputed with the kernel's column mean over
    clean rows (falling back to the global column mean, then 0.0);
    negative metric cells are clamped to 0. Missing-data warnings
    (invocation gaps, truncation) are unrepairable and left as-is.

    The result always satisfies ``validate_table(result.table).ok`` —
    except for the degenerate case where *every* row is defective, which
    raises :class:`ProfileError` instead of emitting an empty table.
    """
    if report is None:
        report = validate_table(table)
    actions: list[RepairAction] = []
    if not report.issues or len(table) == 0:
        return RepairResult(table=table, actions=actions)

    n = len(table)
    drop = np.zeros(n, dtype=bool)

    def mark_drop(mask: np.ndarray, why) -> None:
        for row in np.flatnonzero(mask & ~drop):
            actions.append(RepairAction(
                "drop-row", int(row), table.kernel_name_of_row(int(row)),
                why(int(row)),
            ))
        drop[mask] = True

    # Duplicate / out-of-order invocation ids: keep the first occurrence
    # of each (kernel, invocation) pair, then drop any row that still
    # breaks monotonicity.
    seen: set[tuple[int, int]] = set()
    dup = np.zeros(n, dtype=bool)
    last_id: dict[int, int] = {}
    for row in range(n):
        key = (int(table.kernel_id[row]), int(table.invocation_id[row]))
        if key in seen:
            dup[row] = True
            continue
        seen.add(key)
        prev = last_id.get(key[0])
        if prev is not None and key[1] < prev:
            dup[row] = True  # out of order relative to rows already kept
            continue
        last_id[key[0]] = key[1]
    mark_drop(dup, lambda r: (
        f"duplicate or out-of-order invocation {int(table.invocation_id[r])}"
    ))

    mark_drop(
        table.insn_count <= 0,
        lambda r: f"non-positive insn_count {int(table.insn_count[r])}",
    )
    mark_drop(
        table.cta_size <= 0,
        lambda r: f"non-positive cta_size {int(table.cta_size[r])}",
    )
    mark_drop(
        table.num_ctas <= 0,
        lambda r: f"non-positive num_ctas {int(table.num_ctas[r])}",
    )

    if bool(drop.all()):
        raise ProfileError(
            f"table {table.workload!r}: every row is defective, "
            "nothing to repair"
        )

    keep = ~drop
    metrics = None if table.metrics is None else table.metrics[keep].copy()
    kept_rows = np.flatnonzero(keep)
    kernel_id = table.kernel_id[keep]

    if metrics is not None:
        bad = ~np.isfinite(metrics)
        if bad.any():
            for col in np.flatnonzero(bad.any(axis=0)):
                col_bad = bad[:, col]
                col_values = metrics[:, col]
                global_clean = col_values[~col_bad]
                global_mean = (
                    float(global_clean.mean()) if len(global_clean) else 0.0
                )
                for row in np.flatnonzero(col_bad):
                    same_kernel = (kernel_id == kernel_id[row]) & ~col_bad
                    kernel_clean = col_values[same_kernel]
                    value = (
                        float(kernel_clean.mean())
                        if len(kernel_clean)
                        else global_mean
                    )
                    metrics[row, col] = value
                    actions.append(RepairAction(
                        "impute-metric", int(kept_rows[row]),
                        table.kernel_name_of_row(int(kept_rows[row])),
                        f"metric {table.metric_names[col]!r} imputed with "
                        f"kernel mean {value:g}",
                    ))
        negative = metrics < 0
        for row, col in zip(*np.nonzero(negative)):
            actions.append(RepairAction(
                "clamp-metric", int(kept_rows[row]),
                table.kernel_name_of_row(int(kept_rows[row])),
                f"metric {table.metric_names[col]!r} clamped "
                f"{float(metrics[row, col]):g} -> 0",
            ))
        metrics[negative] = 0.0

    if not actions:
        return RepairResult(table=table, actions=actions)

    repaired = ProfileTable(
        workload=table.workload,
        kernel_names=table.kernel_names,
        kernel_id=kernel_id,
        invocation_id=table.invocation_id[keep],
        insn_count=table.insn_count[keep],
        cta_size=table.cta_size[keep],
        num_ctas=table.num_ctas[keep],
        metrics=metrics,
        metric_names=table.metric_names,
    )
    return RepairResult(table=repaired, actions=actions)
