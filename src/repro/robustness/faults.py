"""Deterministic, seedable fault injection for profiles and measurements.

Real profiler output (nvprof/NVBit/Nsight, Section IV) fails in a small
number of characteristic ways: invocations get dropped, runs get truncated,
counters come back NaN or negative, rows get duplicated, and golden cycle
counts pick up noise or clock drift. This module reproduces each failure
mode in a controlled, composable, seed-deterministic way so the validator
and the pipelines' degraded paths can be tested against known corruption.

Three injection surfaces share one :class:`FaultPlan`:

* :func:`inject_table_faults` — corrupt an in-memory :class:`ProfileTable`;
* :func:`inject_csv_faults` — corrupt a profile CSV *file* byte-wise
  (including text-level garbling the table form cannot express);
* :func:`inject_measurement_faults` — corrupt a golden
  :class:`WorkloadMeasurement`.

Each surface applies only the fault modes in its domain and ignores the
rest, so one composite plan drives a whole experiment. At rate 0 every
injector is a strict identity (byte-identical for CSV files) — a property
the test suite enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.gpu.hardware import KernelMeasurement, WorkloadMeasurement
from repro.profiling.table import ProfileTable
from repro.utils.errors import FaultInjectionError
from repro.utils.seeding import rng_for
from repro.utils.validation import require

#: mode name -> surfaces it applies to. The ``task`` surface corrupts the
#: *execution* of an evaluation task rather than its data: ``hang`` stalls
#: the worker past any deadline, ``crash`` kills the worker process
#: outright and ``task_error`` raises an ordinary exception. These are
#: applied only by the resilient engine's isolated workers
#: (:meth:`repro.evaluation.engine.EvaluationEngine.run_isolated`) — the
#: chaos half of the fuzzing harness.
FAULT_MODES: dict[str, frozenset[str]] = {
    "drop": frozenset({"table", "csv"}),
    "truncate": frozenset({"table", "csv"}),
    "duplicate": frozenset({"table", "csv"}),
    "nan": frozenset({"table", "csv"}),
    "negative": frozenset({"table", "csv"}),
    "garble": frozenset({"csv"}),
    "cycle_noise": frozenset({"measurement"}),
    "clock_drift": frozenset({"measurement"}),
    "zero_cycles": frozenset({"measurement"}),
    "hang": frozenset({"task"}),
    "crash": frozenset({"task"}),
    "task_error": frozenset({"task"}),
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault mode at one rate (fraction of rows/invocations hit)."""

    mode: str
    rate: float

    def __post_init__(self) -> None:
        require(
            self.mode in FAULT_MODES,
            f"unknown fault mode {self.mode!r}; known: {sorted(FAULT_MODES)}",
            FaultInjectionError,
        )
        require(
            0.0 <= self.rate <= 1.0,
            f"fault rate must be in [0, 1], got {self.rate}",
            FaultInjectionError,
        )


@dataclass(frozen=True)
class FaultPlan:
    """A composable, hashable set of fault specs plus an injection seed."""

    specs: tuple[FaultSpec, ...]
    seed: int = 0

    def for_surface(self, surface: str) -> tuple[FaultSpec, ...]:
        """The subset of specs applicable to ``surface``."""
        return tuple(s for s in self.specs if surface in FAULT_MODES[s.mode])

    def describe(self) -> str:
        return ",".join(f"{s.mode}:{s.rate:g}" for s in self.specs) or "none"


@dataclass(frozen=True)
class FaultRecord:
    """One injected corruption: what was done, and where."""

    mode: str
    location: str  # e.g. "table row 17", "csv line 42", "kernel k3 inv 5"
    detail: str


def parse_fault_plan(text: str, seed: int = 0) -> FaultPlan:
    """Parse ``"MODE:RATE[,MODE:RATE...]"`` into a :class:`FaultPlan`.

    >>> parse_fault_plan("drop:0.1,nan:0.05").describe()
    'drop:0.1,nan:0.05'
    """
    specs = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        mode, sep, rate_text = part.partition(":")
        require(
            bool(sep),
            f"fault spec {part!r} must look like MODE:RATE",
            FaultInjectionError,
        )
        try:
            rate = float(rate_text)
        except ValueError:
            raise FaultInjectionError(
                f"fault rate {rate_text!r} in {part!r} is not a number"
            ) from None
        specs.append(FaultSpec(mode=mode.strip(), rate=rate))
    require(len(specs) > 0, "empty fault plan", FaultInjectionError)
    return FaultPlan(specs=tuple(specs), seed=seed)


def _hit_rows(rng: np.random.Generator, n: int, rate: float) -> np.ndarray:
    """Deterministic Bernoulli row selection at ``rate``."""
    if rate <= 0.0 or n == 0:
        return np.empty(0, dtype=np.int64)
    return np.flatnonzero(rng.random(n) < rate)


# --------------------------------------------------------------------- #
# Task-surface sabotage (engine chaos testing)


def task_sabotage(plan: FaultPlan, label: str, attempt: int) -> str | None:
    """Which sabotage mode (if any) this task attempt should suffer.

    Deterministic in ``(plan.seed, label, attempt)`` and *independent of
    scheduling*: a task decides its own fate per attempt, so ``jobs=1``
    and ``jobs=N`` runs of the resilient engine see identical hang/crash
    sequences — the property the determinism tests pin. The first
    matching spec wins (plan order).
    """
    for spec in plan.for_surface("task"):
        rng = rng_for("faults", plan.seed, spec.mode, label, "task", attempt)
        if spec.rate > 0 and rng.random() < spec.rate:
            return spec.mode
    return None


# --------------------------------------------------------------------- #
# Profile-table faults


def inject_table_faults(
    table: ProfileTable, plan: FaultPlan
) -> tuple[ProfileTable, list[FaultRecord]]:
    """Apply the plan's table-domain faults to ``table``.

    Returns a corrupted copy plus one :class:`FaultRecord` per injected
    corruption. The input table is never mutated. Row-removing modes always
    leave at least one row.
    """
    records: list[FaultRecord] = []
    kernel_id = table.kernel_id.copy()
    invocation_id = table.invocation_id.copy()
    insn = table.insn_count.copy()
    cta_size = table.cta_size.copy()
    num_ctas = table.num_ctas.copy()
    metrics = None if table.metrics is None else table.metrics.copy()

    def n() -> int:
        return len(kernel_id)

    def take(keep: np.ndarray) -> None:
        nonlocal kernel_id, invocation_id, insn, cta_size, num_ctas, metrics
        kernel_id = kernel_id[keep]
        invocation_id = invocation_id[keep]
        insn = insn[keep]
        cta_size = cta_size[keep]
        num_ctas = num_ctas[keep]
        if metrics is not None:
            metrics = metrics[keep]

    for spec in plan.for_surface("table"):
        rng = rng_for("faults", plan.seed, spec.mode, table.workload, "table")
        if spec.mode == "drop":
            hits = _hit_rows(rng, n(), spec.rate)
            if len(hits) >= n():  # never drop everything
                hits = hits[: n() - 1]
            if len(hits):
                keep = np.setdiff1d(np.arange(n()), hits)
                for row in hits:
                    records.append(FaultRecord(
                        "drop", f"table row {int(row)}",
                        f"dropped invocation {int(invocation_id[row])} of "
                        f"kernel {table.kernel_names[int(kernel_id[row])]}",
                    ))
                take(keep)
        elif spec.mode == "truncate":
            cut = int(round(spec.rate * n()))
            cut = min(cut, n() - 1)
            if cut > 0:
                records.append(FaultRecord(
                    "truncate", f"table rows {n() - cut}..{n() - 1}",
                    f"truncated {cut} tail rows",
                ))
                take(np.arange(n() - cut))
        elif spec.mode == "duplicate":
            hits = _hit_rows(rng, n(), spec.rate)
            if len(hits):
                repeats = np.ones(n(), dtype=np.int64)
                repeats[hits] += 1
                for row in hits:
                    records.append(FaultRecord(
                        "duplicate", f"table row {int(row)}",
                        f"duplicated invocation {int(invocation_id[row])} of "
                        f"kernel {table.kernel_names[int(kernel_id[row])]}",
                    ))
                take(np.repeat(np.arange(n()), repeats))
        elif spec.mode == "nan":
            if metrics is None:
                continue  # Sieve tables carry no metric matrix to corrupt
            hits = _hit_rows(rng, n(), spec.rate)
            for row in hits:
                col = int(rng.integers(metrics.shape[1]))
                metrics[row, col] = np.nan
                records.append(FaultRecord(
                    "nan", f"table row {int(row)}",
                    f"metric {table.metric_names[col]!r} set to NaN",
                ))
        elif spec.mode == "negative":
            hits = _hit_rows(rng, n(), spec.rate)
            for row in hits:
                insn[row] = -abs(int(insn[row])) or -1
                records.append(FaultRecord(
                    "negative", f"table row {int(row)}",
                    "insn_count negated",
                ))

    corrupted = ProfileTable(
        workload=table.workload,
        kernel_names=table.kernel_names,
        kernel_id=kernel_id,
        invocation_id=invocation_id,
        insn_count=insn,
        cta_size=cta_size,
        num_ctas=num_ctas,
        metrics=metrics,
        metric_names=table.metric_names,
    )
    return corrupted, records


# --------------------------------------------------------------------- #
# CSV-file faults


def _edit_numeric_field(
    line: str, total_columns: int, column: int, value: str
) -> str:
    """Replace a numeric CSV field addressed from the row *end*.

    Kernel names may contain quoted commas, so fields are indexed from the
    end of the raw comma-split, where all fields are plain numerics.
    """
    parts = line.split(",")
    parts[column - total_columns] = value
    return ",".join(parts)


def _numeric_field(line: str, total_columns: int, column: int) -> str:
    parts = line.split(",")
    return parts[column - total_columns]


def inject_csv_faults(
    path, out_path, plan: FaultPlan
) -> list[FaultRecord]:
    """Corrupt the profile CSV at ``path``, writing to ``out_path``.

    Text-level analogue of :func:`inject_table_faults` plus the ``garble``
    mode (malformed rows, wrong column counts, unparseable fields). Line
    numbers in the returned records are 1-based file line numbers. At rate
    0 the output is byte-identical to the input.
    """
    from pathlib import Path

    raw = Path(path).read_bytes()
    text = raw.decode("utf-8")
    # Preserve the file's exact line-ending convention for byte identity
    # (csv.writer emits \r\n by default).
    terminator = "\r\n" if "\r\n" in text else "\n"
    trailing_newline = text.endswith(("\r\n", "\n"))
    lines = text.splitlines()
    require(
        len(lines) >= 2,
        "profile CSV needs a preamble and a header",
        FaultInjectionError,
    )
    preamble, header = lines[0], lines[1]
    data = lines[2:]
    total_columns = len(header.split(","))
    #: 0-based index of insn_count in the header (no quoted names there).
    insn_column = header.split(",").index("insn_count")
    records: list[FaultRecord] = []

    def line_no(data_index: int) -> int:
        return data_index + 3  # 1-based, after preamble + header

    for spec in plan.for_surface("csv"):
        rng = rng_for("faults", plan.seed, spec.mode, Path(path).name, "csv")
        n = len(data)
        if spec.mode == "drop":
            hits = _hit_rows(rng, n, spec.rate)
            if len(hits) >= n:
                hits = hits[: n - 1]
            for i in hits:
                records.append(FaultRecord(
                    "drop", f"csv line {line_no(int(i))}", "row removed"
                ))
            if len(hits):
                keep = np.setdiff1d(np.arange(n), hits)
                data = [data[i] for i in keep]
        elif spec.mode == "truncate":
            cut = min(int(round(spec.rate * n)), n - 1)
            if cut > 0:
                records.append(FaultRecord(
                    "truncate", f"csv lines {line_no(n - cut)}..{line_no(n - 1)}",
                    f"truncated {cut} tail rows",
                ))
                data = data[: n - cut]
        elif spec.mode == "duplicate":
            hits = set(_hit_rows(rng, n, spec.rate).tolist())
            if hits:
                duplicated = []
                for i, line in enumerate(data):
                    duplicated.append(line)
                    if i in hits:
                        duplicated.append(line)
                        records.append(FaultRecord(
                            "duplicate", f"csv line {line_no(i)}",
                            "row duplicated",
                        ))
                data = duplicated
        elif spec.mode == "nan":
            hits = _hit_rows(rng, n, spec.rate)
            for i in hits:
                column = (
                    int(rng.integers(5, total_columns))
                    if total_columns > 5
                    else insn_column
                )
                data[i] = _edit_numeric_field(
                    data[i], total_columns, column, "nan"
                )
                records.append(FaultRecord(
                    "nan", f"csv line {line_no(int(i))}",
                    f"column {column} set to nan",
                ))
        elif spec.mode == "negative":
            hits = _hit_rows(rng, n, spec.rate)
            for i in hits:
                old = _numeric_field(data[i], total_columns, insn_column)
                data[i] = _edit_numeric_field(
                    data[i], total_columns, insn_column,
                    "-" + old.lstrip("-"),
                )
                records.append(FaultRecord(
                    "negative", f"csv line {line_no(int(i))}",
                    "insn_count negated",
                ))
        elif spec.mode == "garble":
            hits = _hit_rows(rng, n, spec.rate)
            for i in hits:
                style = int(rng.integers(3))
                if style == 0:  # wrong column count: chop trailing fields
                    parts = data[i].split(",")
                    data[i] = ",".join(parts[: max(1, len(parts) - 2)])
                    detail = "trailing columns chopped"
                elif style == 1:  # unparseable integer
                    data[i] = _edit_numeric_field(
                        data[i], total_columns, insn_column, "###"
                    )
                    detail = "insn_count replaced with garbage"
                else:  # row overwritten with junk
                    data[i] = "corrupted"
                    detail = "row overwritten"
                records.append(FaultRecord(
                    "garble", f"csv line {line_no(int(i))}", detail
                ))

    if not records:
        # No edits: copy verbatim so rate-0 plans are byte-identity.
        Path(out_path).write_bytes(raw)
        return records
    out = terminator.join([preamble, header, *data])
    if trailing_newline:
        out += terminator
    Path(out_path).write_bytes(out.encode("utf-8"))
    return records


# --------------------------------------------------------------------- #
# Measurement faults


def inject_measurement_faults(
    measurement: WorkloadMeasurement, plan: FaultPlan
) -> tuple[WorkloadMeasurement, list[FaultRecord]]:
    """Apply the plan's measurement-domain faults to a golden reference.

    ``cycle_noise`` multiplies a fraction of invocations' cycle counts by
    log-normal noise; ``clock_drift`` scales each kernel's cycles by a
    linear drift reaching ``1 + rate`` at the last invocation; and
    ``zero_cycles`` zeroes a fraction of invocations (the classic
    dropped-counter failure the pipelines must impute around).
    """
    specs = plan.for_surface("measurement")
    if not specs:
        return measurement, []

    records: list[FaultRecord] = []
    per_kernel: dict[str, KernelMeasurement] = {}
    for name, kernel in measurement.per_kernel.items():
        cycles = kernel.cycles.astype(np.float64)
        for spec in specs:
            rng = rng_for(
                "faults", plan.seed, spec.mode,
                measurement.workload_name, name, "measurement",
            )
            if spec.mode == "cycle_noise":
                hits = _hit_rows(rng, len(cycles), spec.rate)
                if len(hits):
                    noise = rng.lognormal(mean=0.0, sigma=0.5, size=len(hits))
                    cycles[hits] *= noise
                    records.append(FaultRecord(
                        "cycle_noise", f"kernel {name}",
                        f"noised {len(hits)} invocations",
                    ))
            elif spec.mode == "clock_drift":
                if spec.rate > 0 and len(cycles) > 0:
                    drift = 1.0 + spec.rate * (
                        np.arange(len(cycles)) / max(len(cycles) - 1, 1)
                    )
                    cycles *= drift
                    records.append(FaultRecord(
                        "clock_drift", f"kernel {name}",
                        f"applied linear drift up to {1.0 + spec.rate:g}x",
                    ))
            elif spec.mode == "zero_cycles":
                hits = _hit_rows(rng, len(cycles), spec.rate)
                if len(hits):
                    cycles[hits] = 0.0
                    for i in hits:
                        records.append(FaultRecord(
                            "zero_cycles", f"kernel {name} inv {int(i)}",
                            "cycle count zeroed",
                        ))
        if np.array_equal(cycles, kernel.cycles.astype(np.float64)):
            per_kernel[name] = kernel
        else:
            per_kernel[name] = replace(
                kernel, cycles=np.rint(cycles).astype(np.int64)
            )

    return replace(measurement, per_kernel=per_kernel), records
