"""Baseline sampling methods.

The paper's comparison point is Principal Kernel Selection (PKS, Baddouh
et al., MICRO 2021): profile 12 microarchitecture-independent
characteristics, reduce with PCA, cluster with k-means (k <= 20 chosen by
golden-reference error), select one representative invocation per cluster,
and predict application cycles as the invocation-count-weighted sum of
representative cycle counts. Random and periodic samplers are included as
classical statistical-sampling baselines.
"""

from repro.baselines.kmeans import KMeans, KMeansResult
from repro.baselines.pca import PCA, PCAResult, standardize
from repro.baselines.periodic import PeriodicSampler
from repro.baselines.pks import PksConfig, PksPipeline, PksSelection
from repro.baselines.pks_two_level import TwoLevelPksPipeline
from repro.baselines.random_sampling import RandomSampler

__all__ = [
    "standardize",
    "PCA",
    "PCAResult",
    "KMeans",
    "KMeansResult",
    "PksConfig",
    "PksPipeline",
    "PksSelection",
    "TwoLevelPksPipeline",
    "RandomSampler",
    "PeriodicSampler",
]
