"""Simple random sampling baseline.

A classical statistical baseline (in the spirit of SMARTS-style random
sampling for CPUs): draw N invocations uniformly at random and scale their
mean cycle count by the population size. Not part of the paper's main
comparison but useful as a floor for the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.prediction import PredictionResult
from repro.core.types import Representative, SampleSelection
from repro.gpu.hardware import WorkloadMeasurement
from repro.profiling.table import ProfileTable
from repro.utils.seeding import rng_for
from repro.utils.validation import require


@dataclass(frozen=True)
class RandomSampler:
    """Uniform random sampler with a fixed sample budget."""

    sample_size: int = 100

    def __post_init__(self) -> None:
        require(self.sample_size >= 1, "sample size must be >= 1")

    def select(self, table: ProfileTable) -> SampleSelection:
        n = len(table)
        size = min(self.sample_size, n)
        rng = rng_for("random-sampler", table.workload, size)
        rows = sorted(rng.choice(n, size=size, replace=False).tolist())
        # Each sampled invocation stands for n / size invocations.
        representatives = tuple(
            Representative(
                kernel_name=table.kernel_name_of_row(row),
                kernel_id=int(table.kernel_id[row]),
                invocation_id=int(table.invocation_id[row]),
                row=int(row),
                weight=1.0 / size,
                group=f"sample{i}",
                group_size=max(n // size, 1),
            )
            for i, row in enumerate(rows)
        )
        return SampleSelection(
            workload=table.workload,
            method="random",
            representatives=representatives,
            total_instructions=table.total_instructions,
            num_invocations=n,
        )

    def predict(
        self, selection: SampleSelection, measurement: WorkloadMeasurement
    ) -> PredictionResult:
        """Horvitz-Thompson estimate: population mean times population size."""
        sampled = [r.measured_cycles(measurement) for r in selection.representatives]
        scale = selection.num_invocations / len(sampled)
        predicted = sum(sampled) / len(sampled) * selection.num_invocations
        return PredictionResult(
            workload=selection.workload,
            method=selection.method,
            predicted_cycles=predicted,
            predicted_ipc=selection.total_instructions / predicted,
            num_representatives=selection.num_representatives,
            contributions=tuple(cycles * scale for cycles in sampled),
        )
