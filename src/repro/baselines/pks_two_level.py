"""PKS on a two-level profile (the PKA cost mitigation).

Clusters are formed from the detailed batch only; the light remainder —
for which only kernel names and launch shapes were collected — is folded
into the clusters by (kernel, CTA size) majority vote over the detailed
batch, mirroring how PKA extrapolates from its first profiling level.
"""

from __future__ import annotations

from collections import Counter, defaultdict

import numpy as np

from dataclasses import dataclass

from repro.baselines.pks import PksConfig, PksPipeline, PksSelection
from repro.core.types import Representative
from repro.gpu.hardware import WorkloadMeasurement
from repro.profiling.two_level import TwoLevelProfile
from repro.utils.validation import require


@dataclass(frozen=True)
class TwoLevelPksConfig:
    """Tunables of the two-level PKS method (registry ``pks-two-level``).

    ``detailed_budget`` is the number of chronological invocations that
    get the full 12-metric profile (the default matches the two-level
    ablation bench); ``pks`` configures the clustering on that batch.
    """

    detailed_budget: int = 10_000
    pks: PksConfig = PksConfig()

    def __post_init__(self) -> None:
        require(self.detailed_budget >= 1, "detailed budget must be >= 1")


class TwoLevelPksPipeline:
    """PKS clustering on the detailed batch, extrapolated to the rest."""

    def __init__(self, config: PksConfig | None = None):
        self._pks = PksPipeline(config)

    def select(
        self, profile: TwoLevelProfile, golden: WorkloadMeasurement
    ) -> PksSelection:
        """Cluster the detailed batch, then fold in the light remainder."""
        require(len(profile.detailed) > 0, "detailed batch is empty")
        base = self._pks.select(profile.detailed, golden)

        # Majority cluster per (kernel, CTA size) signature in the batch.
        signature_votes: dict[tuple[int, int], Counter] = defaultdict(Counter)
        detailed = profile.detailed
        for cluster_index, rows in enumerate(base.cluster_rows):
            for row in rows:
                key = (int(detailed.kernel_id[row]), int(detailed.cta_size[row]))
                signature_votes[key][cluster_index] += 1
        kernel_votes: dict[int, Counter] = defaultdict(Counter)
        for (kernel_id, _), votes in signature_votes.items():
            kernel_votes[kernel_id].update(votes)

        light = profile.light
        extra_counts = np.zeros(len(base.representatives), dtype=np.int64)
        for row in range(len(light)):
            key = (int(light.kernel_id[row]), int(light.cta_size[row]))
            if key in signature_votes:
                cluster = signature_votes[key].most_common(1)[0][0]
            elif key[0] in kernel_votes:
                cluster = kernel_votes[key[0]].most_common(1)[0][0]
            else:
                # Kernel never seen in the detailed batch: attribute to the
                # most populous cluster (PKA has no better information).
                cluster = int(np.argmax([r.group_size for r in base.representatives]))
            extra_counts[cluster] += 1

        total = profile.num_invocations
        representatives = tuple(
            Representative(
                kernel_name=rep.kernel_name,
                kernel_id=rep.kernel_id,
                invocation_id=rep.invocation_id,
                row=rep.row,
                weight=(rep.group_size + int(extra_counts[index])) / total,
                group=rep.group,
                group_size=rep.group_size + int(extra_counts[index]),
            )
            for index, rep in enumerate(base.representatives)
        )
        return PksSelection(
            workload=base.workload,
            method="pks-two-level",
            representatives=representatives,
            total_instructions=int(
                detailed.insn_count.sum() + light.insn_count.sum()
            ),
            num_invocations=total,
            chosen_k=base.chosen_k,
            cluster_rows=base.cluster_rows,
        )

    def predict(self, selection: PksSelection, measurement: WorkloadMeasurement):
        """Same count-weighted prediction as ordinary PKS."""
        return self._pks.predict(selection, measurement)
