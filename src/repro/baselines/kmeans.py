"""k-means clustering (from scratch, Lloyd + k-means++).

PKS "uses Cluster Analysis (i.e., k-means clustering) to group the kernel
invocations in this (reduced) multi-dimensional workload space" (Section
II-A). Deterministic given the seed label; supports fitting on a subsample
and assigning the full population, which keeps million-invocation
workloads tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.seeding import rng_for
from repro.utils.validation import require


@dataclass(frozen=True)
class KMeansResult:
    """Fitted clustering of one data set."""

    centroids: np.ndarray  # (k, d)
    labels: np.ndarray  # (n,), cluster index per row
    inertia: float  # sum of squared distances to assigned centroids

    @property
    def k(self) -> int:
        return len(self.centroids)

    def cluster_rows(self, cluster: int) -> np.ndarray:
        return np.flatnonzero(self.labels == cluster)


def _squared_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """(n, k) matrix of squared Euclidean distances."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2, computed blockwise for memory.
    x_sq = np.einsum("ij,ij->i", points, points)[:, None]
    c_sq = np.einsum("ij,ij->i", centroids, centroids)[None, :]
    return np.maximum(x_sq - 2.0 * points @ centroids.T + c_sq, 0.0)


class KMeans:
    """Lloyd's algorithm with k-means++ seeding."""

    def __init__(
        self,
        k: int,
        seed_label: str,
        max_iterations: int = 50,
        fit_sample_size: int | None = 20_000,
        n_init: int = 4,
    ):
        require(k >= 1, "k must be >= 1")
        require(max_iterations >= 1, "need at least one iteration")
        require(n_init >= 1, "need at least one initialization")
        self.k = k
        self.seed_label = seed_label
        self.max_iterations = max_iterations
        self.fit_sample_size = fit_sample_size
        self.n_init = n_init

    def _plus_plus_init(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n = len(points)
        centroids = np.empty((self.k, points.shape[1]))
        centroids[0] = points[rng.integers(n)]
        closest = _squared_distances(points, centroids[:1]).ravel()
        for i in range(1, self.k):
            total = closest.sum()
            if total <= 0:
                centroids[i:] = centroids[0]
                break
            probabilities = closest / total
            centroids[i] = points[rng.choice(n, p=probabilities)]
            distance_to_new = _squared_distances(points, centroids[i : i + 1]).ravel()
            np.minimum(closest, distance_to_new, out=closest)
        return centroids

    def _lloyd(
        self, fit_points: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, float]:
        """One k-means++-seeded Lloyd run; returns (centroids, fit inertia)."""
        k = min(self.k, len(fit_points))
        centroids = self._plus_plus_init(fit_points, rng)[:k]
        labels: np.ndarray | None = None
        distances = None
        for _iteration in range(self.max_iterations):
            distances = _squared_distances(fit_points, centroids)
            new_labels = distances.argmin(axis=1)
            if labels is not None and np.array_equal(new_labels, labels):
                break
            labels = new_labels
            for cluster in range(k):
                members = fit_points[labels == cluster]
                if len(members):
                    centroids[cluster] = members.mean(axis=0)
        assert labels is not None and distances is not None
        inertia = float(distances[np.arange(len(fit_points)), labels].sum())
        return centroids, inertia

    def fit(self, points: np.ndarray) -> KMeansResult:
        """Cluster ``points`` ((n, d) array); keeps the best of n_init runs."""
        points = np.asarray(points, dtype=np.float64)
        require(points.ndim == 2, "expected (n, d) points")
        require(len(points) >= 1, "cannot cluster an empty set")
        rng = rng_for("kmeans", self.seed_label, self.k)

        fit_points = points
        if self.fit_sample_size is not None and len(points) > self.fit_sample_size:
            chosen = rng.choice(len(points), size=self.fit_sample_size, replace=False)
            fit_points = points[np.sort(chosen)]

        best_centroids: np.ndarray | None = None
        best_inertia = np.inf
        for _attempt in range(self.n_init):
            centroids, inertia = self._lloyd(fit_points, rng)
            if inertia < best_inertia:
                best_inertia = inertia
                best_centroids = centroids
        assert best_centroids is not None

        # Assign the full population (== fit set when no subsampling).
        full_distances = _squared_distances(points, best_centroids)
        full_labels = full_distances.argmin(axis=1)
        inertia = float(full_distances[np.arange(len(points)), full_labels].sum())
        return KMeansResult(
            centroids=best_centroids, labels=full_labels, inertia=inertia
        )


class BisectingKMeans:
    """Divisive hierarchical k-means.

    Starts from one cluster and repeatedly bisects the cluster with the
    largest inertia using 2-means, yielding a *nested* family of
    clusterings for every k up to ``max_k`` in a single pass. Because the
    k-cluster and (k+1)-cluster solutions share all but one split, metrics
    evaluated across k (such as PKS's golden-reference error) vary
    smoothly instead of re-rolling a fresh local optimum per k.
    """

    def __init__(
        self,
        max_k: int,
        seed_label: str,
        max_iterations: int = 50,
        fit_sample_size: int | None = 20_000,
        n_init: int = 2,
    ):
        require(max_k >= 1, "max_k must be >= 1")
        self.max_k = max_k
        self.seed_label = seed_label
        self.max_iterations = max_iterations
        self.fit_sample_size = fit_sample_size
        self.n_init = n_init

    def fit_all(self, points: np.ndarray) -> dict[int, KMeansResult]:
        """Cluster ``points``; returns one nested result per k in 1..max_k."""
        points = np.asarray(points, dtype=np.float64)
        require(points.ndim == 2, "expected (n, d) points")
        require(len(points) >= 1, "cannot cluster an empty set")
        rng = rng_for("bisecting-kmeans", self.seed_label)

        fit_points = points
        if self.fit_sample_size is not None and len(points) > self.fit_sample_size:
            chosen = rng.choice(len(points), size=self.fit_sample_size, replace=False)
            fit_points = points[np.sort(chosen)]

        # Current partition of the fit sample: list of (member_indices,
        # centroid, inertia).
        all_indices = np.arange(len(fit_points))
        centroid = fit_points.mean(axis=0)
        inertia = float(((fit_points - centroid) ** 2).sum())
        clusters: list[tuple[np.ndarray, np.ndarray, float]] = [
            (all_indices, centroid, inertia)
        ]

        snapshots: dict[int, np.ndarray] = {1: np.array([centroid])}
        while len(clusters) < min(self.max_k, len(fit_points)):
            # Bisect the cluster with the largest inertia (skip singletons).
            splittable = [i for i, c in enumerate(clusters) if len(c[0]) >= 2]
            if not splittable:
                break
            target = max(splittable, key=lambda i: clusters[i][2])
            members, _, _ = clusters.pop(target)
            two_means = KMeans(
                2,
                seed_label=f"{self.seed_label}/bisect{len(clusters)}",
                max_iterations=self.max_iterations,
                fit_sample_size=None,
                n_init=self.n_init,
            ).fit(fit_points[members])
            for half in (0, 1):
                rows = members[two_means.labels == half]
                if len(rows) == 0:
                    continue
                sub_centroid = fit_points[rows].mean(axis=0)
                sub_inertia = float(((fit_points[rows] - sub_centroid) ** 2).sum())
                clusters.append((rows, sub_centroid, sub_inertia))
            snapshots[len(clusters)] = np.array([c[1] for c in clusters])

        # Assign the full population against each snapshot's centroids.
        results: dict[int, KMeansResult] = {}
        for k, centroids in snapshots.items():
            distances = _squared_distances(points, centroids)
            labels = distances.argmin(axis=1)
            inertia = float(distances[np.arange(len(points)), labels].sum())
            results[k] = KMeansResult(
                centroids=centroids, labels=labels, inertia=inertia
            )
        return results
