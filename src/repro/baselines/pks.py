"""Principal Kernel Selection (PKS) — the paper's state-of-the-art baseline.

Implemented exactly as Section II-A describes:

1. profile 12 microarchitecture-independent characteristics per invocation
   (the Nsight profile table);
2. standardize and reduce with PCA;
3. cluster invocations with k-means for every k up to 20, computing the
   prediction error of each k against a *golden reference* cycle count
   measured on real hardware, and keep the k with the smallest error (the
   dependence on a golden reference is the paper's "more technical
   concern" about PKS);
4. pick one representative invocation per cluster — first-chronological by
   default, with random and centroid policies for the Figure 5 study;
5. predict application cycles as the invocation-count-weighted sum of the
   representatives' cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.robustness.diagnostics as diagnostics
from repro.baselines.kmeans import BisectingKMeans
from repro.baselines.pca import PCA
from repro.core.prediction import PredictionResult
from repro.core.types import Representative, SampleSelection

# Shared imputation ladder (see repro.evaluation.imputation);
# cycles_in_table_order is re-exported because callers historically
# imported it from this module.
from repro.evaluation.imputation import (
    cycles_in_table_order,
    kernel_mean_cycles,
    measured_cycles_or_none,
)
from repro.gpu.hardware import WorkloadMeasurement
from repro.observability import metrics as obs_metrics
from repro.observability import span
from repro.profiling.table import ProfileTable
from repro.utils.errors import PredictionError, SelectionError
from repro.utils.seeding import rng_for
from repro.utils.segments import Segments
from repro.utils.validation import require

PKS_SELECTION_POLICIES = ("first", "random", "centroid")

__all__ = [
    "PKS_SELECTION_POLICIES",
    "PksConfig",
    "PksPipeline",
    "PksSelection",
    "cycles_in_table_order",
]


@dataclass(frozen=True)
class PksConfig:
    """Tunable parameters of the PKS pipeline."""

    max_k: int = 20
    variance_target: float = 0.9
    selection_policy: str = "first"
    kmeans_iterations: int = 50
    kmeans_fit_sample: int | None = 20_000

    def __post_init__(self) -> None:
        require(self.max_k >= 2, "max_k must be >= 2")
        require(
            self.selection_policy in PKS_SELECTION_POLICIES,
            f"selection_policy must be one of {PKS_SELECTION_POLICIES}",
        )


@dataclass(frozen=True)
class PksSelection(SampleSelection):
    """PKS's selection, retaining the clustering for analysis.

    ``cluster_rows[i]`` holds the profile-table rows of representative
    ``i``'s cluster. Representative weights are invocation-count shares.
    """

    chosen_k: int = 0
    cluster_rows: tuple[np.ndarray, ...] = ()


class PksPipeline:
    """Profile table (+ golden reference) -> clusters -> representatives."""

    def __init__(self, config: PksConfig | None = None):
        self.config = config or PksConfig()

    # ------------------------------------------------------------------ #

    def _representative_rows(
        self,
        table: ProfileTable,
        projected: np.ndarray,
        labels: np.ndarray,
        centroids: np.ndarray,
    ) -> tuple[list[int], list[np.ndarray]]:
        """Pick one row per non-empty cluster under the configured policy.

        Cluster membership comes from one stable argsort of the label
        column (:class:`~repro.utils.segments.Segments`) instead of one
        ``flatnonzero`` scan per cluster per candidate k, and the
        ``centroid`` policy resolves every cluster's first distance
        minimum with segment reductions. Scalar original:
        :func:`repro.core.reference.pks_representative_rows_scalar`.
        """
        rows: list[int] = []
        members: list[np.ndarray] = []
        policy = self.config.selection_policy
        segments = Segments.group_by(labels)
        picks: np.ndarray | None = None
        if policy == "centroid":
            # Squared distance of every row to its own centroid, then the
            # first-chronological minimum per cluster. Row-wise arithmetic
            # is identical to the per-cluster submatrix version, so ties
            # still break toward the smallest row index.
            deltas = projected - centroids[labels]
            distances = segments.gather(np.einsum("ij,ij->i", deltas, deltas))
            minima = segments.reduce(distances, np.minimum)
            is_min = distances == np.repeat(minima, segments.counts)
            picks = segments.order[segments.first_positions(is_min)]
        for gi in range(len(segments)):
            cluster = int(segments.keys[gi])
            cluster_rows = segments.rows(gi)
            if policy == "first":
                # Table rows are chronological, so the smallest row index is
                # the first-chronological invocation of the cluster.
                row = int(cluster_rows[0])
            elif policy == "random":
                rng = rng_for("pks-select", table.workload, cluster, len(centroids))
                row = int(cluster_rows[rng.integers(len(cluster_rows))])
            else:  # centroid
                assert picks is not None
                row = int(picks[gi])
            rows.append(row)
            members.append(cluster_rows)
        return rows, members

    def _predicted_cycles(
        self,
        table: ProfileTable,
        rows: list[int],
        members: list[np.ndarray],
        cycles_by_row: np.ndarray,
    ) -> float:
        """Invocation-count-weighted sum of representative cycle counts."""
        return float(
            sum(
                len(cluster_rows) * cycles_by_row[row]
                for row, cluster_rows in zip(rows, members)
            )
        )

    def _search_clusterings(
        self, table: ProfileTable, golden: WorkloadMeasurement
    ) -> tuple[float, int, list[int], list[np.ndarray]]:
        """PCA-project, cluster for every candidate k, keep the best error."""
        with span("pks.pca", workload=table.workload):
            metrics = _sanitized_metrics(table)
            projected = PCA(self.config.variance_target).fit(metrics).transform(
                metrics
            )
        cycles_by_row = cycles_in_table_order(table, golden)
        measured_total = float(cycles_by_row.sum())
        require(
            measured_total > 0 and np.isfinite(measured_total),
            f"golden reference for {table.workload!r} measures no cycles; "
            "PKS cannot choose k without it",
            SelectionError,
        )

        best: tuple[float, int, list[int], list[np.ndarray]] | None = None
        max_k = min(self.config.max_k, len(table))
        with span("pks.kmeans", workload=table.workload, max_k=max_k):
            clusterings = BisectingKMeans(
                max_k,
                seed_label=f"pks/{table.workload}",
                max_iterations=self.config.kmeans_iterations,
                fit_sample_size=self.config.kmeans_fit_sample,
            ).fit_all(projected)
        with span("pks.choose_k", workload=table.workload):
            candidate_ks = [k for k in sorted(clusterings) if k >= 2] or [1]
            for k in candidate_ks:
                clustering = clusterings[k]
                rows, members = self._representative_rows(
                    table, projected, clustering.labels, clustering.centroids
                )
                predicted = self._predicted_cycles(
                    table, rows, members, cycles_by_row
                )
                error = abs(predicted - measured_total) / measured_total
                if best is None or error < best[0]:
                    best = (error, k, rows, members)
        assert best is not None
        return best

    # ------------------------------------------------------------------ #

    def select(
        self, table: ProfileTable, golden: WorkloadMeasurement
    ) -> PksSelection:
        """Cluster ``table`` and select representatives.

        ``golden`` is the real-hardware reference PKS needs to choose k.
        """
        require(
            table.metrics is not None,
            "PKS needs the 12-metric profile",
            SelectionError,
        )
        require(len(table) > 0, "profile table is empty", SelectionError)

        with span("pks.select", workload=table.workload):
            best = self._search_clusterings(table, golden)
        _, chosen_k, rows, members = best
        obs_metrics.observe("pks.chosen_k", chosen_k)
        total_invocations = len(table)
        representatives = tuple(
            Representative(
                kernel_name=table.kernel_name_of_row(row),
                kernel_id=int(table.kernel_id[row]),
                invocation_id=int(table.invocation_id[row]),
                row=row,
                weight=len(cluster_rows) / total_invocations,
                group=f"cluster{index}",
                group_size=len(cluster_rows),
            )
            for index, (row, cluster_rows) in enumerate(zip(rows, members))
        )
        return PksSelection(
            workload=table.workload,
            method=f"pks-{self.config.selection_policy}",
            representatives=representatives,
            total_instructions=table.total_instructions,
            num_invocations=total_invocations,
            chosen_k=chosen_k,
            cluster_rows=tuple(members),
        )

    def predict(
        self, selection: PksSelection, measurement: WorkloadMeasurement
    ) -> PredictionResult:
        """Invocation-count-weighted sum of representative cycle counts.

        Representatives whose measurement is missing or degenerate (zero
        cycles, dropped invocation, absent kernel) get the kernel-mean
        cycle count imputed — each with a diagnostic — so one corrupted
        counter degrades the prediction instead of zeroing or crashing it.
        """
        predicted = 0.0
        usable = 0
        contributions: list[float] = []
        with span("pks.predict", workload=selection.workload):
            for r in selection.representatives:
                cycles = measured_cycles_or_none(r, measurement)
                if cycles is None:
                    cycles = kernel_mean_cycles(r.kernel_name, measurement)
                    if cycles is None:
                        obs_metrics.inc("pks.predict.imputed", reason="unusable")
                        diagnostics.emit(
                            "pks.predict",
                            f"representative {r.group} (kernel "
                            f"{r.kernel_name!r}) has no measurements at all; "
                            "its cluster contributes nothing",
                        )
                        contributions.append(0.0)
                        continue
                    obs_metrics.inc("pks.predict.imputed", reason="kernel_mean")
                    diagnostics.emit(
                        "pks.predict",
                        f"representative {r.group} (kernel {r.kernel_name!r}, "
                        f"invocation {r.invocation_id}) has no usable "
                        f"measurement; imputed kernel-mean cycles {cycles:.4g}",
                    )
                contributions.append(r.group_size * cycles)
                predicted += r.group_size * cycles
                usable += 1
        require(
            usable > 0 and predicted > 0,
            f"workload {selection.workload!r}: no representative has a "
            "usable measurement to predict from",
            PredictionError,
        )
        return PredictionResult(
            workload=selection.workload,
            method=selection.method,
            predicted_cycles=predicted,
            predicted_ipc=selection.total_instructions / predicted,
            num_representatives=selection.num_representatives,
            contributions=tuple(contributions),
        )


def _sanitized_metrics(table: ProfileTable) -> np.ndarray:
    """The metric matrix with non-finite cells imputed by column mean.

    NaN/inf counters would poison PCA's SVD (``LinAlgError``) and every
    k-means distance after it. Impute with the finite column mean (0.0 for
    all-bad columns) and emit one diagnostic; the lossless alternative is
    :func:`repro.robustness.validate.repair_table` before selection.
    """
    metrics = table.metrics
    bad = ~np.isfinite(metrics)
    if not bad.any():
        return metrics
    metrics = metrics.copy()
    for col in np.flatnonzero(bad.any(axis=0)):
        clean = metrics[~bad[:, col], col]
        metrics[bad[:, col], col] = float(clean.mean()) if len(clean) else 0.0
    diagnostics.emit(
        "pks.select",
        f"workload {table.workload!r}: imputed {int(bad.sum())} non-finite "
        "metric cells with column means before PCA",
    )
    return metrics
