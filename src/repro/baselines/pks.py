"""Principal Kernel Selection (PKS) — the paper's state-of-the-art baseline.

Implemented exactly as Section II-A describes:

1. profile 12 microarchitecture-independent characteristics per invocation
   (the Nsight profile table);
2. standardize and reduce with PCA;
3. cluster invocations with k-means for every k up to 20, computing the
   prediction error of each k against a *golden reference* cycle count
   measured on real hardware, and keep the k with the smallest error (the
   dependence on a golden reference is the paper's "more technical
   concern" about PKS);
4. pick one representative invocation per cluster — first-chronological by
   default, with random and centroid policies for the Figure 5 study;
5. predict application cycles as the invocation-count-weighted sum of the
   representatives' cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.kmeans import BisectingKMeans
from repro.baselines.pca import PCA
from repro.core.prediction import PredictionResult
from repro.core.types import Representative, SampleSelection
from repro.gpu.hardware import WorkloadMeasurement
from repro.profiling.table import ProfileTable
from repro.utils.seeding import rng_for
from repro.utils.validation import require

PKS_SELECTION_POLICIES = ("first", "random", "centroid")


@dataclass(frozen=True)
class PksConfig:
    """Tunable parameters of the PKS pipeline."""

    max_k: int = 20
    variance_target: float = 0.9
    selection_policy: str = "first"
    kmeans_iterations: int = 50
    kmeans_fit_sample: int | None = 20_000

    def __post_init__(self) -> None:
        require(self.max_k >= 2, "max_k must be >= 2")
        require(
            self.selection_policy in PKS_SELECTION_POLICIES,
            f"selection_policy must be one of {PKS_SELECTION_POLICIES}",
        )


@dataclass(frozen=True)
class PksSelection(SampleSelection):
    """PKS's selection, retaining the clustering for analysis.

    ``cluster_rows[i]`` holds the profile-table rows of representative
    ``i``'s cluster. Representative weights are invocation-count shares.
    """

    chosen_k: int = 0
    cluster_rows: tuple[np.ndarray, ...] = ()


class PksPipeline:
    """Profile table (+ golden reference) -> clusters -> representatives."""

    def __init__(self, config: PksConfig | None = None):
        self.config = config or PksConfig()

    # ------------------------------------------------------------------ #

    def _representative_rows(
        self,
        table: ProfileTable,
        projected: np.ndarray,
        labels: np.ndarray,
        centroids: np.ndarray,
    ) -> tuple[list[int], list[np.ndarray]]:
        """Pick one row per non-empty cluster under the configured policy."""
        rows: list[int] = []
        members: list[np.ndarray] = []
        policy = self.config.selection_policy
        for cluster in range(len(centroids)):
            cluster_rows = np.flatnonzero(labels == cluster)
            if len(cluster_rows) == 0:
                continue
            if policy == "first":
                # Table rows are chronological, so the smallest row index is
                # the first-chronological invocation of the cluster.
                row = int(cluster_rows[0])
            elif policy == "random":
                rng = rng_for("pks-select", table.workload, cluster, len(centroids))
                row = int(cluster_rows[rng.integers(len(cluster_rows))])
            else:  # centroid
                deltas = projected[cluster_rows] - centroids[cluster]
                row = int(cluster_rows[np.argmin(np.einsum("ij,ij->i", deltas, deltas))])
            rows.append(row)
            members.append(cluster_rows)
        return rows, members

    def _predicted_cycles(
        self,
        table: ProfileTable,
        rows: list[int],
        members: list[np.ndarray],
        cycles_by_row: np.ndarray,
    ) -> float:
        """Invocation-count-weighted sum of representative cycle counts."""
        return float(
            sum(
                len(cluster_rows) * cycles_by_row[row]
                for row, cluster_rows in zip(rows, members)
            )
        )

    # ------------------------------------------------------------------ #

    def select(
        self, table: ProfileTable, golden: WorkloadMeasurement
    ) -> PksSelection:
        """Cluster ``table`` and select representatives.

        ``golden`` is the real-hardware reference PKS needs to choose k.
        """
        require(table.metrics is not None, "PKS needs the 12-metric profile")
        require(len(table) > 0, "profile table is empty")

        projected = PCA(self.config.variance_target).fit(table.metrics).transform(
            table.metrics
        )
        cycles_by_row = cycles_in_table_order(table, golden)
        measured_total = float(cycles_by_row.sum())

        best: tuple[float, int, list[int], list[np.ndarray]] | None = None
        max_k = min(self.config.max_k, len(table))
        clusterings = BisectingKMeans(
            max_k,
            seed_label=f"pks/{table.workload}",
            max_iterations=self.config.kmeans_iterations,
            fit_sample_size=self.config.kmeans_fit_sample,
        ).fit_all(projected)
        candidate_ks = [k for k in sorted(clusterings) if k >= 2] or [1]
        for k in candidate_ks:
            clustering = clusterings[k]
            rows, members = self._representative_rows(
                table, projected, clustering.labels, clustering.centroids
            )
            predicted = self._predicted_cycles(table, rows, members, cycles_by_row)
            error = abs(predicted - measured_total) / measured_total
            if best is None or error < best[0]:
                best = (error, k, rows, members)

        assert best is not None
        _, chosen_k, rows, members = best
        total_invocations = len(table)
        representatives = tuple(
            Representative(
                kernel_name=table.kernel_name_of_row(row),
                kernel_id=int(table.kernel_id[row]),
                invocation_id=int(table.invocation_id[row]),
                row=row,
                weight=len(cluster_rows) / total_invocations,
                group=f"cluster{index}",
                group_size=len(cluster_rows),
            )
            for index, (row, cluster_rows) in enumerate(zip(rows, members))
        )
        return PksSelection(
            workload=table.workload,
            method=f"pks-{self.config.selection_policy}",
            representatives=representatives,
            total_instructions=table.total_instructions,
            num_invocations=total_invocations,
            chosen_k=chosen_k,
            cluster_rows=tuple(members),
        )

    def predict(
        self, selection: PksSelection, measurement: WorkloadMeasurement
    ) -> PredictionResult:
        """Invocation-count-weighted sum of representative cycle counts."""
        predicted = float(
            sum(
                r.group_size * r.measured_cycles(measurement)
                for r in selection.representatives
            )
        )
        return PredictionResult(
            workload=selection.workload,
            method=selection.method,
            predicted_cycles=predicted,
            predicted_ipc=selection.total_instructions / predicted,
            num_representatives=selection.num_representatives,
        )


def cycles_in_table_order(
    table: ProfileTable, measurement: WorkloadMeasurement
) -> np.ndarray:
    """Golden per-invocation cycle counts aligned with the table's rows."""
    cycles = np.empty(len(table), dtype=np.float64)
    for kernel_id, kernel_name in enumerate(table.kernel_names):
        rows = table.rows_for_kernel(kernel_id)
        per_kernel = measurement.per_kernel[kernel_name]
        cycles[rows] = per_kernel.cycles[table.invocation_id[rows]]
    return cycles
