"""Periodic (systematic) sampling baseline.

Takes every ``period``-th invocation in chronological order — the GPU
analogue of periodic CPU sampling (Wunderlich et al., SMARTS). Vulnerable
to phase-aligned workloads, which is part of why targeted sampling exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.prediction import PredictionResult
from repro.core.types import Representative, SampleSelection
from repro.gpu.hardware import WorkloadMeasurement
from repro.profiling.table import ProfileTable
from repro.utils.validation import require


@dataclass(frozen=True)
class PeriodicSampler:
    """Select every ``period``-th invocation (starting at ``offset``)."""

    period: int = 100
    offset: int = 0

    def __post_init__(self) -> None:
        require(self.period >= 1, "period must be >= 1")
        require(0 <= self.offset < self.period, "offset must be in [0, period)")

    def select(self, table: ProfileTable) -> SampleSelection:
        n = len(table)
        rows = list(range(self.offset, n, self.period)) or [0]
        representatives = tuple(
            Representative(
                kernel_name=table.kernel_name_of_row(row),
                kernel_id=int(table.kernel_id[row]),
                invocation_id=int(table.invocation_id[row]),
                row=row,
                weight=1.0 / len(rows),
                group=f"period{i}",
                group_size=min(self.period, n),
            )
            for i, row in enumerate(rows)
        )
        return SampleSelection(
            workload=table.workload,
            method="periodic",
            representatives=representatives,
            total_instructions=table.total_instructions,
            num_invocations=n,
        )

    def predict(
        self, selection: SampleSelection, measurement: WorkloadMeasurement
    ) -> PredictionResult:
        sampled = [r.measured_cycles(measurement) for r in selection.representatives]
        scale = selection.num_invocations / len(sampled)
        predicted = sum(sampled) / len(sampled) * selection.num_invocations
        return PredictionResult(
            workload=selection.workload,
            method=selection.method,
            predicted_cycles=predicted,
            predicted_ipc=selection.total_instructions / predicted,
            num_representatives=selection.num_representatives,
            contributions=tuple(cycles * scale for cycles in sampled),
        )
