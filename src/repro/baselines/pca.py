"""Principal Component Analysis (from scratch, SVD-based).

PKS applies PCA to the standardized 12-characteristic matrix "to reduce
the dimensionality of the data set" (Section II-A) before clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require


def standardize(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Z-score columns of ``matrix``; zero-variance columns map to zero.

    Returns ``(standardized, mean, std)`` where ``std`` has zeros replaced
    by one so the transform is always well-defined.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    require(matrix.ndim == 2, "expected a 2-D matrix")
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    std = np.where(std == 0.0, 1.0, std)
    return (matrix - mean) / std, mean, std


@dataclass(frozen=True)
class PCAResult:
    """Fitted projection: ``transform(X) = (X - mean)/std @ components.T``."""

    mean: np.ndarray
    std: np.ndarray
    components: np.ndarray  # (n_components, n_features)
    explained_variance_ratio: np.ndarray

    @property
    def n_components(self) -> int:
        return self.components.shape[0]

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=np.float64)
        return ((matrix - self.mean) / self.std) @ self.components.T


class PCA:
    """PCA keeping enough components to explain a variance target."""

    def __init__(self, variance_target: float = 0.9, max_components: int | None = None):
        require(0.0 < variance_target <= 1.0, "variance target in (0, 1]")
        self.variance_target = variance_target
        self.max_components = max_components

    def fit(self, matrix: np.ndarray) -> PCAResult:
        """Fit on ``matrix`` (rows = observations, columns = features)."""
        standardized, mean, std = standardize(matrix)
        # Economy SVD of the centered data gives principal axes in V.
        _, singular_values, vt = np.linalg.svd(standardized, full_matrices=False)
        n = max(len(standardized) - 1, 1)
        explained = (singular_values**2) / n
        total = explained.sum()
        ratios = explained / total if total > 0 else np.zeros_like(explained)
        cumulative = np.cumsum(ratios)
        keep = int(np.searchsorted(cumulative, self.variance_target) + 1)
        keep = min(keep, len(ratios))
        if self.max_components is not None:
            keep = min(keep, self.max_components)
        keep = max(keep, 1)
        return PCAResult(
            mean=mean,
            std=std,
            components=vt[:keep],
            explained_variance_ratio=ratios[:keep],
        )
