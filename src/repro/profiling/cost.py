"""Profiling cost model.

Reproduces the profiling-time dynamics the paper reports (Section V-C,
Figure 7):

* Nsight Compute collects each metric group in a separate kernel *replay
  pass*, saving and restoring device memory between passes;
* Nsight's per-invocation bookkeeping grows super-linearly with the number
  of kernel invocations already profiled ("profiling using Nsight Compute
  becomes progressively slower as we profile an increasing number of
  kernels");
* workloads with a richer instruction-type population (MLPerf) need more
  passes, which is why the paper's profiling speedup is higher for MLPerf
  than for Cactus;
* NVBit-style binary instrumentation runs a single pass at a modest
  slowdown and is what Sieve needs for its one characteristic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Kernel-replay slowdown factors (relative to native execution).
NSIGHT_REPLAY_SLOWDOWN = 7.0
NVBIT_SLOWDOWN = 25.0

#: Metrics Nsight can collect per replay pass.
NSIGHT_METRICS_PER_PASS = 3

#: Device-memory save/restore bandwidth between replay passes (bytes/s).
SAVE_RESTORE_BANDWIDTH = 12.0e9

#: Fixed per-invocation Nsight bookkeeping (seconds) and its super-linear
#: growth per invocation already profiled.
NSIGHT_FIXED_SECONDS = 2.0e-3
NSIGHT_SUPERLINEAR = 2.0e-6

#: Fixed per-invocation NVBit overhead (seconds).
NVBIT_FIXED_SECONDS = 5.0e-5


@dataclass(frozen=True)
class ProfilingCost:
    """Modeled wall-clock cost of one profiling campaign."""

    tool: str
    workload: str
    num_invocations: int
    replay_passes: int
    replay_seconds: float
    save_restore_seconds: float
    bookkeeping_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.replay_seconds
            + self.save_restore_seconds
            + self.bookkeeping_seconds
        )

    @property
    def total_days(self) -> float:
        return self.total_seconds / 86_400.0


class ProfilingCostModel:
    """Computes profiling cost for both tools from native runtimes."""

    def nsight_cost(
        self,
        workload: str,
        native_seconds: np.ndarray,
        footprint_bytes: np.ndarray,
        num_metrics: int,
        complexity: float = 1.0,
    ) -> ProfilingCost:
        """Cost of an Nsight Compute campaign collecting ``num_metrics``.

        ``native_seconds`` and ``footprint_bytes`` are per-invocation
        arrays; ``complexity`` scales the pass count for instruction-type
        richness.
        """
        native_seconds = np.asarray(native_seconds, dtype=np.float64)
        footprint_bytes = np.asarray(footprint_bytes, dtype=np.float64)
        n = len(native_seconds)
        passes = max(1, math.ceil(num_metrics / NSIGHT_METRICS_PER_PASS * complexity))
        replay = float(native_seconds.sum()) * passes * NSIGHT_REPLAY_SLOWDOWN
        # One save plus one restore per extra pass.
        save_restore = float(footprint_bytes.sum()) * 2.0 * max(passes - 1, 0) / (
            SAVE_RESTORE_BANDWIDTH
        )
        indices = np.arange(n, dtype=np.float64)
        bookkeeping = float(
            np.sum(NSIGHT_FIXED_SECONDS * passes * (1.0 + NSIGHT_SUPERLINEAR * indices))
        )
        return ProfilingCost(
            tool="nsight-compute",
            workload=workload,
            num_invocations=n,
            replay_passes=passes,
            replay_seconds=replay,
            save_restore_seconds=save_restore,
            bookkeeping_seconds=bookkeeping,
        )

    def nvbit_cost(
        self, workload: str, native_seconds: np.ndarray
    ) -> ProfilingCost:
        """Cost of a single-pass NVBit instruction-count campaign."""
        native_seconds = np.asarray(native_seconds, dtype=np.float64)
        n = len(native_seconds)
        return ProfilingCost(
            tool="nvbit",
            workload=workload,
            num_invocations=n,
            replay_passes=1,
            replay_seconds=float(native_seconds.sum()) * NVBIT_SLOWDOWN,
            save_restore_seconds=0.0,
            bookkeeping_seconds=n * NVBIT_FIXED_SECONDS,
        )
