"""Execution-characteristic definitions (Table II).

PKS profiles twelve microarchitecture-independent characteristics; Sieve
profiles exactly one (dynamic instruction count). The definitions here are
the canonical list both profilers and the PKS feature matrix use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.kernel import PKS_METRIC_NAMES


@dataclass(frozen=True)
class MetricDefinition:
    """One profiled execution characteristic."""

    name: str
    description: str
    used_by_pks: bool
    used_by_sieve: bool


PKS_METRICS: tuple[MetricDefinition, ...] = (
    MetricDefinition(
        "coalesced_global_loads",
        "global load transactions after coalescing",
        True, False,
    ),
    MetricDefinition(
        "coalesced_global_stores",
        "global store transactions after coalescing",
        True, False,
    ),
    MetricDefinition(
        "coalesced_local_loads",
        "local load transactions after coalescing",
        True, False,
    ),
    MetricDefinition(
        "thread_global_loads", "thread-level global loads", True, False
    ),
    MetricDefinition(
        "thread_global_stores", "thread-level global stores", True, False
    ),
    MetricDefinition("thread_local_loads", "thread-level local loads", True, False),
    MetricDefinition("thread_shared_loads", "thread-level shared loads", True, False),
    MetricDefinition(
        "thread_shared_stores", "thread-level shared stores", True, False
    ),
    MetricDefinition(
        "thread_global_atomics", "thread-level global atomics", True, False
    ),
    MetricDefinition(
        "instruction_count", "dynamic thread-level instruction count", True, True
    ),
    MetricDefinition(
        "divergence_efficiency", "fraction of lanes active per issued warp",
        True, False,
    ),
    MetricDefinition("num_thread_blocks", "CTAs in the launch grid", True, False),
)

#: The single characteristic Sieve profiles.
SIEVE_METRICS: tuple[MetricDefinition, ...] = tuple(
    m for m in PKS_METRICS if m.used_by_sieve
)

assert tuple(m.name for m in PKS_METRICS) == PKS_METRIC_NAMES
