"""Profiling substrate.

Models the two profiler front-ends the paper uses: Nsight Compute (heavy,
multi-pass, used by PKS to collect 12 execution characteristics) and an
NVBit-style instrumentation tool (light-weight, single-pass, sufficient for
Sieve's single characteristic). Both produce a :class:`ProfileTable` — "a
big table with as many rows as there are kernel invocations" (Section
III-A) — plus a modeled profiling cost, which is what Figure 7 compares.
"""

from repro.profiling.cost import ProfilingCost, ProfilingCostModel
from repro.profiling.csv_io import read_profile_csv, write_profile_csv
from repro.profiling.metrics import PKS_METRICS, SIEVE_METRICS, MetricDefinition
from repro.profiling.nsight import NsightComputeProfiler
from repro.profiling.nvbit import NVBitProfiler
from repro.profiling.table import ProfileTable
from repro.profiling.two_level import TwoLevelProfile, TwoLevelProfiler

__all__ = [
    "MetricDefinition",
    "PKS_METRICS",
    "SIEVE_METRICS",
    "ProfileTable",
    "NsightComputeProfiler",
    "NVBitProfiler",
    "ProfilingCost",
    "ProfilingCostModel",
    "TwoLevelProfile",
    "TwoLevelProfiler",
    "read_profile_csv",
    "write_profile_csv",
]
