"""Shared machinery for the profiler front-ends."""

from __future__ import annotations

import numpy as np

from repro.gpu.arch import GpuArchitecture
from repro.gpu.memory import memory_traffic
from repro.gpu.timing import invocation_timing
from repro.profiling.table import ProfileTable
from repro.workloads.generator import WorkloadRun


def flatten_chronological(run: WorkloadRun) -> ProfileTable:
    """Flatten a workload run into a chronological profile table.

    The returned table carries the full metric matrix; front-ends strip it
    down to what their tool actually collects.
    """
    kernel_names = tuple(k.traits.name for k in run.kernels)
    kernel_id = np.concatenate(
        [np.full(len(k), i, dtype=np.int32) for i, k in enumerate(run.kernels)]
    )
    invocation_id = np.concatenate(
        [np.arange(len(k), dtype=np.int64) for k in run.kernels]
    )
    chrono = np.concatenate([k.batch.chrono_index for k in run.kernels])
    insn = np.concatenate([k.batch.insn_count for k in run.kernels])
    cta_size = np.concatenate([k.batch.cta_size for k in run.kernels])
    num_ctas = np.concatenate([k.batch.num_ctas for k in run.kernels])
    metrics = np.concatenate([k.batch.pks_metric_matrix() for k in run.kernels])

    order = np.argsort(chrono, kind="stable")
    return ProfileTable(
        workload=run.label,
        kernel_names=kernel_names,
        kernel_id=kernel_id[order],
        invocation_id=invocation_id[order],
        insn_count=insn[order],
        cta_size=cta_size[order],
        num_ctas=num_ctas[order],
        metrics=metrics[order],
    )


def native_runtimes_and_footprints(
    run: WorkloadRun, arch: GpuArchitecture
) -> tuple[np.ndarray, np.ndarray]:
    """Noiseless native runtime (s) and memory footprint (bytes) per
    invocation, in chronological order — the inputs to the cost model."""
    seconds_parts: list[np.ndarray] = []
    footprint_parts: list[np.ndarray] = []
    chrono_parts: list[np.ndarray] = []
    for kernel in run.kernels:
        timing = invocation_timing(arch, kernel.traits, kernel.batch)
        seconds_parts.append(timing.total_cycles / (arch.clock_ghz * 1e9))
        traffic = memory_traffic(arch, kernel.traits, kernel.batch)
        footprint_parts.append(np.minimum(traffic.dram_bytes, arch.memory_gb * 1e9))
        chrono_parts.append(kernel.batch.chrono_index)
    order = np.argsort(np.concatenate(chrono_parts), kind="stable")
    return (
        np.concatenate(seconds_parts)[order],
        np.concatenate(footprint_parts)[order],
    )
