"""CSV serialization of profile tables.

Section IV: "The data is converted into a readable CSV file which serves as
input to PKS and Sieve." This module round-trips :class:`ProfileTable`
through that CSV format.

The preamble row carries the workload name and the expected invocation-row
count (``# workload,<name>,rows,<n>``) so truncated files are detectable;
readers tolerate older files without the count. :func:`read_profile_csv`
is strict: any malformed row raises :class:`ProfileError` carrying the
file path and 1-based line number. For a lenient scan that salvages the
good rows and reports everything wrong, see
:func:`repro.robustness.validate.validate_profile_csv`.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.gpu.kernel import PKS_METRIC_NAMES
from repro.profiling.table import ProfileTable
from repro.utils.errors import ProfileError
from repro.utils.validation import require

_BASE_COLUMNS = ("kernel_name", "invocation_id", "insn_count", "cta_size", "num_ctas")


def write_profile_csv(table: ProfileTable, path: str | Path) -> None:
    """Write ``table`` to ``path`` as CSV (one row per invocation)."""
    path = Path(path)
    with_metrics = table.metrics is not None
    header = list(_BASE_COLUMNS)
    if with_metrics:
        header += [name for name in table.metric_names if name != "instruction_count"]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["# workload", table.workload, "rows", len(table)])
        writer.writerow(header)
        for row in range(len(table)):
            record: list[object] = [
                table.kernel_name_of_row(row),
                int(table.invocation_id[row]),
                int(table.insn_count[row]),
                int(table.cta_size[row]),
                int(table.num_ctas[row]),
            ]
            if with_metrics:
                record += [
                    repr(float(table.metrics[row, j]))
                    for j, name in enumerate(table.metric_names)
                    if name != "instruction_count"
                ]
            writer.writerow(record)


def parse_preamble(preamble: list[str], path: Path) -> tuple[str, int | None]:
    """Extract (workload, declared row count) from the preamble row."""
    require(
        len(preamble) >= 2 and preamble[0] == "# workload",
        "missing workload preamble",
        lambda m: ProfileError(m, path=str(path), row=1),
    )
    workload = preamble[1]
    declared_rows: int | None = None
    if len(preamble) >= 4 and preamble[2] == "rows":
        try:
            declared_rows = int(preamble[3])
        except ValueError:
            raise ProfileError(
                f"unparseable row count {preamble[3]!r}", path=str(path), row=1
            ) from None
    return workload, declared_rows


def parse_header(header: list[str], path: Path) -> list[str]:
    """Check the base columns and return the trailing metric columns."""
    require(
        tuple(header[: len(_BASE_COLUMNS)]) == _BASE_COLUMNS,
        f"unexpected CSV columns {header[:len(_BASE_COLUMNS)]!r}",
        lambda m: ProfileError(m, path=str(path), row=2),
    )
    metric_columns = header[len(_BASE_COLUMNS):]
    unknown = [name for name in metric_columns if name not in PKS_METRIC_NAMES]
    require(
        not unknown,
        f"unknown metric columns {unknown!r}",
        lambda m: ProfileError(m, path=str(path), row=2),
    )
    return metric_columns


def parse_data_row(
    row: list[str], num_metrics: int
) -> tuple[str, int, int, int, int, list[float]]:
    """Parse one data row; raises plain ``ValueError`` on any bad field."""
    expected = len(_BASE_COLUMNS) + num_metrics
    if len(row) != expected:
        raise ValueError(f"expected {expected} columns, found {len(row)}")
    name = row[0]
    invocation = int(row[1])
    insn = int(row[2])
    cta = int(row[3])
    ctas = int(row[4])
    metric_values = [float(v) for v in row[5:]]
    return name, invocation, insn, cta, ctas, metric_values


def read_profile_csv(path: str | Path) -> ProfileTable:
    """Read a profile table previously written by :func:`write_profile_csv`.

    Malformed input — empty files, bad headers, rows with the wrong column
    count or unparseable numbers, missing metric columns, or a row count
    that contradicts the preamble (a truncated file) — raises
    :class:`ProfileError` with the file path and 1-based row number.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            preamble = next(reader)
        except StopIteration:
            raise ProfileError("empty profile CSV", path=str(path)) from None
        workload, declared_rows = parse_preamble(preamble, path)
        try:
            header = next(reader)
        except StopIteration:
            raise ProfileError(
                "missing header row", path=str(path), row=2
            ) from None
        metric_columns = parse_header(header, path)
        rows = []
        line_numbers = []
        for row in reader:
            rows.append(row)
            line_numbers.append(reader.line_num)

    require(
        len(rows) > 0,
        "profile CSV contains no invocation rows",
        lambda m: ProfileError(m, path=str(path)),
    )
    if declared_rows is not None and declared_rows != len(rows):
        raise ProfileError(
            f"row count mismatch: preamble declares {declared_rows} rows, "
            f"found {len(rows)} (file truncated or rows dropped?)",
            path=str(path),
        )

    kernel_names: list[str] = []
    kernel_index: dict[str, int] = {}
    kernel_id = np.empty(len(rows), dtype=np.int32)
    invocation_id = np.empty(len(rows), dtype=np.int64)
    insn = np.empty(len(rows), dtype=np.int64)
    cta_size = np.empty(len(rows), dtype=np.int32)
    num_ctas = np.empty(len(rows), dtype=np.int64)
    metric_values = (
        np.empty((len(rows), len(metric_columns)), dtype=np.float64)
        if metric_columns
        else None
    )
    for i, row in enumerate(rows):
        try:
            name, inv, count, cta, ctas, values = parse_data_row(
                row, len(metric_columns)
            )
        except ValueError as exc:
            raise ProfileError(
                str(exc), path=str(path), row=line_numbers[i]
            ) from None
        if name not in kernel_index:
            kernel_index[name] = len(kernel_names)
            kernel_names.append(name)
        kernel_id[i] = kernel_index[name]
        invocation_id[i] = inv
        insn[i] = count
        cta_size[i] = cta
        num_ctas[i] = ctas
        if metric_values is not None:
            metric_values[i] = values

    metrics = None
    if metric_values is not None:
        # Reassemble the full Table II matrix in canonical column order,
        # reinserting instruction_count from its dedicated column. The
        # stored columns may appear in any order; all non-instruction
        # metrics must be present.
        stored = {name: j for j, name in enumerate(metric_columns)}
        missing = [
            name
            for name in PKS_METRIC_NAMES
            if name != "instruction_count" and name not in stored
        ]
        require(
            not missing,
            f"missing metric columns {missing!r}",
            lambda m: ProfileError(m, path=str(path), row=2),
        )
        metrics = np.empty((len(rows), len(PKS_METRIC_NAMES)), dtype=np.float64)
        for j, name in enumerate(PKS_METRIC_NAMES):
            if name == "instruction_count":
                metrics[:, j] = insn.astype(np.float64)
            else:
                metrics[:, j] = metric_values[:, stored[name]]

    return ProfileTable(
        workload=workload,
        kernel_names=tuple(kernel_names),
        kernel_id=kernel_id,
        invocation_id=invocation_id,
        insn_count=insn,
        cta_size=cta_size,
        num_ctas=num_ctas,
        metrics=metrics,
    )
