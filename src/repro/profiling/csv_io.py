"""CSV serialization of profile tables.

Section IV: "The data is converted into a readable CSV file which serves as
input to PKS and Sieve." This module round-trips :class:`ProfileTable`
through that CSV format.

The preamble row carries the workload name and the expected invocation-row
count (``# workload,<name>,rows,<n>``) so truncated files are detectable;
readers tolerate older files without the count. :func:`read_profile_csv`
is strict: any malformed row raises :class:`ProfileError` carrying the
file path and 1-based line number. For a lenient scan that salvages the
good rows and reports everything wrong, see
:func:`repro.robustness.validate.validate_profile_csv`.
"""

from __future__ import annotations

import csv
import io
import json
import sys
from pathlib import Path
from typing import Iterator, TextIO

import numpy as np

from repro.gpu.kernel import PKS_METRIC_NAMES
from repro.profiling.table import ProfileTable
from repro.utils.errors import ProfileError
from repro.utils.validation import require

_BASE_COLUMNS = ("kernel_name", "invocation_id", "insn_count", "cta_size", "num_ctas")


def write_profile_csv(table: ProfileTable, path: str | Path) -> None:
    """Write ``table`` to ``path`` as CSV (one row per invocation)."""
    path = Path(path)
    with_metrics = table.metrics is not None
    header = list(_BASE_COLUMNS)
    if with_metrics:
        header += [name for name in table.metric_names if name != "instruction_count"]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["# workload", table.workload, "rows", len(table)])
        writer.writerow(header)
        for row in range(len(table)):
            record: list[object] = [
                table.kernel_name_of_row(row),
                int(table.invocation_id[row]),
                int(table.insn_count[row]),
                int(table.cta_size[row]),
                int(table.num_ctas[row]),
            ]
            if with_metrics:
                record += [
                    repr(float(table.metrics[row, j]))
                    for j, name in enumerate(table.metric_names)
                    if name != "instruction_count"
                ]
            writer.writerow(record)


def parse_preamble(preamble: list[str], path: Path) -> tuple[str, int | None]:
    """Extract (workload, declared row count) from the preamble row."""
    require(
        len(preamble) >= 2 and preamble[0] == "# workload",
        "missing workload preamble",
        lambda m: ProfileError(m, path=str(path), row=1),
    )
    workload = preamble[1]
    declared_rows: int | None = None
    if len(preamble) >= 4 and preamble[2] == "rows":
        try:
            declared_rows = int(preamble[3])
        except ValueError:
            raise ProfileError(
                f"unparseable row count {preamble[3]!r}", path=str(path), row=1
            ) from None
    return workload, declared_rows


def parse_header(header: list[str], path: Path) -> list[str]:
    """Check the base columns and return the trailing metric columns."""
    require(
        tuple(header[: len(_BASE_COLUMNS)]) == _BASE_COLUMNS,
        f"unexpected CSV columns {header[:len(_BASE_COLUMNS)]!r}",
        lambda m: ProfileError(m, path=str(path), row=2),
    )
    metric_columns = header[len(_BASE_COLUMNS):]
    unknown = [name for name in metric_columns if name not in PKS_METRIC_NAMES]
    require(
        not unknown,
        f"unknown metric columns {unknown!r}",
        lambda m: ProfileError(m, path=str(path), row=2),
    )
    return metric_columns


def parse_data_row(
    row: list[str], num_metrics: int
) -> tuple[str, int, int, int, int, list[float]]:
    """Parse one data row; raises plain ``ValueError`` on any bad field."""
    expected = len(_BASE_COLUMNS) + num_metrics
    if len(row) != expected:
        raise ValueError(f"expected {expected} columns, found {len(row)}")
    name = row[0]
    invocation = int(row[1])
    insn = int(row[2])
    cta = int(row[3])
    ctas = int(row[4])
    metric_values = [float(v) for v in row[5:]]
    return name, invocation, insn, cta, ctas, metric_values


def read_profile_csv(path: str | Path) -> ProfileTable:
    """Read a profile table previously written by :func:`write_profile_csv`.

    Malformed input — empty files, bad headers, rows with the wrong column
    count or unparseable numbers, missing metric columns, or a row count
    that contradicts the preamble (a truncated file) — raises
    :class:`ProfileError` with the file path and 1-based row number.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            preamble = next(reader)
        except StopIteration:
            raise ProfileError("empty profile CSV", path=str(path)) from None
        workload, declared_rows = parse_preamble(preamble, path)
        try:
            header = next(reader)
        except StopIteration:
            raise ProfileError(
                "missing header row", path=str(path), row=2
            ) from None
        metric_columns = parse_header(header, path)
        rows = []
        line_numbers = []
        for row in reader:
            rows.append(row)
            line_numbers.append(reader.line_num)

    require(
        len(rows) > 0,
        "profile CSV contains no invocation rows",
        lambda m: ProfileError(m, path=str(path)),
    )
    if declared_rows is not None and declared_rows != len(rows):
        raise ProfileError(
            f"row count mismatch: preamble declares {declared_rows} rows, "
            f"found {len(rows)} (file truncated or rows dropped?)",
            path=str(path),
        )

    kernel_names: list[str] = []
    kernel_index: dict[str, int] = {}
    kernel_id = np.empty(len(rows), dtype=np.int32)
    invocation_id = np.empty(len(rows), dtype=np.int64)
    insn = np.empty(len(rows), dtype=np.int64)
    cta_size = np.empty(len(rows), dtype=np.int32)
    num_ctas = np.empty(len(rows), dtype=np.int64)
    metric_values = (
        np.empty((len(rows), len(metric_columns)), dtype=np.float64)
        if metric_columns
        else None
    )
    for i, row in enumerate(rows):
        try:
            name, inv, count, cta, ctas, values = parse_data_row(
                row, len(metric_columns)
            )
        except ValueError as exc:
            raise ProfileError(
                str(exc), path=str(path), row=line_numbers[i]
            ) from None
        if name not in kernel_index:
            kernel_index[name] = len(kernel_names)
            kernel_names.append(name)
        kernel_id[i] = kernel_index[name]
        invocation_id[i] = inv
        insn[i] = count
        cta_size[i] = cta
        num_ctas[i] = ctas
        if metric_values is not None:
            metric_values[i] = values

    metrics = None
    if metric_values is not None:
        # Reassemble the full Table II matrix in canonical column order,
        # reinserting instruction_count from its dedicated column. The
        # stored columns may appear in any order; all non-instruction
        # metrics must be present.
        stored = {name: j for j, name in enumerate(metric_columns)}
        missing = [
            name
            for name in PKS_METRIC_NAMES
            if name != "instruction_count" and name not in stored
        ]
        require(
            not missing,
            f"missing metric columns {missing!r}",
            lambda m: ProfileError(m, path=str(path), row=2),
        )
        metrics = np.empty((len(rows), len(PKS_METRIC_NAMES)), dtype=np.float64)
        for j, name in enumerate(PKS_METRIC_NAMES):
            if name == "instruction_count":
                metrics[:, j] = insn.astype(np.float64)
            else:
                metrics[:, j] = metric_values[:, stored[name]]

    return ProfileTable(
        workload=workload,
        kernel_names=tuple(kernel_names),
        kernel_id=kernel_id,
        invocation_id=invocation_id,
        insn_count=insn,
        cta_size=cta_size,
        num_ctas=num_ctas,
        metrics=metrics,
    )


#: JSONL feed fields, one object per invocation row. ``workload`` and
#: ``rows`` may appear in an optional leading header object instead.
_JSONL_FIELDS = _BASE_COLUMNS


class ProfileTableReader:
    """Chunked reader over a profile feed: CSV, JSONL, file or stdin.

    Yields :class:`ProfileTable` chunks of at most ``chunk_rows`` rows,
    suitable for a method's ``begin_stream`` surface. The reader keeps one
    *growing* kernel-name map across chunks, so kernel ids are stable: a
    name's id in chunk ``k`` equals its id in every later chunk, and each
    chunk's ``kernel_names`` tuple is the map so far (a prefix-consistent
    view). Only O(chunk_rows + kernels) rows are resident at any time.

    ``source`` is a path, ``"-"`` (stdin), or an open text handle. The
    format is taken from ``fmt`` (``"csv"``/``"jsonl"``), else sniffed:
    a ``.jsonl``/``.ndjson`` suffix or a first byte of ``{`` means JSONL.

    * CSV feeds use the :func:`write_profile_csv` layout (preamble +
      header + rows); trailing metric columns are accepted and dropped —
      streams consume the Sieve-visible columns.
    * JSONL feeds carry one object per row with keys ``kernel_name``,
      ``invocation_id``, ``insn_count``, ``cta_size``, ``num_ctas``; an
      optional leading ``{"workload": ..., "rows": ...}`` header object
      plays the preamble's role.

    Malformed rows raise :class:`ProfileError` with the 1-based line
    number. When the feed declared a row count, exhausting it early
    raises the same truncation error as :func:`read_profile_csv`.
    """

    def __init__(
        self,
        source: str | Path | TextIO,
        *,
        chunk_rows: int = 4096,
        fmt: str | None = None,
        workload: str | None = None,
    ):
        require(chunk_rows >= 1, "chunk_rows must be >= 1", ProfileError)
        require(
            fmt in (None, "csv", "jsonl"),
            f"unknown feed format {fmt!r} (expected 'csv' or 'jsonl')",
            ProfileError,
        )
        self.chunk_rows = chunk_rows
        self.workload = workload or "stream"
        self.declared_rows: int | None = None
        self.rows_read = 0
        self._names: list[str] = []
        self._index: dict[str, int] = {}
        if hasattr(source, "read"):
            self._handle: TextIO = source  # type: ignore[assignment]
            self._path = Path(getattr(source, "name", "<stream>"))
            self._owns_handle = False
        elif str(source) == "-":
            self._handle = sys.stdin
            self._path = Path("<stdin>")
            self._owns_handle = False
        else:
            self._path = Path(source)
            self._handle = self._path.open(newline="")
            self._owns_handle = True
        self._fmt = fmt or self._sniff()

    def _sniff(self) -> str:
        suffix = self._path.suffix.lower()
        if suffix in (".jsonl", ".ndjson"):
            return "jsonl"
        if suffix == ".csv":
            return "csv"
        if self._handle.seekable():
            pos = self._handle.tell()
            first = self._handle.read(1)
            self._handle.seek(pos)
            return "jsonl" if first == "{" else "csv"
        # Non-seekable (a pipe): peek by buffering the first line.
        first_line = self._handle.readline()
        rest = self._handle
        self._handle = _ChainedText(first_line, rest)
        return "jsonl" if first_line.lstrip()[:1] == "{" else "csv"

    def _register(self, name: str) -> int:
        slot = self._index.get(name)
        if slot is None:
            slot = len(self._names)
            self._index[name] = slot
            self._names.append(name)
        return slot

    def _chunk_from(
        self, parsed: list[tuple[str, int, int, int, int]]
    ) -> ProfileTable:
        n = len(parsed)
        kernel_id = np.empty(n, dtype=np.int32)
        invocation_id = np.empty(n, dtype=np.int64)
        insn = np.empty(n, dtype=np.int64)
        cta_size = np.empty(n, dtype=np.int32)
        num_ctas = np.empty(n, dtype=np.int64)
        for i, (name, inv, count, cta, ctas) in enumerate(parsed):
            kernel_id[i] = self._register(name)
            invocation_id[i] = inv
            insn[i] = count
            cta_size[i] = cta
            num_ctas[i] = ctas
        self.rows_read += n
        return ProfileTable(
            workload=self.workload,
            kernel_names=tuple(self._names),
            kernel_id=kernel_id,
            invocation_id=invocation_id,
            insn_count=insn,
            cta_size=cta_size,
            num_ctas=num_ctas,
        )

    def __iter__(self) -> Iterator[ProfileTable]:
        try:
            rows = self._iter_csv() if self._fmt == "csv" else self._iter_jsonl()
            pending: list[tuple[str, int, int, int, int]] = []
            for record in rows:
                pending.append(record)
                if len(pending) >= self.chunk_rows:
                    yield self._chunk_from(pending)
                    pending = []
            if pending:
                yield self._chunk_from(pending)
            if (
                self.declared_rows is not None
                and self.rows_read != self.declared_rows
            ):
                raise ProfileError(
                    f"row count mismatch: feed declares {self.declared_rows} "
                    f"rows, delivered {self.rows_read} (truncated feed?)",
                    path=str(self._path),
                )
        finally:
            if self._owns_handle:
                self._handle.close()

    def _iter_csv(self) -> Iterator[tuple[str, int, int, int, int]]:
        reader = csv.reader(self._handle)
        try:
            preamble = next(reader)
        except StopIteration:
            raise ProfileError("empty profile feed", path=str(self._path)) from None
        self.workload, self.declared_rows = parse_preamble(preamble, self._path)
        try:
            header = next(reader)
        except StopIteration:
            raise ProfileError(
                "missing header row", path=str(self._path), row=2
            ) from None
        metric_columns = parse_header(header, self._path)
        for row in reader:
            try:
                name, inv, count, cta, ctas, _ = parse_data_row(
                    row, len(metric_columns)
                )
            except ValueError as exc:
                raise ProfileError(
                    str(exc), path=str(self._path), row=reader.line_num
                ) from None
            yield name, inv, count, cta, ctas

    def _iter_jsonl(self) -> Iterator[tuple[str, int, int, int, int]]:
        for line_num, line in enumerate(self._handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ProfileError(
                    f"unparseable JSON: {exc}", path=str(self._path), row=line_num
                ) from None
            if not isinstance(record, dict):
                raise ProfileError(
                    f"expected a JSON object, got {type(record).__name__}",
                    path=str(self._path),
                    row=line_num,
                )
            if "kernel_name" not in record:
                # Leading header object: workload / declared row count.
                if line_num == 1 and ("workload" in record or "rows" in record):
                    self.workload = str(record.get("workload", self.workload))
                    if "rows" in record:
                        self.declared_rows = int(record["rows"])
                    continue
                raise ProfileError(
                    "row object missing 'kernel_name'",
                    path=str(self._path),
                    row=line_num,
                )
            try:
                yield (
                    str(record["kernel_name"]),
                    int(record["invocation_id"]),
                    int(record["insn_count"]),
                    int(record["cta_size"]),
                    int(record["num_ctas"]),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ProfileError(
                    f"bad row object: {exc!r}", path=str(self._path), row=line_num
                ) from None


class _ChainedText(io.TextIOBase):
    """Re-prefix a consumed first line onto a non-seekable text stream."""

    def __init__(self, head: str, rest: TextIO):
        self._head = head
        self._rest = rest

    def readline(self, size: int = -1) -> str:  # pragma: no cover - trivial
        if self._head:
            line, self._head = self._head, ""
            return line
        return self._rest.readline(size)

    def read(self, size: int = -1) -> str:
        if size is None or size < 0:
            data, self._head = self._head, ""
            return data + self._rest.read()
        if self._head:
            data, self._head = self._head[:size], self._head[size:]
            return data
        return self._rest.read(size)

    def __iter__(self):
        while True:
            line = self.readline()
            if not line:
                return
            yield line
