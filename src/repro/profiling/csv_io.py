"""CSV serialization of profile tables.

Section IV: "The data is converted into a readable CSV file which serves as
input to PKS and Sieve." This module round-trips :class:`ProfileTable`
through that CSV format.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.gpu.kernel import PKS_METRIC_NAMES
from repro.profiling.table import ProfileTable
from repro.utils.validation import require

_BASE_COLUMNS = ("kernel_name", "invocation_id", "insn_count", "cta_size", "num_ctas")


def write_profile_csv(table: ProfileTable, path: str | Path) -> None:
    """Write ``table`` to ``path`` as CSV (one row per invocation)."""
    path = Path(path)
    with_metrics = table.metrics is not None
    header = list(_BASE_COLUMNS)
    if with_metrics:
        header += [name for name in table.metric_names if name != "instruction_count"]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["# workload", table.workload])
        writer.writerow(header)
        for row in range(len(table)):
            record: list[object] = [
                table.kernel_name_of_row(row),
                int(table.invocation_id[row]),
                int(table.insn_count[row]),
                int(table.cta_size[row]),
                int(table.num_ctas[row]),
            ]
            if with_metrics:
                record += [
                    repr(float(table.metrics[row, j]))
                    for j, name in enumerate(table.metric_names)
                    if name != "instruction_count"
                ]
            writer.writerow(record)


def read_profile_csv(path: str | Path) -> ProfileTable:
    """Read a profile table previously written by :func:`write_profile_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        preamble = next(reader)
        require(preamble[:1] == ["# workload"], "missing workload preamble")
        workload = preamble[1]
        header = next(reader)
        require(
            tuple(header[: len(_BASE_COLUMNS)]) == _BASE_COLUMNS,
            "unexpected CSV columns",
        )
        metric_columns = header[len(_BASE_COLUMNS):]
        rows = list(reader)

    kernel_names: list[str] = []
    kernel_index: dict[str, int] = {}
    kernel_id = np.empty(len(rows), dtype=np.int32)
    invocation_id = np.empty(len(rows), dtype=np.int64)
    insn = np.empty(len(rows), dtype=np.int64)
    cta_size = np.empty(len(rows), dtype=np.int32)
    num_ctas = np.empty(len(rows), dtype=np.int64)
    metric_values = (
        np.empty((len(rows), len(metric_columns)), dtype=np.float64)
        if metric_columns
        else None
    )
    for i, row in enumerate(rows):
        name = row[0]
        if name not in kernel_index:
            kernel_index[name] = len(kernel_names)
            kernel_names.append(name)
        kernel_id[i] = kernel_index[name]
        invocation_id[i] = int(row[1])
        insn[i] = int(row[2])
        cta_size[i] = int(row[3])
        num_ctas[i] = int(row[4])
        if metric_values is not None:
            metric_values[i] = [float(v) for v in row[5:]]

    metrics = None
    if metric_values is not None:
        # Reassemble the full Table II matrix in canonical column order,
        # reinserting instruction_count from its dedicated column.
        metrics = np.empty((len(rows), len(PKS_METRIC_NAMES)), dtype=np.float64)
        stored = {name: j for j, name in enumerate(metric_columns)}
        for j, name in enumerate(PKS_METRIC_NAMES):
            if name == "instruction_count":
                metrics[:, j] = insn.astype(np.float64)
            else:
                metrics[:, j] = metric_values[:, stored[name]]

    return ProfileTable(
        workload=workload,
        kernel_names=tuple(kernel_names),
        kernel_id=kernel_id,
        invocation_id=invocation_id,
        insn_count=insn,
        cta_size=cta_size,
        num_ctas=num_ctas,
        metrics=metrics,
    )
