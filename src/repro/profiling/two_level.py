"""Two-level profiling (the PKA mitigation for Nsight's cost).

Section II-B: "Baddouh et al. propose two-level profiling in which they
perform detailed profiling collecting the 12 characteristics for a first
batch of kernels, followed by low-overhead profiling to collect the kernel
names and grid dimensions for the remaining kernels in the workload."

:class:`TwoLevelProfiler` emits a detailed (12-metric) table for the first
``detailed_budget`` chronological invocations and a light (name + launch
shape) table for the remainder, with the modeled cost of each phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.arch import AMPERE_RTX3080, GpuArchitecture
from repro.observability import metrics, span
from repro.profiling.base import flatten_chronological, native_runtimes_and_footprints
from repro.profiling.cost import ProfilingCost, ProfilingCostModel
from repro.profiling.metrics import PKS_METRICS
from repro.profiling.table import ProfileTable
from repro.utils.validation import require
from repro.workloads.generator import WorkloadRun


@dataclass(frozen=True)
class TwoLevelProfile:
    """Output of a two-level profiling campaign."""

    detailed: ProfileTable  # first batch, full 12-metric matrix
    light: ProfileTable  # remainder: names + launch shapes (+ insn count)
    detailed_cost: ProfilingCost
    light_cost: ProfilingCost

    @property
    def total_seconds(self) -> float:
        return self.detailed_cost.total_seconds + self.light_cost.total_seconds

    @property
    def num_invocations(self) -> int:
        return len(self.detailed) + len(self.light)


def _slice_table(table: ProfileTable, rows: np.ndarray) -> ProfileTable:
    return ProfileTable(
        workload=table.workload,
        kernel_names=table.kernel_names,
        kernel_id=table.kernel_id[rows],
        invocation_id=table.invocation_id[rows],
        insn_count=table.insn_count[rows],
        cta_size=table.cta_size[rows],
        num_ctas=table.num_ctas[rows],
        metrics=None if table.metrics is None else table.metrics[rows],
    )


class TwoLevelProfiler:
    """Detailed profiling for a prefix, light profiling for the rest."""

    def __init__(
        self,
        detailed_budget: int,
        arch: GpuArchitecture = AMPERE_RTX3080,
    ):
        require(detailed_budget >= 1, "detailed budget must be >= 1")
        self.detailed_budget = detailed_budget
        self.arch = arch
        self._cost_model = ProfilingCostModel()

    def profile(self, run: WorkloadRun) -> TwoLevelProfile:
        """Profile ``run`` with the two-level scheme."""
        with span("profiling.two_level", workload=run.label):
            full = flatten_chronological(run)
            native_seconds, footprints = native_runtimes_and_footprints(run, self.arch)
            budget = min(self.detailed_budget, len(full))
            head = np.arange(budget)
            tail = np.arange(budget, len(full))

            detailed = _slice_table(full, head)
            light = _slice_table(full, tail).without_metrics()

            metrics.inc("profiling.two_level.detailed", int(budget))
            metrics.inc("profiling.two_level.light", int(len(full) - budget))
            detailed_cost = self._cost_model.nsight_cost(
                run.label,
                native_seconds[head],
                footprints[head],
                num_metrics=len(PKS_METRICS),
                complexity=run.spec.profiling_complexity,
            )
            light_cost = self._cost_model.nvbit_cost(run.label, native_seconds[tail])
            return TwoLevelProfile(
                detailed=detailed,
                light=light,
                detailed_cost=detailed_cost,
                light_cost=light_cost,
            )
