"""NVBit-style light-weight instrumentation profiler.

Collects exactly what Sieve needs (Section III-A): kernel name, kernel
invocation ID and dynamic instruction count, plus the launch shape that
comes for free with every kernel launch. Single pass, modest slowdown.
"""

from __future__ import annotations

from repro.gpu.arch import AMPERE_RTX3080, GpuArchitecture
from repro.profiling.base import flatten_chronological, native_runtimes_and_footprints
from repro.profiling.cost import ProfilingCost, ProfilingCostModel
from repro.profiling.table import ProfileTable
from repro.workloads.generator import WorkloadRun


class NVBitProfiler:
    """Single-characteristic profiler (what Sieve uses)."""

    def __init__(self, arch: GpuArchitecture = AMPERE_RTX3080):
        self.arch = arch
        self._cost_model = ProfilingCostModel()

    def profile(self, run: WorkloadRun) -> tuple[ProfileTable, ProfilingCost]:
        """Profile ``run``; returns (instruction-count table, modeled cost)."""
        table = flatten_chronological(run).without_metrics()
        native_seconds, _ = native_runtimes_and_footprints(run, self.arch)
        cost = self._cost_model.nvbit_cost(run.label, native_seconds)
        return table, cost
