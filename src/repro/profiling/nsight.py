"""Nsight Compute-style detailed profiler.

Collects the full 12-characteristic Table II matrix (what PKS needs) by
replaying each kernel invocation once per metric group, with device-memory
save/restore between passes and bookkeeping that grows super-linearly in
the number of invocations profiled — the behaviours the paper identifies as
making PKS profiling take "multiple days, and in some cases even several
weeks" (Section II-B).
"""

from __future__ import annotations

from repro.gpu.arch import AMPERE_RTX3080, GpuArchitecture
from repro.profiling.base import flatten_chronological, native_runtimes_and_footprints
from repro.profiling.cost import ProfilingCost, ProfilingCostModel
from repro.profiling.metrics import PKS_METRICS
from repro.profiling.table import ProfileTable
from repro.workloads.generator import WorkloadRun


class NsightComputeProfiler:
    """Twelve-characteristic profiler (what PKS uses)."""

    def __init__(self, arch: GpuArchitecture = AMPERE_RTX3080):
        self.arch = arch
        self._cost_model = ProfilingCostModel()

    def profile(self, run: WorkloadRun) -> tuple[ProfileTable, ProfilingCost]:
        """Profile ``run``; returns (full metric table, modeled cost)."""
        table = flatten_chronological(run)
        native_seconds, footprints = native_runtimes_and_footprints(run, self.arch)
        cost = self._cost_model.nsight_cost(
            run.label,
            native_seconds,
            footprints,
            num_metrics=len(PKS_METRICS),
            complexity=run.spec.profiling_complexity,
        )
        return table, cost
