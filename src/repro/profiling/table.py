"""The per-invocation profile table both samplers consume.

Section III-A: "the profile essentially is a big table with as many rows as
there are kernel invocations". Rows are stored in chronological order, the
order a real profiler emits them. A Sieve profile carries only instruction
counts and launch shapes; a PKS profile additionally carries the full
12-column Table II metric matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.kernel import PKS_METRIC_NAMES
from repro.utils.validation import require


@dataclass
class ProfileTable:
    """Chronologically ordered per-invocation profile of one workload.

    ``kernel_names[kernel_id[i]]`` is row ``i``'s kernel;
    ``invocation_id[i]`` is the row's per-kernel invocation index (the
    paper's "kernel invocation ID"). ``metrics`` is either ``None`` (Sieve
    profile) or the ``(rows, 12)`` Table II matrix (PKS profile).
    """

    workload: str
    kernel_names: tuple[str, ...]
    kernel_id: np.ndarray  # int32, per row
    invocation_id: np.ndarray  # int64, per-kernel chronological index
    insn_count: np.ndarray  # int64
    cta_size: np.ndarray  # int32
    num_ctas: np.ndarray  # int64
    metrics: np.ndarray | None = None
    metric_names: tuple[str, ...] = field(default=PKS_METRIC_NAMES)

    def __post_init__(self) -> None:
        n = len(self.kernel_id)
        for column in (self.invocation_id, self.insn_count, self.cta_size,
                       self.num_ctas):
            require(len(column) == n, "profile columns must align")
        require(bool(np.all(self.kernel_id >= 0)), "kernel ids must be >= 0")
        require(
            bool(np.all(self.kernel_id < len(self.kernel_names))),
            "kernel id out of range",
        )
        if self.metrics is not None:
            require(self.metrics.shape == (n, len(self.metric_names)),
                    "metric matrix shape mismatch")

    def __len__(self) -> int:
        return len(self.kernel_id)

    @property
    def num_kernels(self) -> int:
        return len(self.kernel_names)

    @property
    def total_instructions(self) -> int:
        return int(self.insn_count.sum())

    def rows_for_kernel(self, kernel_id: int) -> np.ndarray:
        """Row indices (chronological) of one kernel's invocations."""
        return np.flatnonzero(self.kernel_id == kernel_id)

    def kernel_name_of_row(self, row: int) -> str:
        return self.kernel_names[int(self.kernel_id[row])]

    def without_metrics(self) -> "ProfileTable":
        """A copy stripped to the Sieve-visible columns."""
        return ProfileTable(
            workload=self.workload,
            kernel_names=self.kernel_names,
            kernel_id=self.kernel_id,
            invocation_id=self.invocation_id,
            insn_count=self.insn_count,
            cta_size=self.cta_size,
            num_ctas=self.num_ctas,
            metrics=None,
        )

    def slice_rows(self, start: int, stop: int) -> "ProfileTable":
        """Rows ``[start, stop)`` as a view-backed chunk.

        The chunk shares ``kernel_names`` (and therefore kernel ids) with
        the parent table, so streaming consumers can merge chunks without
        remapping ids. Columns are numpy views, not copies.
        """
        return ProfileTable(
            workload=self.workload,
            kernel_names=self.kernel_names,
            kernel_id=self.kernel_id[start:stop],
            invocation_id=self.invocation_id[start:stop],
            insn_count=self.insn_count[start:stop],
            cta_size=self.cta_size[start:stop],
            num_ctas=self.num_ctas[start:stop],
            metrics=None if self.metrics is None else self.metrics[start:stop],
        )


def concat_profile_tables(chunks: "list[ProfileTable]") -> ProfileTable:
    """Concatenate chunks back into one chronologically ordered table.

    Kernel names are unioned in first-seen order and each chunk's kernel
    ids are remapped onto the union, so chunks produced by independent
    readers (whose name tables grow as kernels appear) concatenate as
    cleanly as slices of one parent table. All chunks must agree on the
    workload name and on whether they carry the metric matrix.
    """
    require(len(chunks) >= 1, "need at least one chunk to concatenate")
    workload = chunks[0].workload
    with_metrics = chunks[0].metrics is not None
    names: list[str] = []
    index: dict[str, int] = {}
    remapped: list[np.ndarray] = []
    for chunk in chunks:
        require(chunk.workload == workload, "chunks disagree on workload")
        require(
            (chunk.metrics is not None) == with_metrics,
            "chunks disagree on metric columns",
        )
        mapping = np.empty(len(chunk.kernel_names), dtype=np.int32)
        for i, name in enumerate(chunk.kernel_names):
            if name not in index:
                index[name] = len(names)
                names.append(name)
            mapping[i] = index[name]
        remapped.append(mapping[chunk.kernel_id])
    return ProfileTable(
        workload=workload,
        kernel_names=tuple(names),
        kernel_id=np.concatenate(remapped).astype(np.int32),
        invocation_id=np.concatenate([c.invocation_id for c in chunks]),
        insn_count=np.concatenate([c.insn_count for c in chunks]),
        cta_size=np.concatenate([c.cta_size for c in chunks]),
        num_ctas=np.concatenate([c.num_ctas for c in chunks]),
        metrics=(
            np.concatenate([c.metrics for c in chunks]) if with_metrics else None
        ),
    )
