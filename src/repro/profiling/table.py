"""The per-invocation profile table both samplers consume.

Section III-A: "the profile essentially is a big table with as many rows as
there are kernel invocations". Rows are stored in chronological order, the
order a real profiler emits them. A Sieve profile carries only instruction
counts and launch shapes; a PKS profile additionally carries the full
12-column Table II metric matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.kernel import PKS_METRIC_NAMES
from repro.utils.validation import require


@dataclass
class ProfileTable:
    """Chronologically ordered per-invocation profile of one workload.

    ``kernel_names[kernel_id[i]]`` is row ``i``'s kernel;
    ``invocation_id[i]`` is the row's per-kernel invocation index (the
    paper's "kernel invocation ID"). ``metrics`` is either ``None`` (Sieve
    profile) or the ``(rows, 12)`` Table II matrix (PKS profile).
    """

    workload: str
    kernel_names: tuple[str, ...]
    kernel_id: np.ndarray  # int32, per row
    invocation_id: np.ndarray  # int64, per-kernel chronological index
    insn_count: np.ndarray  # int64
    cta_size: np.ndarray  # int32
    num_ctas: np.ndarray  # int64
    metrics: np.ndarray | None = None
    metric_names: tuple[str, ...] = field(default=PKS_METRIC_NAMES)

    def __post_init__(self) -> None:
        n = len(self.kernel_id)
        for column in (self.invocation_id, self.insn_count, self.cta_size,
                       self.num_ctas):
            require(len(column) == n, "profile columns must align")
        require(bool(np.all(self.kernel_id >= 0)), "kernel ids must be >= 0")
        require(
            bool(np.all(self.kernel_id < len(self.kernel_names))),
            "kernel id out of range",
        )
        if self.metrics is not None:
            require(self.metrics.shape == (n, len(self.metric_names)),
                    "metric matrix shape mismatch")

    def __len__(self) -> int:
        return len(self.kernel_id)

    @property
    def num_kernels(self) -> int:
        return len(self.kernel_names)

    @property
    def total_instructions(self) -> int:
        return int(self.insn_count.sum())

    def rows_for_kernel(self, kernel_id: int) -> np.ndarray:
        """Row indices (chronological) of one kernel's invocations."""
        return np.flatnonzero(self.kernel_id == kernel_id)

    def kernel_name_of_row(self, row: int) -> str:
        return self.kernel_names[int(self.kernel_id[row])]

    def without_metrics(self) -> "ProfileTable":
        """A copy stripped to the Sieve-visible columns."""
        return ProfileTable(
            workload=self.workload,
            kernel_names=self.kernel_names,
            kernel_id=self.kernel_id,
            invocation_id=self.invocation_id,
            insn_count=self.insn_count,
            cta_size=self.cta_size,
            num_ctas=self.num_ctas,
            metrics=None,
        )
