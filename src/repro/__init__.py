"""Reproduction of *Sieve: Stratified GPU-Compute Workload Sampling*
(Naderan-Tahan, SeyyedAghaei, Eeckhout — ISPASS 2023).

Quickstart::

    from repro import (
        AMPERE_RTX3080, HardwareExecutor, NVBitProfiler, SievePipeline,
        generate, spec_for,
    )

    run = generate(spec_for("cactus/lmc"))
    profile, cost = NVBitProfiler().profile(run)
    sieve = SievePipeline()
    selection = sieve.select(profile)
    golden = HardwareExecutor(AMPERE_RTX3080).measure(run)
    prediction = sieve.predict(selection, golden)
    print(prediction.error_against(golden.total_cycles))

See :mod:`repro.evaluation.experiments` for drivers that regenerate every
table and figure of the paper, and the ``benchmarks/`` directory for the
runnable harness.
"""

from repro.baselines import PksConfig, PksPipeline
from repro.core import SieveConfig, SievePipeline
from repro.gpu import (
    AMPERE_RTX3080,
    TURING_RTX2080TI,
    GpuArchitecture,
    HardwareExecutor,
)
from repro.profiling import NsightComputeProfiler, NVBitProfiler, ProfileTable
from repro.workloads import WorkloadSpec, all_specs, generate, spec_for

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "GpuArchitecture",
    "AMPERE_RTX3080",
    "TURING_RTX2080TI",
    "HardwareExecutor",
    "NVBitProfiler",
    "NsightComputeProfiler",
    "ProfileTable",
    "SieveConfig",
    "SievePipeline",
    "PksConfig",
    "PksPipeline",
    "WorkloadSpec",
    "spec_for",
    "all_specs",
    "generate",
]
