"""CLI observability: --trace-out manifests and the report subcommand."""

import json

import pytest

from repro.cli import main
from repro.evaluation.context import _cached_context
from repro.observability import metrics, spans
from repro.observability.manifest import RunManifest


@pytest.fixture(autouse=True)
def _clean_telemetry():
    spans.reset()
    metrics.get_registry().reset()
    # Warm lru-cached contexts would make the traced runs near-instant,
    # leaving nothing above the diff's min-seconds noise floor.
    _cached_context.cache_clear()
    yield
    spans.reset()
    metrics.get_registry().reset()


@pytest.fixture()
def manifest_path(tmp_path, capsys):
    path = tmp_path / "m.json"
    code = main(
        ["--cap", "600", "--no-cache", "--trace-out", str(path),
         "compare", "cactus/gru", "cactus/lmc"]
    )
    assert code == 0
    capsys.readouterr()  # drain the comparison table
    return path


def test_trace_out_writes_manifest(manifest_path):
    manifest = RunManifest.load(manifest_path)
    assert manifest.command == "sieve-repro compare"
    assert manifest.created
    assert manifest.config["cap"] == 600
    assert manifest.config["workloads"] == ["cactus/gru", "cactus/lmc"]
    assert manifest.cache is not None
    assert manifest.cache["enabled"] is False
    # Accuracy rows and printed aggregates landed in the artifact.
    assert [row["workload"] for row in manifest.workloads] == [
        "cactus/gru", "cactus/lmc",
    ]
    assert set(manifest.aggregates) == {
        "sieve_avg", "sieve_max", "pks_avg", "pks_max",
    }
    # Raw JSON stays loadable without the package (CI consumers).
    payload = json.loads(manifest_path.read_text())
    assert payload["schema"] == manifest.schema


def test_manifest_self_times_sum_to_total(manifest_path):
    """Acceptance: per-stage wall-times sum within 10% of total runtime."""
    manifest = RunManifest.load(manifest_path)
    assert manifest.total_wall_s > 0
    ratio = manifest.stage_self_total() / manifest.total_wall_s
    assert 0.9 <= ratio <= 1.1
    # The instrumentation covers the real pipeline stages, not just a shell.
    names = {stage.name for stage in manifest.stages}
    assert {"cli.compare", "engine.task", "sieve.stratify", "pks.select"} <= names


def test_report_renders_single_manifest(manifest_path, capsys):
    assert main(["report", str(manifest_path)]) == 0
    out = capsys.readouterr().out
    assert "sieve-repro compare" in out
    assert "sieve.stratify" in out
    assert "cactus/gru" in out


def test_report_diff_passes_and_fails(manifest_path, tmp_path, capsys):
    # Identical manifests: clean diff, exit 0.
    assert main(["report", str(manifest_path), str(manifest_path)]) == 0
    assert "no regressions." in capsys.readouterr().out
    # Injected 2x slowdown: regressions, exit 1.
    payload = json.loads(manifest_path.read_text())
    payload["total_wall_s"] *= 2
    for stage in payload["stages"]:
        stage["wall_s"] *= 2
        stage["self_s"] *= 2
    slowed = tmp_path / "slow.json"
    slowed.write_text(json.dumps(payload))
    assert main(["report", str(manifest_path), str(slowed)]) == 1
    assert "regression(s):" in capsys.readouterr().out


def test_no_trace_out_writes_nothing(tmp_path, capsys):
    assert main(["--cap", "600", "table2"]) == 0
    capsys.readouterr()
    assert list(tmp_path.iterdir()) == []
