"""Span nesting, exception safety, disabled mode and overhead bounds."""

import time

import pytest

from repro.observability import spans, state
from repro.observability.spans import span


@pytest.fixture(autouse=True)
def _clean_spans():
    spans.reset()
    yield
    spans.reset()
    state.set_enabled(None)


def test_nesting_parent_child_and_depth():
    with spans.capture_spans() as caught:
        with span("outer") as outer:
            with span("inner", k=1) as inner:
                pass
    by_name = {r.name: r for r in caught}
    assert set(by_name) == {"outer", "inner"}
    assert by_name["outer"].parent_id == -1
    assert by_name["outer"].depth == 0
    assert by_name["inner"].parent_id == outer.span_id
    assert by_name["inner"].depth == 1
    assert by_name["inner"].span_id == inner.span_id
    assert by_name["inner"].attrs == {"k": 1}


def test_records_are_completion_ordered():
    with spans.capture_spans() as caught:
        with span("a"):
            with span("b"):
                pass
        with span("c"):
            pass
    assert [r.name for r in caught] == ["b", "a", "c"]


def test_exception_closes_span_and_records_error():
    with spans.capture_spans() as caught:
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
    (record,) = caught
    assert record.name == "failing"
    assert record.error == "ValueError"
    # The stack unwound: a fresh span is a root again.
    with spans.capture_spans() as after:
        with span("next"):
            pass
    assert after[0].parent_id == -1
    assert after[0].depth == 0


def test_exception_in_nested_span_unwinds_both():
    with spans.capture_spans() as caught:
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("inner"):
                    raise RuntimeError
    by_name = {r.name: r for r in caught}
    assert by_name["inner"].error == "RuntimeError"
    assert by_name["outer"].error == "RuntimeError"


def test_wall_and_cpu_are_positive_durations():
    with spans.capture_spans() as caught:
        with span("timed"):
            sum(range(1000))
    (record,) = caught
    assert record.wall_s >= 0.0
    assert record.cpu_s >= 0.0
    assert record.wall_s < 1.0  # a duration, not a timestamp


def test_disabled_records_nothing():
    state.set_enabled(False)
    with spans.capture_spans() as caught:
        with span("invisible"):
            pass
    assert caught == []
    state.set_enabled(True)
    with spans.capture_spans() as caught:
        with span("visible"):
            pass
    assert [r.name for r in caught] == ["visible"]


def test_disabled_span_is_shared_null_instance():
    state.set_enabled(False)
    assert span("a") is span("b")


def test_mark_and_since_window():
    with span("before"):
        pass
    mark = spans.mark()
    with span("after"):
        pass
    assert [r.name for r in spans.records(since=mark)] == ["after"]


def test_adopt_reparents_and_tags_proc():
    # Simulate records shipped from a worker process.
    with spans.capture_spans() as worker_caught:
        with span("w.outer"):
            with span("w.inner"):
                pass
    shipped = tuple(worker_caught)
    spans.reset()
    with span("pool") as pool_span:
        adopted = spans.adopt(shipped, parent_id=pool_span.span_id)
    by_name = {r.name: r for r in adopted}
    assert all(r.proc == "worker" for r in adopted)
    # Batch-internal links survive; the batch root hangs off the pool span.
    assert by_name["w.outer"].parent_id == pool_span.span_id
    assert by_name["w.inner"].parent_id == by_name["w.outer"].span_id
    # Adopted ids never collide with local ones.
    local_ids = {r.span_id for r in spans.records() if r.proc == "main"}
    assert local_ids.isdisjoint({r.span_id for r in adopted})


def test_record_cap_drops_oldest():
    original = spans.MAX_RECORDS
    spans.MAX_RECORDS = 10
    try:
        for i in range(25):
            with span(f"s{i}"):
                pass
        assert len(spans.records()) == 10
        assert spans.dropped() == 15
        assert spans.records()[0].name == "s15"
        # A stale mark clamps instead of slicing negatively.
        assert len(spans.records(since=3)) == 10
    finally:
        spans.MAX_RECORDS = original


def test_disabled_overhead_is_negligible():
    """Disabled spans must cost ~a function call, not clock reads."""
    state.set_enabled(False)
    n = 20_000
    start = time.perf_counter()
    for _ in range(n):
        with span("hot", a=1):
            pass
    elapsed = time.perf_counter() - start
    # Generous bound: < 10 microseconds per disabled span even on a
    # heavily loaded CI box (observed ~0.1-0.3 us).
    assert elapsed / n < 10e-6
    assert spans.records() == ()
