"""Smoke tests for the manifest renderers."""

from repro.observability.manifest import RunManifest, StageStat, diff_manifests
from repro.observability.report import render_diff, render_manifest


def _manifest(total, stage_wall, error=0.012):
    return RunManifest(
        command="sieve-repro compare",
        created="2026-01-01T00:00:00+00:00",
        package_version="1.0.0",
        source_fingerprint="abcdef0123456789",
        total_wall_s=total,
        total_cpu_s=total,
        stages=(
            StageStat(
                name="sieve.stratify", count=2, wall_s=stage_wall,
                self_s=stage_wall, cpu_s=stage_wall,
            ),
        ),
        workloads=({"workload": "cactus/gru", "sieve_error": error},),
        aggregates={"sieve_avg": error},
        cache={"jobs": 1, "enabled": True, "hits": 3, "misses": 1,
               "writes": 1, "invalid": 0},
        events=({"kind": "engine.pool_failure", "exception": "OSError('x')"},),
    )


def test_render_manifest_includes_key_sections():
    text = render_manifest(_manifest(1.0, 0.6))
    assert "sieve-repro compare" in text
    assert "sieve.stratify" in text
    assert "60.00%" in text  # stage share of total
    assert "cactus/gru" in text
    assert "1.20%" in text  # *_error rendered as a percentage
    assert "sieve_avg" in text
    assert "3 hits / 1 misses" in text
    assert "engine.pool_failure" in text


def test_render_diff_lists_regressions():
    baseline = _manifest(1.0, 0.6)
    slowed = _manifest(2.0, 1.2)
    regressions = diff_manifests(baseline, slowed)
    text = render_diff(baseline, slowed, regressions)
    assert "REGRESSED" in text
    assert "2.00x" in text
    assert f"{len(regressions)} regression(s):" in text


def test_render_diff_clean():
    baseline = _manifest(1.0, 0.6)
    text = render_diff(baseline, baseline, [])
    assert "no regressions." in text
