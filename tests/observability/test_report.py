"""Smoke tests for the manifest renderers."""

import dataclasses

from repro.observability.manifest import RunManifest, StageStat, diff_manifests
from repro.observability.report import (
    _diff_attribution,
    render_attribution,
    render_diff,
    render_manifest,
)


def _manifest(total, stage_wall, error=0.012):
    return RunManifest(
        command="sieve-repro compare",
        created="2026-01-01T00:00:00+00:00",
        package_version="1.0.0",
        source_fingerprint="abcdef0123456789",
        total_wall_s=total,
        total_cpu_s=total,
        stages=(
            StageStat(
                name="sieve.stratify", count=2, wall_s=stage_wall,
                self_s=stage_wall, cpu_s=stage_wall,
            ),
        ),
        workloads=({"workload": "cactus/gru", "sieve_error": error},),
        aggregates={"sieve_avg": error},
        cache={"jobs": 1, "enabled": True, "hits": 3, "misses": 1,
               "writes": 1, "invalid": 0},
        events=({"kind": "engine.pool_failure", "exception": "OSError('x')"},),
    )


def test_render_manifest_includes_key_sections():
    text = render_manifest(_manifest(1.0, 0.6))
    assert "sieve-repro compare" in text
    assert "sieve.stratify" in text
    assert "60.00%" in text  # stage share of total
    assert "cactus/gru" in text
    assert "1.20%" in text  # *_error rendered as a percentage
    assert "sieve_avg" in text
    assert "3 hits / 1 misses" in text
    assert "engine.pool_failure" in text


def test_render_diff_lists_regressions():
    baseline = _manifest(1.0, 0.6)
    slowed = _manifest(2.0, 1.2)
    regressions = diff_manifests(baseline, slowed)
    text = render_diff(baseline, slowed, regressions)
    assert "REGRESSED" in text
    assert "2.00x" in text
    assert f"{len(regressions)} regression(s):" in text


def test_render_diff_clean():
    baseline = _manifest(1.0, 0.6)
    text = render_diff(baseline, baseline, [])
    assert "no regressions." in text


def _with_stages(manifest, stages):
    return dataclasses.replace(manifest, stages=tuple(stages))


def _stage(name, wall):
    return StageStat(name=name, count=1, wall_s=wall, self_s=wall, cpu_s=wall)


def test_render_diff_stage_present_in_only_one_manifest():
    baseline = _with_stages(
        _manifest(1.0, 0.6), [_stage("sieve.stratify", 0.6), _stage("old.only", 0.2)]
    )
    current = _with_stages(
        _manifest(1.0, 0.6), [_stage("sieve.stratify", 0.6), _stage("new.only", 0.3)]
    )
    regressions = diff_manifests(baseline, current)
    text = render_diff(baseline, current, regressions)
    # The vanished stage renders as absent (and gates); the new one as new.
    assert ("old.only", "absent") in [
        (line.split()[0], line.split()[2]) for line in text.splitlines()
        if line.startswith("old.only")
    ]
    assert any(
        line.startswith("new.only") and "absent" in line and "new" in line
        for line in text.splitlines()
    )
    assert any(r.kind == "stage-missing" and r.name == "old.only" for r in regressions)


def test_render_diff_zero_wall_stage_no_zero_division():
    baseline = _with_stages(_manifest(1.0, 0.6), [_stage("instant", 0.0)])
    current = _with_stages(_manifest(1.0, 0.6), [_stage("instant", 0.0)])
    regressions = diff_manifests(baseline, current)
    text = render_diff(baseline, current, regressions)  # must not raise
    assert regressions == []
    instant = next(line for line in text.splitlines() if line.startswith("instant"))
    assert instant.rstrip().endswith("-")  # ratio is a dash, not a division


def test_render_diff_zero_total_wall_no_zero_division():
    baseline = _manifest(0.0, 0.0)
    current = _manifest(0.0, 0.0)
    regressions = diff_manifests(baseline, current)
    assert regressions == []
    render_diff(baseline, current, regressions)
    render_manifest(baseline)  # stage share falls back without dividing by 0


# --------------------------------------------------------------------- #
# Attribution rendering


def _attribution_entry(signed=-0.02, kernel_contribution=-0.015):
    return {
        "workload": "cactus/gru",
        "method": "sieve",
        "predicted_cycles": 9.8e8,
        "measured_cycles": 1.0e9,
        "signed_error": signed,
        "per_kernel": [
            {
                "kernel_name": "gru_k000",
                "predicted_cycles": 4.0e8,
                "measured_cycles": 4.15e8,
                "contribution": kernel_contribution,
                "num_representatives": 2,
            },
            {
                "kernel_name": "gru_k001",
                "predicted_cycles": 5.8e8,
                "measured_cycles": 5.85e8,
                "contribution": signed - kernel_contribution,
                "num_representatives": 1,
            },
        ],
        "per_group": [
            {
                "group": "gru_k000/s0",
                "kernel_name": "gru_k000",
                "size": 51,
                "weight": 0.1,
                "predicted_cycles": 4.0e8,
                "measured_cycles": 4.15e8,
                "contribution": kernel_contribution,
            },
        ],
        "groups_partition": True,
        "health": [
            {
                "group": "gru_k000/s0",
                "kernel_name": "gru_k000",
                "tier": "IRREGULAR",
                "size": 51,
                "occupancy": 0.12,
                "insn_cov": 0.55,
                "cov_drift": 0.15,
                "rep_distance": 0.08,
                "split_balance": 0.9,
            },
        ],
    }


def test_render_attribution_tables():
    text = render_attribution([_attribution_entry()])
    assert "cactus/gru · sieve" in text
    assert "-2.000%" in text  # signed error, signed formatting
    assert "gru_k000" in text
    assert "strata above the CoV target:" in text
    assert "+0.150" in text  # cov drift rendered signed


def test_render_attribution_marks_non_partitioning_groups():
    entry = _attribution_entry()
    entry["groups_partition"] = False
    text = render_attribution([entry])
    assert "per-group (non-partitioning):" in text


def test_render_attribution_top_bounds_rows():
    entry = _attribution_entry()
    text = render_attribution([entry], top=1)
    # Only the largest |contribution| kernel survives the cut.
    assert "gru_k000" in text
    assert text.count("gru_k001") == 0


def test_diff_attribution_reports_drift_and_largest_mover():
    baseline = dataclasses.replace(
        _manifest(1.0, 0.6), attribution=(_attribution_entry(),)
    )
    current = dataclasses.replace(
        _manifest(1.0, 0.6),
        attribution=(_attribution_entry(signed=-0.05, kernel_contribution=-0.045),),
    )
    text = _diff_attribution(baseline, current)
    assert "attribution drift:" in text
    assert "cactus/gru · sieve" in text
    assert "-3.000%" in text  # delta between the signed errors
    assert "gru_k000" in text  # the kernel that moved most


def test_diff_attribution_empty_when_absent():
    baseline = _manifest(1.0, 0.6)
    assert _diff_attribution(baseline, baseline) == ""
    # And render_diff stays attribution-free rather than crashing.
    assert "attribution drift" not in render_diff(baseline, baseline, [])
