"""Exporter contracts: JSONL round-trips, Chrome traces, Prometheus text,
and the jobs=1 vs jobs=4 structural byte-identity guarantee."""

import json
import pickle

import pytest

from repro.core.config import SieveConfig
from repro.evaluation.engine import EngineConfig, EvaluationEngine, EvaluationTask
from repro.observability import metrics as obs_metrics
from repro.observability import spans, state
from repro.observability.export import (
    JsonlStreamSink,
    canonical_events,
    chrome_trace,
    export_jsonl,
    prometheus_text,
    read_jsonl_spans,
    record_to_dict,
    records_from_dicts,
)
from repro.observability.spans import span


@pytest.fixture(autouse=True)
def _clean_telemetry():
    spans.reset()
    spans.clear_sinks()
    obs_metrics.get_registry().reset()
    yield
    spans.reset()
    spans.clear_sinks()
    obs_metrics.get_registry().reset()
    state.set_enabled(None)


def sample_records():
    with spans.capture_spans() as caught:
        with span("engine.task", workload="w/a"):
            with span("sieve.predict", workload="w/a"):
                pass
        with span("engine.task", workload="w/b"):
            with span("sieve.predict", workload="w/b"):
                pass
    return tuple(caught)


# --------------------------------------------------------------------- #
# JSONL


def test_record_dict_round_trip():
    records = sample_records()
    rebuilt = records_from_dicts(record_to_dict(r) for r in records)
    assert rebuilt == records
    assert pickle.dumps(rebuilt) == pickle.dumps(records)


def test_stream_sink_appends_parseable_lines(tmp_path):
    path = tmp_path / "stream.jsonl"
    sink = JsonlStreamSink(path)
    spans.add_sink(sink)
    records = sample_records()
    spans.remove_sink(sink)
    sink.close()
    assert sink.emitted == len(records)
    assert read_jsonl_spans(path) == records


def test_stream_sink_skips_adopted_duplicates_in_append(tmp_path):
    """Adopted worker records stream once (from adopt), not twice."""
    with spans.capture_spans() as caught:
        with span("engine.task", workload="w/a"):
            pass
    shipped = tuple(caught)
    spans.reset()
    path = tmp_path / "stream.jsonl"
    with JsonlStreamSink(path) as sink:
        spans.add_sink(sink)
        adopted = spans.adopt(shipped, parent_id=-1)
        spans.remove_sink(sink)
    streamed = read_jsonl_spans(path)
    assert streamed == adopted
    assert all(record.proc == "worker" for record in streamed)


def test_disabled_observability_never_touches_sinks(tmp_path):
    """SIEVE_OBS=off keeps the shared no-op span: zero sink I/O."""
    path = tmp_path / "stream.jsonl"
    sink = JsonlStreamSink(path)
    spans.add_sink(sink)
    state.set_enabled(False)
    with span("invisible", k=1):
        with span("nested"):
            pass
    state.set_enabled(True)
    spans.remove_sink(sink)
    sink.close()
    assert sink.emitted == 0
    assert path.read_text() == ""
    assert spans.records() == ()


def test_canonical_events_nesting_and_seq():
    events = canonical_events(sample_records())
    paths = [event["path"] for event in events]
    assert paths == sorted(paths)
    assert "engine.task[w/a]/sieve.predict[w/a]" in paths
    # Identical paths are disambiguated by a 1-based sequence number.
    task_events = [e for e in events if e["name"] == "engine.task"]
    assert {e["path"] for e in task_events} == {
        "engine.task[w/a]",
        "engine.task[w/b]",
    }
    assert all(e["seq"] == 1 for e in task_events)


def test_canonical_paths_elide_engine_infra():
    with spans.capture_spans() as caught:
        with span("engine.run"):
            with span("engine.pool"):
                with span("engine.task", workload="w/a"):
                    with span("sieve.predict", workload="w/a"):
                        pass
    events = canonical_events(caught)
    paths = {event["path"] for event in events}
    # The pool span vanishes; paths restart at the last engine.task.
    assert "engine.task[w/a]" in paths
    assert "engine.task[w/a]/sieve.predict[w/a]" in paths
    assert not any("engine.pool" in path for path in paths)


def test_structural_export_drops_timing_fields():
    lines = export_jsonl(sample_records(), structural=True).splitlines()
    for line in lines:
        event = json.loads(line)
        for banned in ("wall_s", "cpu_s", "start_s", "span_id", "parent_id", "proc"):
            assert banned not in event


# --------------------------------------------------------------------- #
# Chrome trace


def test_chrome_trace_is_json_and_nesting_round_trips():
    records = sample_records()
    trace = json.loads(json.dumps(chrome_trace(records)))
    events = trace["traceEvents"]
    durations = [e for e in events if e["ph"] == "X"]
    assert len(durations) == len(records)
    by_name = {e["name"]: e for e in durations if e["args"].get("workload") == "w/a"}
    parent, child = by_name["engine.task"], by_name["sieve.predict"]
    # The child's interval nests inside its parent's on the same track.
    assert (parent["pid"], parent["tid"]) == (child["pid"], child["tid"])
    assert parent["ts"] <= child["ts"]
    assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-6
    assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in durations)


def test_chrome_trace_places_worker_batches_on_own_threads():
    records = sample_records()
    spans.reset()
    adopted = spans.adopt(records[:2], parent_id=-1)
    adopted += spans.adopt(records[2:], parent_id=-1)
    trace = chrome_trace(adopted)
    durations = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert {e["pid"] for e in durations} == {1}
    assert {e["tid"] for e in durations} == {1, 2}  # one thread per batch
    thread_names = [
        e for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    assert len(thread_names) == 2


# --------------------------------------------------------------------- #
# Prometheus


def test_prometheus_text_matches_registry_snapshot():
    registry = obs_metrics.get_registry()
    registry.inc("export.calls", kind="chrome")
    registry.inc("export.calls", kind="chrome")
    registry.set_gauge("export.ratio", 0.5)
    registry.observe("export.sizes", 3.0)  # default buckets: 1, 4, 16, ...
    registry.observe("export.sizes", 7.0)
    text = prometheus_text(registry.snapshot())
    lines = text.splitlines()
    assert 'export_calls_total{kind="chrome"} 2' in lines
    assert "export_ratio 0.5" in lines
    assert 'export_sizes_bucket{le="1"} 0' in lines
    assert 'export_sizes_bucket{le="4"} 1' in lines
    assert 'export_sizes_bucket{le="16"} 2' in lines
    assert 'export_sizes_bucket{le="+Inf"} 2' in lines
    assert "export_sizes_sum 10" in lines
    assert "export_sizes_count 2" in lines
    # Every family gets exactly one TYPE line.
    assert lines.count("# TYPE export_calls_total counter") == 1
    assert lines.count("# TYPE export_ratio gauge") == 1
    assert lines.count("# TYPE export_sizes histogram") == 1


def test_prometheus_sanitizes_names_and_escapes_labels():
    snapshot = {
        "counters": {'weird.name-x{label=a"b\\c}': 3},
        "gauges": {},
        "histograms": {},
    }
    text = prometheus_text(snapshot)
    assert "weird_name_x_total" in text
    assert r"a\"b\\c" in text


def test_parse_prometheus_round_trips_exporter_output():
    from repro.observability.export import parse_prometheus

    registry = obs_metrics.get_registry()
    registry.inc("roundtrip.calls", kind="a")
    registry.set_gauge("roundtrip.ratio", 0.25)
    registry.observe("roundtrip.sizes", 3.0)
    families = parse_prometheus(prometheus_text(registry.snapshot()))
    assert families["roundtrip_calls_total"]["type"] == "counter"
    assert ("roundtrip_calls_total", {"kind": "a"}, 1.0) in families[
        "roundtrip_calls_total"
    ]["samples"]
    assert families["roundtrip_ratio"]["samples"] == [
        ("roundtrip_ratio", {}, 0.25)
    ]
    histogram = families["roundtrip_sizes"]
    sample_names = {name for name, _, _ in histogram["samples"]}
    assert {"roundtrip_sizes_sum", "roundtrip_sizes_count"} <= sample_names
    inf_buckets = [
        value
        for name, labels, value in histogram["samples"]
        if name == "roundtrip_sizes_bucket" and labels.get("le") == "+Inf"
    ]
    assert inf_buckets == [1.0]


@pytest.mark.parametrize(
    "text, match",
    [
        ("orphan 1\n", "no TYPE line"),
        ("# TYPE a counter\na_total notanumber\n", "bad sample value"),
        ("# TYPE a counter\na_total{x=1} 5\n", "malformed labels"),
        ("# TYPE a wibble\n", "unknown metric type"),
        ("# TYPE a counter\n# TYPE a gauge\n", "duplicate TYPE"),
        ("# TYPE h histogram\nh_sum 1\nh_count 1\n", "missing h_bucket"),
    ],
)
def test_parse_prometheus_rejects_malformed_text(text, match):
    from repro.observability.export import parse_prometheus

    with pytest.raises(ValueError, match=match):
        parse_prometheus(text)


# --------------------------------------------------------------------- #
# Determinism under --jobs


def engine_spans(jobs: int, tmp_path):
    # Workers always build contexts from scratch; drop the main-process
    # memoization so the serial run records the same build spans.
    from repro.evaluation.context import _cached_context

    _cached_context.cache_clear()
    spans.reset()
    engine = EvaluationEngine(
        EngineConfig(jobs=jobs, use_cache=False, cache_dir=tmp_path / f"j{jobs}")
    )
    tasks = [
        EvaluationTask(
            label=label,
            max_invocations=500,
            sieve_config=SieveConfig(theta=0.4),
        )
        for label in ("cactus/gru", "cactus/gst", "cactus/lmc")
    ]
    engine.run(tasks)
    return spans.records()


def test_structural_export_identical_serial_vs_parallel(tmp_path):
    """jobs=1 and jobs=4 produce byte-identical structural exports.

    The cache must stay off: a cache hit skips the evaluate spans
    entirely, which is a genuine structural difference.
    """
    serial = export_jsonl(engine_spans(1, tmp_path), structural=True)
    parallel = export_jsonl(engine_spans(4, tmp_path), structural=True)
    assert serial == parallel
    assert serial  # non-empty: the engine actually produced spans
