"""Manifest assembly, JSON round-trip, self-time accounting and diffing."""

import dataclasses
import time

import pytest

from repro.observability import manifest as obs_manifest
from repro.observability import metrics, spans, state
from repro.observability.manifest import (
    RunManifest,
    StageStat,
    aggregate_stages,
    collect_manifest,
    diff_manifests,
    regression_failures,
)
from repro.observability.spans import span


@pytest.fixture(autouse=True)
def _clean_telemetry():
    spans.reset()
    metrics.get_registry().reset()
    yield
    spans.reset()
    metrics.get_registry().reset()
    state.set_enabled(None)


def _busy(seconds):
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        pass


def test_aggregate_stages_self_time_sums_to_total():
    with span("root"):
        with span("child"):
            _busy(0.005)
        with span("child"):
            _busy(0.005)
        _busy(0.002)
    stages = {s.name: s for s in aggregate_stages(spans.records())}
    root, child = stages["root"], stages["child"]
    assert child.count == 2
    assert root.wall_s >= child.wall_s
    # Self times partition the root's wall exactly.
    assert root.self_s + child.self_s == pytest.approx(root.wall_s, rel=1e-9)


def test_self_time_ignores_cross_process_children():
    with span("pool") as pool_span:
        _busy(0.002)
        worker = (
            spans.SpanRecord(
                name="w.task", wall_s=5.0, cpu_s=5.0,
                span_id=0, parent_id=-1, depth=0,
            ),
        )
        spans.adopt(worker, parent_id=pool_span.span_id)
    stages = {s.name: s for s in aggregate_stages(spans.records())}
    # The worker's 5s overlap the pool span; subtracting them would make
    # the pool's self time negative nonsense.
    assert stages["pool"].self_s == pytest.approx(stages["pool"].wall_s)
    assert stages["w.task"].self_s == 5.0


def test_collect_manifest_and_round_trip():
    mark = spans.mark()
    events_mark = obs_manifest.events_mark()
    metrics.inc("test.counter", 3, kind="x")
    obs_manifest.record_event("test.event", detail="boom")
    with span("stage.a", workload="w"):
        _busy(0.002)
    manifest = collect_manifest(
        "test-command",
        config={"cap": 100},
        workloads=[{"workload": "w", "sieve_error": 0.01}],
        aggregates={"avg": 0.01},
        diagnostics=[{"severity": "warning", "source": "s", "message": "m"}],
        since=mark,
        events_since=events_mark,
        created="2026-01-01T00:00:00+00:00",
    )
    assert manifest.schema == obs_manifest.MANIFEST_SCHEMA
    assert manifest.package_version
    assert manifest.source_fingerprint
    assert manifest.stage("stage.a").count == 1
    assert manifest.total_wall_s == pytest.approx(
        manifest.stage("stage.a").wall_s
    )
    assert manifest.events == ({"kind": "test.event", "detail": "boom"},)
    assert manifest.metrics["counters"] == {"test.counter{kind=x}": 3.0}

    restored = RunManifest.from_json(manifest.to_json())
    assert restored == manifest  # lossless round-trip


def test_save_load_file_round_trip(tmp_path):
    with span("s"):
        pass
    manifest = collect_manifest("cmd")
    path = manifest.save(tmp_path / "sub" / "m.json")
    assert RunManifest.load(path) == manifest


def test_events_recorded_even_when_disabled():
    state.set_enabled(False)
    mark = obs_manifest.events_mark()
    obs_manifest.record_event("pool.failure", exception="OSError('x')")
    events = obs_manifest.events(since=mark)
    assert events == ({"kind": "pool.failure", "exception": "OSError('x')"},)


def _manifest(total, stages, workloads=(), aggregates=None):
    return RunManifest(
        command="m",
        total_wall_s=total,
        stages=tuple(
            StageStat(name=n, count=1, wall_s=w, self_s=w, cpu_s=w)
            for n, w in stages
        ),
        workloads=tuple(workloads),
        aggregates=dict(aggregates or {}),
    )


def test_diff_clean_when_identical():
    baseline = _manifest(
        1.0, [("a", 0.6), ("b", 0.4)],
        workloads=[{"workload": "w", "sieve_error": 0.01}],
        aggregates={"avg": 0.01},
    )
    assert diff_manifests(baseline, baseline) == []


def test_diff_flags_two_x_slowdown():
    baseline = _manifest(1.0, [("a", 0.6), ("b", 0.4)])
    slowed = _manifest(2.0, [("a", 1.2), ("b", 0.8)])
    kinds = {(r.kind, r.name) for r in diff_manifests(baseline, slowed)}
    assert kinds == {
        ("total-wall", "total"),
        ("stage-wall", "a"),
        ("stage-wall", "b"),
    }


def test_diff_min_seconds_floor_absorbs_noise():
    baseline = _manifest(0.010, [("tiny", 0.010)])
    slowed = _manifest(0.020, [("tiny", 0.020)])
    assert diff_manifests(baseline, slowed) == []  # 2x but < 50ms delta


def test_diff_flags_missing_stage_and_workload():
    baseline = _manifest(
        1.0, [("a", 0.9)], workloads=[{"workload": "w", "sieve_error": 0.01}]
    )
    current = _manifest(1.0, [])
    kinds = {(r.kind, r.name) for r in diff_manifests(baseline, current)}
    assert ("stage-missing", "a") in kinds
    assert ("accuracy", "w") in kinds


def test_diff_reports_new_stage_as_info_not_failure():
    baseline = _manifest(1.0, [("a", 0.9)])
    current = _manifest(1.0, [("a", 0.9), ("b", 0.3)])
    regressions = diff_manifests(baseline, current)
    by_kind = {(r.kind, r.name): r for r in regressions}
    row = by_kind[("stage-new", "b")]
    assert row.severity == "info"
    assert not row.failed
    assert regression_failures(regressions) == []  # info rows never gate


def test_diff_ignores_new_stage_below_floor():
    baseline = _manifest(1.0, [("a", 0.9)])
    current = _manifest(1.0, [("a", 0.9), ("blip", 0.001)])
    assert diff_manifests(baseline, current) == []


def test_diff_zero_baseline_wall_is_informational():
    # A 0-second baseline wall must not produce a millions-of-x ratio:
    # the current measurement is reported as info, never as a failure.
    baseline = _manifest(0.0, [("a", 0.0)])
    current = _manifest(3.0, [("a", 3.0)])
    regressions = diff_manifests(baseline, current)
    assert regressions  # visible, not silently skipped
    assert all(r.severity == "info" for r in regressions)
    assert regression_failures(regressions) == []
    details = {r.detail for r in regressions}
    assert any("no usable baseline wall" in d for d in details)


def test_diff_removed_stage_still_fails():
    baseline = _manifest(1.0, [("a", 0.9)])
    current = _manifest(1.0, [("b", 0.9)])
    regressions = diff_manifests(baseline, current)
    removed = [r for r in regressions if r.kind == "stage-missing"]
    assert removed and removed[0].severity == "fail" and removed[0].failed
    assert removed[0] in regression_failures(regressions)


def test_diff_flags_accuracy_and_aggregate_drift():
    baseline = _manifest(
        1.0, [("a", 0.9)],
        workloads=[{"workload": "w", "sieve_error": 0.010, "sieve_cov": 0.2}],
        aggregates={"sieve_avg": 0.010},
    )
    current = dataclasses.replace(
        baseline,
        workloads=({"workload": "w", "sieve_error": 0.011, "sieve_cov": 0.9},),
        aggregates={"sieve_avg": 0.011},
    )
    regressions = diff_manifests(baseline, current)
    names = {r.name for r in regressions}
    # *_error keys and aggregates are gated; other row fields are not.
    assert names == {"w.sieve_error", "sieve_avg"}
    # But float-reassociation noise within rtol passes.
    nearly = dataclasses.replace(
        baseline,
        workloads=({"workload": "w", "sieve_error": 0.010 * (1 + 1e-9),
                    "sieve_cov": 0.2},),
        aggregates={"sieve_avg": 0.010 * (1 + 1e-9)},
    )
    assert diff_manifests(baseline, nearly) == []
