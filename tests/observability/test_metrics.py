"""Registry semantics and the jobs=4 == serial determinism contract."""

import pytest

from repro.core.config import SieveConfig
from repro.evaluation.context import _cached_context
from repro.evaluation.engine import EngineConfig, EvaluationEngine, EvaluationTask
from repro.observability import metrics, spans, state
from repro.observability.metrics import Histogram, MetricsRegistry, metric_key


@pytest.fixture(autouse=True)
def _clean_registry():
    metrics.get_registry().reset()
    spans.reset()
    yield
    metrics.get_registry().reset()
    spans.reset()
    state.set_enabled(None)


def test_metric_key_sorts_labels():
    assert metric_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"
    assert metric_key("m", {}) == "m"


def test_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.inc("hits")
    registry.inc("hits", 2.0)
    registry.inc("miss", reason="stale")
    registry.set_gauge("jobs", 4)
    registry.observe("sizes", 3)
    registry.observe("sizes", 300)
    assert registry.counter("hits") == 3.0
    assert registry.counter("miss", reason="stale") == 1.0
    assert registry.counter("miss", reason="absent") == 0.0
    assert registry.gauges == {"jobs": 4.0}
    histogram = registry.histogram("sizes")
    assert histogram.count == 2
    assert histogram.total == 303
    assert histogram.min == 3
    assert histogram.max == 300
    assert histogram.mean == pytest.approx(151.5)


def test_histogram_merge_and_round_trip():
    a = Histogram()
    b = Histogram()
    for value in (1, 5, 17):
        a.observe(value)
    for value in (2, 1000):
        b.observe(value)
    a.merge(b)
    assert a.count == 5
    assert a.total == 1025
    assert a.min == 1
    assert a.max == 1000
    restored = Histogram.from_dict(a.to_dict())
    assert restored.to_dict() == a.to_dict()


def test_histogram_merge_rejects_mismatched_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=(1.0, 2.0)).merge(Histogram())


def test_merge_is_snapshot_additive():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.inc("n", 1)
    b.inc("n", 2)
    b.set_gauge("g", 7)
    b.observe("h", 4)
    a.merge(b.snapshot())
    assert a.counter("n") == 3.0
    assert a.gauges["g"] == 7.0
    assert a.histogram("h").count == 1


def test_module_helpers_respect_disabled():
    state.set_enabled(False)
    metrics.inc("off.counter")
    metrics.set_gauge("off.gauge", 1)
    metrics.observe("off.hist", 1)
    snapshot = metrics.get_registry().snapshot()
    assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}


def test_snapshot_is_sorted_and_jsonable():
    import json

    registry = MetricsRegistry()
    registry.inc("z")
    registry.inc("a")
    registry.observe("h", 2)
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a", "z"]
    json.dumps(snapshot)  # must not raise


def test_parallel_merge_equals_serial(tmp_path):
    """jobs=4 merged worker metrics == the serial run's snapshot."""
    labels = ["cactus/gru", "cactus/gst", "cactus/lmc", "cactus/dcg"]
    tasks = [
        EvaluationTask(
            label=label, max_invocations=600, sieve_config=SieveConfig(theta=0.4)
        )
        for label in labels
    ]

    def run(jobs):
        metrics.get_registry().reset()
        spans.reset()
        # The lru-cached context would absorb the pipeline work of later
        # runs (and forked workers inherit a warm cache), hiding the very
        # metrics this test compares.
        _cached_context.cache_clear()
        engine = EvaluationEngine(EngineConfig(jobs=jobs, use_cache=False))
        engine.run(tasks)
        return metrics.get_registry().snapshot()

    serial = run(1)
    parallel = run(4)

    def pipeline_only(snapshot):
        return {
            kind: {
                k: v for k, v in payload.items() if not k.startswith("engine.")
            }
            for kind, payload in snapshot.items()
        }

    assert pipeline_only(parallel) == pipeline_only(serial)
    # Sanity: the comparison is not vacuous.
    assert any(k.startswith("sieve.") for k in serial["counters"])
    assert serial["histograms"]
