"""Error-attribution contracts: the decomposition must sum back exactly.

The headline property (an ISSUE acceptance criterion): for every
built-in method, the signed per-kernel contributions sum to the
workload's signed prediction error within 1e-9 relative tolerance —
attribution is a partition of the error, not an approximation of it.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SieveConfig
from repro.evaluation.context import build_context
from repro.evaluation.runner import evaluate_method
from repro.methods.registry import get_method
from repro.observability.attribution import ErrorAttribution, attribute_error

METHODS = ("sieve", "pks", "pks-two-level", "periodic", "random")
POOL = ("cactus/gru", "cactus/lmc", "mlperf/bert")


def contribution_sum(attribution) -> float:
    return sum(k.contribution for k in attribution.per_kernel)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    method=st.sampled_from(METHODS),
    label=st.sampled_from(POOL),
    cap=st.sampled_from((500, 900, 1500)),
)
def test_per_kernel_contributions_sum_to_signed_error(method, label, cap):
    context = build_context(label, max_invocations=cap)
    result = evaluate_method(method, context)
    attribution = result.attribution
    assert attribution is not None
    assert math.isclose(
        contribution_sum(attribution),
        attribution.signed_error,
        rel_tol=1e-9,
        abs_tol=1e-12,
    )
    # The headline error metric is the magnitude of the signed error.
    assert math.isclose(abs(attribution.signed_error), result.error, rel_tol=1e-12)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    label=st.sampled_from(POOL),
    theta=st.sampled_from((0.1, 0.4, 1.0)),
)
def test_sieve_per_group_partitions_error_and_reports_health(label, theta):
    context = build_context(label, max_invocations=900)
    result = evaluate_method("sieve", context, SieveConfig(theta=theta))
    attribution = result.attribution
    assert attribution.groups_partition
    group_sum = sum(g.contribution for g in attribution.per_group)
    assert math.isclose(
        group_sum, attribution.signed_error, rel_tol=1e-9, abs_tol=1e-12
    )
    # One health gauge per stratum, checked against the paper's θ target.
    strata = result.selection.strata
    assert len(attribution.health) == len(strata)
    for gauge, stratum in zip(attribution.health, strata):
        assert gauge.group == stratum.label
        assert math.isclose(gauge.cov_drift, gauge.insn_cov - theta, abs_tol=1e-12)
        assert 0.0 < gauge.occupancy <= 1.0
        assert 0.0 < gauge.split_balance <= 1.0
    # Occupancies cover every invocation: strata partition the workload.
    assert math.isclose(
        sum(g.occupancy for g in attribution.health), 1.0, rel_tol=1e-9
    )


@pytest.mark.parametrize("method", ["periodic", "random"])
def test_sampling_baselines_flag_non_partitioning_groups(method, small_context):
    attribution = evaluate_method(method, small_context).attribution
    assert not attribution.groups_partition
    # Singleton groups still carry per-representative terms that sum back.
    assert math.isclose(
        contribution_sum(attribution),
        attribution.signed_error,
        rel_tol=1e-9,
        abs_tol=1e-12,
    )


def test_pks_groups_partition(small_context):
    attribution = evaluate_method("pks", small_context).attribution
    assert attribution.groups_partition
    assert len(attribution.per_group) == len(
        evaluate_method("pks", small_context).selection.representatives
    )


def test_attribution_round_trips_through_dict(small_context):
    attribution = evaluate_method("sieve", small_context).attribution
    rebuilt = ErrorAttribution.from_dict(attribution.to_dict())
    assert rebuilt == attribution


def test_missing_contributions_degrade_to_totals_only(small_context):
    """A predictor without a decomposition still reports the signed total."""
    import dataclasses

    method = get_method("sieve")
    config = method.default_config()
    selection = method.select(small_context, config)
    prediction = method.predict(selection, small_context.golden, config)
    bare = dataclasses.replace(prediction, contributions=())
    attribution = attribute_error(method, selection, bare, small_context, config)
    assert attribution.per_kernel == ()
    assert attribution.per_group == ()
    assert not attribution.groups_partition
    assert math.isclose(
        attribution.signed_error,
        (prediction.predicted_cycles - small_context.truth.total_cycles)
        / small_context.truth.total_cycles,
        rel_tol=1e-12,
    )
    # Health gauges are selection-derived and survive without contributions.
    assert attribution.health
