"""Cross-model consistency: trace simulator vs analytical timing model.

The repository contains two independent performance models — the
interval-analysis model that plays "real hardware" and the cycle-level
trace-driven simulator. They operate at different scales, but on relative
questions they must agree qualitatively; these tests pin that agreement.
"""

import dataclasses

import numpy as np
import pytest

from repro.gpu import AMPERE_RTX3080
from repro.gpu.timing import invocation_timing
from repro.trace.simulator import SimulatorConfig, TraceSimulator
from repro.trace.tracer import SelectionTracer, TracerConfig
from repro.workloads.generator import generate
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def world():
    spec = make_spec(name="crossmodel", num_kernels=6, num_invocations=600,
                     tier_fractions=(1.0, 0.0, 0.0))
    run = generate(spec)
    tracer = SelectionTracer(TracerConfig(max_warps=8, max_warp_instructions=256))
    simulator = TraceSimulator(SimulatorConfig(num_sms=2))
    return run, tracer, simulator


def _models_ipc(run, tracer, simulator, kernel):
    """(analytical chip IPC, trace-sim chip IPC) for one kernel."""
    analytical = invocation_timing(AMPERE_RTX3080, kernel.traits, kernel.batch)
    analytical_ipc = float(
        kernel.batch.insn_count[0] / analytical.total_cycles[0]
    )
    trace = tracer.trace_invocation(run, kernel.traits.name, 0)
    simulated = simulator.simulate(trace)
    return analytical_ipc, simulated.ipc


def test_kernel_ipc_rankings_correlate(world):
    """Kernels the analytical model calls fast should also be fast in the
    trace simulator (rank correlation, not absolute agreement — the
    simulator models a 2-SM chip on scaled traces)."""
    run, tracer, simulator = world
    analytical, simulated = [], []
    for kernel in run.kernels:
        a, s = _models_ipc(run, tracer, simulator, kernel)
        analytical.append(a)
        simulated.append(s)
    a_ranks = np.argsort(np.argsort(analytical))
    s_ranks = np.argsort(np.argsort(simulated))
    correlation = np.corrcoef(a_ranks, s_ranks)[0, 1]
    assert correlation > 0.3


def test_both_models_punish_divergence(world):
    run, tracer, simulator = world
    kernel = run.kernels[0]

    divergent_batch = dataclasses.replace(
        kernel.batch,
        divergence_efficiency=np.full_like(
            kernel.batch.divergence_efficiency, 0.5
        ),
    )
    base = invocation_timing(AMPERE_RTX3080, kernel.traits, kernel.batch)
    divergent = invocation_timing(AMPERE_RTX3080, kernel.traits, divergent_batch)
    assert divergent.total_cycles[0] > base.total_cycles[0]

    # Trace side: fewer active lanes -> fewer thread-instructions per
    # issued warp instruction -> lower thread-level IPC.
    trace = tracer.trace_invocation(run, kernel.traits.name, 0)
    result = simulator.simulate(trace)
    per_warp_parallelism = result.thread_instructions / result.warp_instructions
    expected = 32 * float(kernel.batch.divergence_efficiency[0])
    assert per_warp_parallelism == pytest.approx(expected, rel=0.1)


def test_memory_intensity_slows_both_models(world):
    """A memory-heavier variant of the same kernel runs slower under both
    models."""
    run, tracer, simulator = world
    kernel = run.kernels[0]

    heavy_traits = dataclasses.replace(
        kernel.traits, l1_hit_rate=0.0, l2_hit_rate=0.0
    )
    light_traits = dataclasses.replace(
        kernel.traits, l1_hit_rate=0.95, l2_hit_rate=0.95
    )
    heavy = invocation_timing(AMPERE_RTX3080, heavy_traits, kernel.batch)
    light = invocation_timing(AMPERE_RTX3080, light_traits, kernel.batch)
    assert heavy.total_cycles[0] >= light.total_cycles[0]

    # Trace side: widen strides so the L1/L2 thrash, and compare with a
    # cache-resident version of the same instruction stream.
    trace = tracer.trace_invocation(run, kernel.traits.name, 0)
    resident_config = SimulatorConfig(num_sms=2, l1_size=16 * 1024 * 1024,
                                      l2_size=64 * 1024 * 1024)
    thrash_config = SimulatorConfig(num_sms=2, l1_size=1024, l2_size=2048)
    resident = TraceSimulator(resident_config).simulate(trace)
    thrashing = TraceSimulator(thrash_config).simulate(trace)
    assert thrashing.cycles >= resident.cycles
