"""Tests for simulation-time estimation and PKP-style projection."""

import pytest

from repro.core.pipeline import SievePipeline
from repro.gpu.isa import OpClass, WarpInstruction
from repro.profiling.nvbit import NVBitProfiler
from repro.trace.encoding import KernelTrace
from repro.trace.projection import simulate_with_projection
from repro.trace.simtime import estimate_simulation_time
from repro.trace.simulator import SimulatorConfig


@pytest.fixture(scope="module")
def selection(toy_run):
    table, _ = NVBitProfiler().profile(toy_run)
    return SievePipeline().select(table)


class TestSimTime:
    def test_serial_is_sum_parallel_is_max(self, selection, toy_measurement):
        estimate = estimate_simulation_time(selection, toy_measurement)
        insn = [
            r.measured_insn(toy_measurement) for r in selection.representatives
        ]
        rate = 6000.0
        assert estimate.serial_seconds == pytest.approx(sum(insn) / rate)
        assert estimate.parallel_seconds == pytest.approx(max(insn) / rate)
        assert estimate.num_traces == selection.num_representatives

    def test_custom_rate(self, selection, toy_measurement):
        slow = estimate_simulation_time(selection, toy_measurement, 1000.0)
        fast = estimate_simulation_time(selection, toy_measurement, 10_000.0)
        assert slow.serial_seconds == pytest.approx(fast.serial_seconds * 10)

    def test_unit_conversions(self, selection, toy_measurement):
        estimate = estimate_simulation_time(selection, toy_measurement)
        assert estimate.serial_days == pytest.approx(
            estimate.serial_seconds / 86_400
        )
        assert estimate.parallel_hours == pytest.approx(
            estimate.parallel_seconds / 3_600
        )


def homogeneous_trace(warps=32, insns=60):
    stream = []
    for i in range(insns):
        stream.append(WarpInstruction(OpClass.FP32, dest=2 + i % 4, srcs=(0,)))
    stream.append(WarpInstruction(OpClass.EXIT))
    return KernelTrace(
        kernel_name="homogeneous", invocation_id=0, num_ctas=warps,
        cta_size=32, warps=tuple(tuple(stream) for _ in range(warps)),
    )


class TestProjection:
    def test_converges_early_on_homogeneous_work(self):
        result = simulate_with_projection(
            homogeneous_trace(), SimulatorConfig(num_sms=2), batch_warps=4,
            tolerance=0.05,
        )
        assert result.converged
        assert result.simulated_warp_fraction < 1.0
        assert result.projected_ipc > 0

    def test_checkpoints_recorded(self):
        result = simulate_with_projection(
            homogeneous_trace(warps=16), SimulatorConfig(num_sms=2),
            batch_warps=4,
        )
        assert len(result.checkpoints) >= 2

    def test_tight_tolerance_simulates_more(self):
        loose = simulate_with_projection(
            homogeneous_trace(), SimulatorConfig(num_sms=2), batch_warps=4,
            tolerance=0.5,
        )
        tight = simulate_with_projection(
            homogeneous_trace(), SimulatorConfig(num_sms=2), batch_warps=4,
            tolerance=0.0001,
        )
        assert tight.simulated_warp_fraction >= loose.simulated_warp_fraction

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            simulate_with_projection(homogeneous_trace(), batch_warps=0)
        with pytest.raises(ValueError):
            simulate_with_projection(homogeneous_trace(), tolerance=1.5)
