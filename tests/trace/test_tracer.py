"""Tests for the selection-aware tracer."""

import pytest

from repro.core.pipeline import SievePipeline
from repro.gpu.isa import OpClass
from repro.profiling.nvbit import NVBitProfiler
from repro.trace.encoding import parse_trace
from repro.trace.tracer import SelectionTracer, TracerConfig


@pytest.fixture(scope="module")
def selection(toy_run):
    table, _ = NVBitProfiler().profile(toy_run)
    return SievePipeline().select(table)


@pytest.fixture(scope="module")
def tracer():
    return SelectionTracer(TracerConfig(max_warps=8, max_warp_instructions=256))


def test_traces_cover_exactly_the_selection(toy_run, selection, tracer):
    traces = tracer.trace_selection(toy_run, selection)
    assert len(traces) == selection.num_representatives
    for trace, rep in zip(traces, selection.representatives):
        assert trace.kernel_name == rep.kernel_name
        assert trace.invocation_id == rep.invocation_id


def test_trace_respects_warp_cap(toy_run, selection, tracer):
    for trace in tracer.trace_selection(toy_run, selection)[:5]:
        assert trace.num_warps <= 8
        for warp in trace.warps:
            assert len(warp) <= 257  # stream + EXIT


def test_every_warp_ends_with_exit(toy_run, selection, tracer):
    trace = tracer.trace_invocation(
        toy_run, selection.representatives[0].kernel_name,
        selection.representatives[0].invocation_id,
    )
    for warp in trace.warps:
        assert warp[-1].opclass is OpClass.EXIT


def test_mix_tracks_kernel_memory_intensity(toy_run, tracer):
    kernel = max(toy_run.kernels, key=len)
    trace = tracer.trace_invocation(toy_run, kernel.traits.name, 0)
    ops = [insn.opclass for warp in trace.warps for insn in warp]
    memory_share = sum(op.is_memory for op in ops) / len(ops)
    batch = kernel.batch
    expected = float(
        batch.thread_global_loads[0]
        + batch.thread_global_stores[0]
        + batch.thread_shared_loads[0]
        + batch.thread_shared_stores[0]
        + batch.thread_local_loads[0]
        + batch.thread_global_atomics[0]
    ) / float(batch.insn_count[0])
    assert memory_share == pytest.approx(expected, abs=0.1)


def test_divergence_reflected_in_masks(toy_run, tracer):
    kernel = toy_run.kernels[0]
    trace = tracer.trace_invocation(toy_run, kernel.traits.name, 0)
    lanes = trace.warps[0][0].active_lanes
    expected = round(32 * float(kernel.batch.divergence_efficiency[0]))
    assert lanes == max(1, expected)


def test_invalid_invocation_rejected(toy_run, tracer):
    name = toy_run.kernels[0].traits.name
    with pytest.raises(ValueError):
        tracer.trace_invocation(toy_run, name, 10**9)


def test_write_selection_round_trips(toy_run, selection, tracer, tmp_path):
    # Write a small subset to keep the test fast.
    small = selection.representatives[:3]
    import dataclasses

    subset = dataclasses.replace(selection, representatives=small, strata=())
    paths = tracer.write_selection(toy_run, subset, tmp_path)
    assert len(paths) == 3
    for path, rep in zip(paths, small):
        parsed = parse_trace(path.read_text())
        assert parsed.kernel_name == rep.kernel_name
        assert parsed.invocation_id == rep.invocation_id


def test_deterministic(toy_run, selection, tracer):
    rep = selection.representatives[0]
    a = tracer.trace_invocation(toy_run, rep.kernel_name, rep.invocation_id)
    b = tracer.trace_invocation(toy_run, rep.kernel_name, rep.invocation_id)
    assert a == b
