"""Tests for the plain-text trace format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.isa import OpClass, WarpInstruction
from repro.trace.encoding import KernelTrace, parse_trace, render_trace


def simple_trace():
    warp = (
        WarpInstruction(OpClass.FP32, dest=1, srcs=(2, 3)),
        WarpInstruction(OpClass.LOAD_GLOBAL, address=0x1000, dest=4, srcs=(1,)),
        WarpInstruction(OpClass.EXIT),
    )
    return KernelTrace(
        kernel_name="k0", invocation_id=7, num_ctas=16, cta_size=256,
        warps=(warp, warp),
    )


def test_round_trip():
    trace = simple_trace()
    assert parse_trace(render_trace(trace)) == trace


def test_render_header():
    text = render_trace(simple_trace())
    lines = text.splitlines()
    assert lines[0] == "# kernel k0 invocation 7"
    assert lines[1] == "# grid 16 block 256 warps 2"


def test_instruction_counts():
    trace = simple_trace()
    assert trace.num_instructions == 6
    assert trace.thread_instructions == 6 * 32


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_trace("not a trace")


instruction_strategy = st.builds(
    WarpInstruction,
    opclass=st.sampled_from(list(OpClass)),
    active_mask=st.integers(min_value=1, max_value=0xFFFFFFFF),
    address=st.integers(min_value=0, max_value=2**40),
    dest=st.integers(min_value=-1, max_value=31),
    srcs=st.lists(st.integers(0, 31), max_size=3).map(tuple),
)


@settings(max_examples=30, deadline=None)
@given(
    warps=st.lists(
        st.lists(instruction_strategy, min_size=1, max_size=16).map(tuple),
        min_size=1,
        max_size=4,
    ).map(tuple),
    num_ctas=st.integers(1, 1000),
    cta_size=st.sampled_from([32, 64, 128, 256, 1024]),
)
def test_round_trip_property(warps, num_ctas, cta_size):
    trace = KernelTrace(
        kernel_name="prop", invocation_id=0, num_ctas=num_ctas,
        cta_size=cta_size, warps=warps,
    )
    assert parse_trace(render_trace(trace)) == trace
