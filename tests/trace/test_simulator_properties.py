"""Property-based tests for the trace simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.isa import OpClass, WarpInstruction
from repro.trace.encoding import KernelTrace
from repro.trace.simulator import SimulatorConfig, TraceSimulator

OPS = [
    OpClass.FP32,
    OpClass.INT32,
    OpClass.SFU,
    OpClass.LOAD_GLOBAL,
    OpClass.STORE_GLOBAL,
    OpClass.LOAD_SHARED,
    OpClass.BRANCH,
]


def random_stream(draw):
    length = draw(st.integers(min_value=1, max_value=40))
    stream = []
    for index in range(length):
        op = draw(st.sampled_from(OPS))
        stream.append(
            WarpInstruction(
                opclass=op,
                address=draw(st.integers(0, 2**20)) * 4 if op.is_memory else 0,
                dest=draw(st.integers(-1, 7)),
                srcs=(draw(st.integers(0, 7)),),
            )
        )
    stream.append(WarpInstruction(opclass=OpClass.EXIT))
    return tuple(stream)


@st.composite
def traces(draw):
    num_warps = draw(st.integers(min_value=1, max_value=6))
    return KernelTrace(
        kernel_name="prop",
        invocation_id=0,
        num_ctas=num_warps,
        cta_size=32,
        warps=tuple(random_stream(draw) for _ in range(num_warps)),
    )


@settings(max_examples=30, deadline=None)
@given(trace=traces(), scheduler=st.sampled_from(["gto", "lrr"]))
def test_every_instruction_is_issued_exactly_once(trace, scheduler):
    """Conservation: the simulator retires exactly the trace's instructions
    regardless of scheduling policy."""
    config = SimulatorConfig(num_sms=2, scheduler=scheduler)
    result = TraceSimulator(config).simulate(trace)
    assert result.warp_instructions == trace.num_instructions
    assert result.thread_instructions == trace.thread_instructions
    assert result.cycles >= 1


@settings(max_examples=15, deadline=None)
@given(trace=traces())
def test_simulation_is_deterministic(trace):
    config = SimulatorConfig(num_sms=2)
    a = TraceSimulator(config).simulate(trace)
    b = TraceSimulator(config).simulate(trace)
    assert a == b


@settings(max_examples=15, deadline=None)
@given(trace=traces())
def test_cycles_bounded_below_by_issue_width(trace):
    """A trace can never finish faster than the chip's peak issue rate."""
    config = SimulatorConfig(num_sms=2, schedulers_per_sm=2)
    result = TraceSimulator(config).simulate(trace)
    peak_issue = config.num_sms * config.schedulers_per_sm
    assert result.cycles >= trace.num_instructions / peak_issue - 1
