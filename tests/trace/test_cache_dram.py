"""Tests for the cache and DRAM models."""

import pytest

from repro.trace.cache import SetAssociativeCache
from repro.trace.dram import DramModel


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(size_bytes=1024, line_bytes=32)
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1

    def test_same_line_different_offsets_hit(self):
        cache = SetAssociativeCache(size_bytes=1024, line_bytes=32)
        cache.access(0x40)
        assert cache.access(0x5F) is True  # same 32B line

    def test_lru_eviction(self):
        # Direct-mapped-ish: 2 ways, 2 sets of 32B lines.
        cache = SetAssociativeCache(size_bytes=128, line_bytes=32, associativity=2)
        conflicting = [0x0, 0x80, 0x100]  # all map to set 0
        for address in conflicting:
            cache.access(address)
        assert cache.access(0x0) is False  # evicted (LRU)
        assert cache.access(0x100) is True  # most recent survivor


    def test_hit_rate(self):
        cache = SetAssociativeCache(size_bytes=4096)
        for _ in range(10):
            cache.access(0x0)
        assert cache.stats.hit_rate == pytest.approx(0.9)

    def test_reset_stats(self):
        cache = SetAssociativeCache(size_bytes=1024)
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0

    def test_rejects_cache_smaller_than_line(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=16, line_bytes=32)


class TestDram:
    def test_fixed_latency(self):
        dram = DramModel(latency_cycles=300, cycles_per_request=2.0)
        assert dram.request(100) == 400

    def test_bandwidth_serialization(self):
        dram = DramModel(latency_cycles=300, cycles_per_request=2.0)
        first = dram.request(0)
        second = dram.request(0)  # queued behind the first
        assert first == 300
        assert second == 302

    def test_idle_channel_resets(self):
        dram = DramModel(latency_cycles=100, cycles_per_request=4.0)
        dram.request(0)
        # Long idle gap: the channel is free again.
        assert dram.request(1000) == 1100

    def test_request_count(self):
        dram = DramModel()
        for cycle in range(5):
            dram.request(cycle)
        assert dram.requests == 5

    def test_reset(self):
        dram = DramModel()
        dram.request(0)
        dram.reset()
        assert dram.requests == 0
