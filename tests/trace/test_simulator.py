"""Tests for the cycle-level trace simulator."""

import pytest

from repro.gpu.isa import OpClass, WarpInstruction
from repro.trace.encoding import KernelTrace
from repro.trace.simulator import SimulatorConfig, TraceSimulator


def make_trace(streams, name="k", cta_size=32):
    return KernelTrace(
        kernel_name=name, invocation_id=0, num_ctas=len(streams),
        cta_size=cta_size, warps=tuple(tuple(s) for s in streams),
    )


def alu_chain(n, dependent=True):
    """n FP32 ops; dependent chains serialize on the ALU latency."""
    ops = []
    for i in range(n):
        srcs = (0,) if not dependent else (1,)
        ops.append(WarpInstruction(OpClass.FP32, dest=1 if dependent else 2 + i % 8,
                                   srcs=srcs))
    ops.append(WarpInstruction(OpClass.EXIT))
    return ops


def test_dependent_chain_costs_latency_per_instruction():
    config = SimulatorConfig(num_sms=1, alu_latency=4)
    result = TraceSimulator(config).simulate(make_trace([alu_chain(100)]))
    # Each instruction waits for the previous write: >= latency apart
    # (the final instruction's own latency is not part of the makespan).
    assert result.cycles >= 99 * 4
    assert result.warp_instructions == 101


def test_independent_instructions_pipeline():
    config = SimulatorConfig(num_sms=1)
    dependent = TraceSimulator(config).simulate(make_trace([alu_chain(200, True)]))
    independent = TraceSimulator(config).simulate(
        make_trace([alu_chain(200, False)])
    )
    assert independent.cycles < dependent.cycles


def test_multiple_warps_hide_latency():
    config = SimulatorConfig(num_sms=1)
    one = TraceSimulator(config).simulate(make_trace([alu_chain(100)]))
    four = TraceSimulator(config).simulate(make_trace([alu_chain(100)] * 4))
    # 4x the work in far less than 4x the time.
    assert four.cycles < one.cycles * 2.5
    assert four.warp_instructions == 4 * one.warp_instructions


def memory_stream(n, stride, base=0x10000):
    ops = []
    for i in range(n):
        ops.append(
            WarpInstruction(OpClass.LOAD_GLOBAL, address=base + i * stride,
                            dest=1, srcs=(0,))
        )
        ops.append(WarpInstruction(OpClass.FP32, dest=2, srcs=(1,)))
    ops.append(WarpInstruction(OpClass.EXIT))
    return ops


def test_cache_resident_faster_than_streaming():
    config = SimulatorConfig(num_sms=1)
    resident = TraceSimulator(config).simulate(
        make_trace([memory_stream(100, stride=0)])
    )
    streaming = TraceSimulator(config).simulate(
        make_trace([memory_stream(100, stride=4096)])
    )
    assert resident.cycles < streaming.cycles
    assert resident.l1_hit_rate > streaming.l1_hit_rate
    assert streaming.dram_requests > resident.dram_requests


def test_shared_memory_cheaper_than_dram():
    def shared_stream(n):
        ops = []
        for _ in range(n):
            ops.append(WarpInstruction(OpClass.LOAD_SHARED, address=0x10,
                                       dest=1, srcs=(0,)))
            ops.append(WarpInstruction(OpClass.FP32, dest=2, srcs=(1,)))
        ops.append(WarpInstruction(OpClass.EXIT))
        return ops

    config = SimulatorConfig(num_sms=1)
    shared = TraceSimulator(config).simulate(make_trace([shared_stream(100)]))
    dram = TraceSimulator(config).simulate(
        make_trace([memory_stream(100, stride=4096)])
    )
    assert shared.cycles < dram.cycles


def test_schedulers_both_complete():
    trace = make_trace([alu_chain(50)] * 6)
    for policy in ("gto", "lrr"):
        config = SimulatorConfig(num_sms=1, scheduler=policy)
        result = TraceSimulator(config).simulate(trace)
        assert result.warp_instructions == 6 * 51


def test_thread_instructions_respect_masks():
    half_mask = (1 << 16) - 1
    stream = [
        WarpInstruction(OpClass.FP32, active_mask=half_mask, dest=1),
        WarpInstruction(OpClass.EXIT, active_mask=half_mask),
    ]
    result = TraceSimulator(SimulatorConfig(num_sms=1)).simulate(
        make_trace([stream])
    )
    assert result.thread_instructions == 32


def test_warps_distributed_across_sms():
    trace = make_trace([alu_chain(100)] * 8)
    one_sm = TraceSimulator(SimulatorConfig(num_sms=1, max_warps_per_sm=2)).simulate(trace)
    four_sm = TraceSimulator(SimulatorConfig(num_sms=4, max_warps_per_sm=2)).simulate(trace)
    assert four_sm.cycles < one_sm.cycles


def test_max_cycles_guard():
    config = SimulatorConfig(num_sms=1, max_cycles=10)
    with pytest.raises(RuntimeError, match="max_cycles"):
        TraceSimulator(config).simulate(make_trace([alu_chain(1000)]))


def test_ipc_definition():
    result = TraceSimulator(SimulatorConfig(num_sms=1)).simulate(
        make_trace([alu_chain(64, dependent=False)])
    )
    assert result.ipc == pytest.approx(result.thread_instructions / result.cycles)
