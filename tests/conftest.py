"""Shared fixtures: small, fast workloads reused across the test suite."""

from __future__ import annotations

import os

import pytest

from repro.evaluation.context import WorkloadContext, build_context
from repro.gpu import AMPERE_RTX3080, HardwareExecutor
from repro.workloads.generator import WorkloadRun, generate
from repro.workloads.spec import KernelBehavior, WorkloadSpec


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the engine's default on-disk cache at a per-run temp dir.

    CLI commands enable the result cache by default; tests must neither
    read stale entries from nor write into the user's real cache.
    """
    path = tmp_path_factory.mktemp("sieve-cache")
    previous = os.environ.get("SIEVE_REPRO_CACHE_DIR")
    os.environ["SIEVE_REPRO_CACHE_DIR"] = str(path)
    yield
    if previous is None:
        os.environ.pop("SIEVE_REPRO_CACHE_DIR", None)
    else:
        os.environ["SIEVE_REPRO_CACHE_DIR"] = previous


def make_spec(**overrides) -> WorkloadSpec:
    """A compact challenging-style spec; override any field per test."""
    defaults = dict(
        name="toy",
        suite="testsuite",
        num_kernels=8,
        num_invocations=1200,
        tier_fractions=(0.4, 0.4, 0.2),
        behavior=KernelBehavior(
            tier2_cov=0.3, tier3_modes=4, tier3_spread=20.0, tier3_mode_cov=0.1
        ),
        insn_scale=4.0e8,
        alias_groups=3,
        heterogeneity=0.3,
        drift_fraction=0.2,
        drift_factor=0.3,
        chrono_size_correlation=0.8,
        metric_direction_sigma=0.5,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


@pytest.fixture(scope="session")
def toy_spec() -> WorkloadSpec:
    return make_spec()


@pytest.fixture(scope="session")
def toy_run(toy_spec) -> WorkloadRun:
    return generate(toy_spec)


@pytest.fixture(scope="session")
def toy_measurement(toy_run):
    return HardwareExecutor(AMPERE_RTX3080).measure(toy_run)


@pytest.fixture(scope="session")
def small_context() -> WorkloadContext:
    """A capped catalog workload exercised through the full context path."""
    return build_context("cactus/gru", max_invocations=1500)
