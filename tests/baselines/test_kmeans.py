"""Tests for the from-scratch k-means and bisecting k-means."""

import numpy as np
import pytest

from repro.baselines.kmeans import BisectingKMeans, KMeans


def blobs(centers, per=100, scale=0.05, seed=0):
    rng = np.random.default_rng(seed)
    return np.vstack(
        [rng.normal(center, scale, size=(per, len(center))) for center in centers]
    )


class TestKMeans:
    def test_recovers_separated_blobs(self):
        points = blobs([(0, 0), (10, 0), (0, 10)])
        result = KMeans(3, seed_label="blobs").fit(points)
        # Each blob lands in one cluster.
        for start in range(0, 300, 100):
            labels = result.labels[start : start + 100]
            assert len(np.unique(labels)) == 1

    def test_deterministic(self):
        points = blobs([(0, 0), (5, 5)])
        a = KMeans(2, seed_label="det").fit(points)
        b = KMeans(2, seed_label="det").fit(points)
        assert np.array_equal(a.labels, b.labels)

    def test_inertia_decreases_with_k(self):
        points = blobs([(0, 0), (10, 0), (0, 10), (10, 10)])
        inertia = [
            KMeans(k, seed_label="ine").fit(points).inertia for k in (1, 2, 4)
        ]
        assert inertia[0] > inertia[1] > inertia[2]

    def test_subsampled_fit_assigns_full_population(self):
        points = blobs([(0, 0), (20, 20)], per=2000)
        result = KMeans(2, seed_label="sub", fit_sample_size=200).fit(points)
        assert len(result.labels) == 4000
        assert len(np.unique(result.labels)) == 2

    def test_k_larger_than_points_clamps(self):
        points = np.array([[0.0], [1.0]])
        result = KMeans(5, seed_label="clamp").fit(points)
        assert result.k <= 2

    def test_identical_points(self):
        points = np.zeros((50, 3))
        result = KMeans(4, seed_label="same").fit(points)
        assert result.inertia == pytest.approx(0.0)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KMeans(0, seed_label="bad")


class TestBisectingKMeans:
    def test_returns_every_k_up_to_max(self):
        points = blobs([(0, 0), (10, 0), (0, 10), (10, 10)])
        results = BisectingKMeans(8, seed_label="bi").fit_all(points)
        assert sorted(results) == list(range(1, 9))
        for k, result in results.items():
            assert result.k == k

    def test_inertia_monotone_in_k(self):
        points = blobs([(0, 0), (6, 6), (12, 0)], per=150)
        results = BisectingKMeans(10, seed_label="mono").fit_all(points)
        inertias = [results[k].inertia for k in sorted(results)]
        assert all(a >= b - 1e-6 for a, b in zip(inertias, inertias[1:]))

    def test_nested_structure(self):
        """Clusters at k are unions of clusters at k+1 (up to assignment
        noise at blob boundaries, so we test on well-separated blobs)."""
        points = blobs([(0, 0), (50, 0), (0, 50), (50, 50)], scale=0.01)
        results = BisectingKMeans(4, seed_label="nest").fit_all(points)
        for k in (2, 3):
            coarse, fine = results[k].labels, results[k + 1].labels
            # Every fine cluster maps into exactly one coarse cluster.
            for cluster in np.unique(fine):
                assert len(np.unique(coarse[fine == cluster])) == 1

    def test_deterministic(self):
        points = blobs([(0, 0), (9, 9)])
        a = BisectingKMeans(5, seed_label="det").fit_all(points)
        b = BisectingKMeans(5, seed_label="det").fit_all(points)
        for k in a:
            assert np.array_equal(a[k].labels, b[k].labels)

    def test_stops_at_population_size(self):
        points = np.array([[0.0], [5.0], [10.0]])
        results = BisectingKMeans(10, seed_label="tiny").fit_all(points)
        assert max(results) == 3
