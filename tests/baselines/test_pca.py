"""Tests for the from-scratch PCA."""

import numpy as np
import pytest

from repro.baselines.pca import PCA, standardize


def test_standardize_zero_mean_unit_std():
    rng = np.random.default_rng(0)
    matrix = rng.normal(5.0, 3.0, (500, 4))
    z, mean, std = standardize(matrix)
    assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(z.std(axis=0), 1.0, atol=1e-9)


def test_standardize_handles_constant_columns():
    matrix = np.column_stack([np.ones(10), np.arange(10.0)])
    z, _, std = standardize(matrix)
    assert np.all(np.isfinite(z))
    assert np.allclose(z[:, 0], 0.0)
    assert std[0] == 1.0


def test_low_rank_data_needs_few_components():
    rng = np.random.default_rng(1)
    base = rng.normal(size=(300, 2))
    # Embed a rank-2 structure in 8 dimensions plus tiny noise.
    mixing = rng.normal(size=(2, 8))
    data = base @ mixing + rng.normal(scale=1e-6, size=(300, 8))
    result = PCA(variance_target=0.99).fit(data)
    assert result.n_components == 2


def test_explained_variance_sums_near_target():
    rng = np.random.default_rng(2)
    data = rng.normal(size=(400, 6)) * np.array([10, 5, 2, 1, 0.5, 0.1])
    result = PCA(variance_target=0.9).fit(data)
    assert result.explained_variance_ratio.sum() >= 0.85


def test_transform_shape_and_determinism():
    rng = np.random.default_rng(3)
    data = rng.normal(size=(100, 12))
    result = PCA(0.9).fit(data)
    projected = result.transform(data)
    assert projected.shape == (100, result.n_components)
    assert np.array_equal(projected, result.transform(data))


def test_components_are_orthonormal():
    rng = np.random.default_rng(4)
    data = rng.normal(size=(200, 5)) * np.array([4, 3, 2, 1, 0.5])
    result = PCA(1.0).fit(data)
    gram = result.components @ result.components.T
    assert np.allclose(gram, np.eye(result.n_components), atol=1e-8)


def test_max_components_cap():
    rng = np.random.default_rng(5)
    data = rng.normal(size=(100, 10))
    result = PCA(1.0, max_components=3).fit(data)
    assert result.n_components == 3


def test_invalid_variance_target():
    with pytest.raises(ValueError):
        PCA(variance_target=0.0)
