"""Tests for the PKS baseline pipeline."""

import numpy as np
import pytest

from repro.baselines.pks import PksConfig, PksPipeline, cycles_in_table_order
from repro.profiling.nsight import NsightComputeProfiler
from repro.profiling.nvbit import NVBitProfiler


@pytest.fixture(scope="module")
def pks_inputs(toy_run, toy_measurement):
    table, _ = NsightComputeProfiler().profile(toy_run)
    return table, toy_measurement


@pytest.fixture(scope="module")
def pks_selection(pks_inputs):
    table, golden = pks_inputs
    return PksPipeline().select(table, golden)


def test_requires_metric_matrix(toy_run, toy_measurement):
    table, _ = NVBitProfiler().profile(toy_run)
    with pytest.raises(ValueError, match="12-metric"):
        PksPipeline().select(table, toy_measurement)


def test_chosen_k_within_bounds(pks_selection):
    assert 2 <= pks_selection.chosen_k <= 20


def test_weights_are_cluster_count_shares(pks_selection):
    total = sum(r.group_size for r in pks_selection.representatives)
    assert total == pks_selection.num_invocations
    for rep in pks_selection.representatives:
        assert rep.weight == pytest.approx(
            rep.group_size / pks_selection.num_invocations
        )


def test_representatives_are_first_chronological(pks_inputs, pks_selection):
    table, _ = pks_inputs
    for rep, cluster_rows in zip(
        pks_selection.representatives, pks_selection.cluster_rows
    ):
        assert rep.row == cluster_rows[0]


def test_prediction_is_count_weighted_sum(pks_inputs, pks_selection):
    table, golden = pks_inputs
    prediction = PksPipeline().predict(pks_selection, golden)
    cycles = cycles_in_table_order(table, golden)
    expected = sum(
        rep.group_size * cycles[rep.row] for rep in pks_selection.representatives
    )
    assert prediction.predicted_cycles == pytest.approx(expected)


def test_chosen_k_minimizes_error(pks_inputs):
    """Re-running with max_k below the chosen k cannot yield lower error
    (the k search is over a nested prefix of the same hierarchy)."""
    table, golden = pks_inputs
    full = PksPipeline(PksConfig(max_k=20)).select(table, golden)
    restricted = PksPipeline(PksConfig(max_k=max(2, full.chosen_k - 1))).select(
        table, golden
    )
    full_err = abs(
        PksPipeline().predict(full, golden).predicted_cycles - golden.total_cycles
    )
    restricted_err = abs(
        PksPipeline().predict(restricted, golden).predicted_cycles
        - golden.total_cycles
    )
    assert full_err <= restricted_err + 1e-6


def test_selection_policies_yield_different_reps(pks_inputs):
    table, golden = pks_inputs
    first = PksPipeline(PksConfig(selection_policy="first")).select(table, golden)
    centroid = PksPipeline(PksConfig(selection_policy="centroid")).select(
        table, golden
    )
    assert [r.row for r in first.representatives] != [
        r.row for r in centroid.representatives
    ]
    assert first.method == "pks-first"
    assert centroid.method == "pks-centroid"


def test_random_policy_deterministic(pks_inputs):
    table, golden = pks_inputs
    config = PksConfig(selection_policy="random")
    a = PksPipeline(config).select(table, golden)
    b = PksPipeline(config).select(table, golden)
    assert [r.row for r in a.representatives] == [r.row for r in b.representatives]


def test_cycles_in_table_order_alignment(pks_inputs, toy_run):
    table, golden = pks_inputs
    cycles = cycles_in_table_order(table, golden)
    row = 17
    kernel_name = table.kernel_name_of_row(row)
    invocation = int(table.invocation_id[row])
    assert cycles[row] == golden.per_kernel[kernel_name].cycles[invocation]


def test_clusters_partition_table(pks_inputs, pks_selection):
    table, _ = pks_inputs
    rows = np.sort(np.concatenate(pks_selection.cluster_rows))
    assert np.array_equal(rows, np.arange(len(table)))
