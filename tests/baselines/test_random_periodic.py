"""Tests for the random and periodic sampling baselines."""

import pytest

from repro.baselines.periodic import PeriodicSampler
from repro.baselines.random_sampling import RandomSampler
from repro.profiling.nvbit import NVBitProfiler


@pytest.fixture(scope="module")
def table(toy_run):
    table, _ = NVBitProfiler().profile(toy_run)
    return table


def test_random_sampler_selects_requested_count(table):
    selection = RandomSampler(sample_size=50).select(table)
    assert selection.num_representatives == 50
    rows = [r.row for r in selection.representatives]
    assert len(set(rows)) == 50


def test_random_sampler_deterministic(table):
    a = RandomSampler(64).select(table)
    b = RandomSampler(64).select(table)
    assert [r.row for r in a.representatives] == [r.row for r in b.representatives]


def test_random_sampler_caps_at_population(table):
    selection = RandomSampler(sample_size=10**9).select(table)
    assert selection.num_representatives == len(table)


def test_random_estimator_reasonable(table, toy_measurement):
    sampler = RandomSampler(sample_size=400)
    selection = sampler.select(table)
    prediction = sampler.predict(selection, toy_measurement)
    assert prediction.error_against(toy_measurement.total_cycles) < 0.6


def test_periodic_sampler_takes_every_kth(table):
    sampler = PeriodicSampler(period=100, offset=3)
    selection = sampler.select(table)
    rows = [r.row for r in selection.representatives]
    assert rows == list(range(3, len(table), 100))


def test_periodic_estimator_runs(table, toy_measurement):
    sampler = PeriodicSampler(period=37)
    selection = sampler.select(table)
    prediction = sampler.predict(selection, toy_measurement)
    assert prediction.predicted_cycles > 0


def test_invalid_parameters():
    with pytest.raises(ValueError):
        RandomSampler(sample_size=0)
    with pytest.raises(ValueError):
        PeriodicSampler(period=0)
    with pytest.raises(ValueError):
        PeriodicSampler(period=5, offset=5)
