"""Tests for PKS on two-level profiles."""

import pytest

from repro.baselines.pks import PksPipeline
from repro.baselines.pks_two_level import TwoLevelPksPipeline
from repro.profiling.nsight import NsightComputeProfiler
from repro.profiling.two_level import TwoLevelProfiler


@pytest.fixture(scope="module")
def two_level_profile(toy_run):
    return TwoLevelProfiler(detailed_budget=400).profile(toy_run)


@pytest.fixture(scope="module")
def two_level_selection(two_level_profile, toy_measurement):
    return TwoLevelPksPipeline().select(two_level_profile, toy_measurement)


def test_weights_cover_the_whole_workload(two_level_selection, toy_run):
    assert two_level_selection.num_invocations == toy_run.num_invocations
    total = sum(r.group_size for r in two_level_selection.representatives)
    assert total == toy_run.num_invocations
    assert sum(r.weight for r in two_level_selection.representatives) == (
        pytest.approx(1.0)
    )


def test_representatives_come_from_detailed_batch(
    two_level_selection, two_level_profile
):
    for rep in two_level_selection.representatives:
        assert rep.row < len(two_level_profile.detailed)


def test_total_instructions_include_light_batch(
    two_level_selection, two_level_profile
):
    expected = int(
        two_level_profile.detailed.insn_count.sum()
        + two_level_profile.light.insn_count.sum()
    )
    assert two_level_selection.total_instructions == expected


def test_prediction_runs_and_is_bounded(two_level_selection, toy_measurement):
    prediction = TwoLevelPksPipeline().predict(two_level_selection, toy_measurement)
    assert prediction.predicted_cycles > 0
    assert prediction.error_against(toy_measurement.total_cycles) < 2.0


def test_method_label(two_level_selection):
    assert two_level_selection.method == "pks-two-level"


def test_comparable_to_full_pks(toy_run, toy_measurement):
    """Extrapolating from a prefix can't be better-informed than full
    profiling, but it must stay in a sane error range on the toy
    workload."""
    full_table, _ = NsightComputeProfiler().profile(toy_run)
    full = PksPipeline().select(full_table, toy_measurement)
    full_error = PksPipeline().predict(full, toy_measurement).error_against(
        toy_measurement.total_cycles
    )
    profile = TwoLevelProfiler(detailed_budget=400).profile(toy_run)
    two_level = TwoLevelPksPipeline().select(profile, toy_measurement)
    two_level_error = TwoLevelPksPipeline().predict(
        two_level, toy_measurement
    ).error_against(toy_measurement.total_cycles)
    assert two_level_error < max(4 * full_error, 0.5)
