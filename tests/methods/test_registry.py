"""Tests for the sampling-method registry and the SamplingMethod contract."""

import pytest

from repro.baselines.pks import PksConfig
from repro.core.config import SieveConfig
from repro.core.pipeline import SievePipeline
from repro.evaluation.runner import evaluate_method
from repro.methods import (
    MethodRequest,
    SamplingMethod,
    get_method,
    list_methods,
    method_entries,
    register_method,
    unregister_method,
)
from repro.utils.errors import (
    EngineError,
    MethodConfigError,
    MethodRegistryError,
    ReproError,
    UnknownMethodError,
)

SHIPPED = ("periodic", "pks", "pks-two-level", "random", "sieve")


def test_all_shipped_methods_registered():
    assert list_methods() == SHIPPED
    assert tuple(method.name for method in method_entries()) == SHIPPED


@pytest.mark.parametrize("name", SHIPPED)
def test_registry_round_trip_evaluates(name, small_context):
    """register -> lookup -> evaluate works for every shipped method."""
    method = get_method(name)
    assert method.name == name
    assert method.description
    result = evaluate_method(name, small_context)
    assert result.workload == small_context.label
    assert result.num_representatives >= 1
    assert result.error >= 0
    assert result.predicted_cycles > 0


def test_unknown_method_raises_typed_error():
    with pytest.raises(UnknownMethodError, match="registered: periodic"):
        get_method("bogus")
    # Typed hierarchy: registry errors are ReproErrors, and the unknown-
    # method case doubles as an EngineError for historical call sites.
    assert issubclass(UnknownMethodError, MethodRegistryError)
    assert issubclass(UnknownMethodError, EngineError)
    assert issubclass(MethodRegistryError, ReproError)


def test_duplicate_name_rejected():
    with pytest.raises(MethodRegistryError, match="already registered"):

        @register_method
        class Impostor(SamplingMethod):
            name = "sieve"

            def select(self, context, config):
                raise NotImplementedError

            def predict(self, selection, measurement, config):
                raise NotImplementedError

    assert isinstance(get_method("sieve").config_schema, type)


def test_non_method_class_rejected():
    with pytest.raises(MethodRegistryError, match="SamplingMethod subclass"):
        register_method(object)


def test_empty_name_rejected():
    with pytest.raises(MethodRegistryError, match="empty method name"):

        @register_method
        class Nameless(SamplingMethod):
            def select(self, context, config):
                raise NotImplementedError

            def predict(self, selection, measurement, config):
                raise NotImplementedError


def test_config_type_mismatch_raises():
    with pytest.raises(MethodConfigError, match="expects SieveConfig"):
        get_method("sieve").resolve_config(PksConfig())
    with pytest.raises(MethodConfigError, match="expects PksConfig"):
        evaluate_method("pks", None, SieveConfig())


def test_default_config_round_trips():
    for method in method_entries():
        config = method.resolve_config(None)
        if method.config_schema is None:
            assert config is None
        else:
            assert isinstance(config, method.config_schema)
            assert method.resolve_config(config) is config


def test_register_evaluate_unregister_custom_method(small_context):
    """A third-party method plugs into the generic evaluation path."""

    class EchoSieve(SamplingMethod):
        name = "test-echo"
        config_schema = SieveConfig
        description = "sieve under a different name"

        def select(self, context, config):
            return SievePipeline(config).select(context.sieve_table)

        def predict(self, selection, measurement, config):
            return SievePipeline(config).predict(selection, measurement)

    register_method(EchoSieve)
    try:
        assert "test-echo" in list_methods()
        result = evaluate_method("test-echo", small_context)
        assert result.method == "sieve"  # selection labels itself
        assert result.predicted_cycles > 0
    finally:
        unregister_method("test-echo")
    assert "test-echo" not in list_methods()
    with pytest.raises(UnknownMethodError):
        get_method("test-echo")


def test_method_request_key_prefers_alias():
    assert MethodRequest("pks").key == "pks"
    assert MethodRequest("pks", alias="pks_random").key == "pks_random"


def test_evaluation_task_rejects_unknown_method_with_typed_error():
    from repro.evaluation.engine import EvaluationTask

    with pytest.raises(UnknownMethodError):
        EvaluationTask(label="cactus/gru", methods=("sieve", "bogus"))


def test_group_rows_default_is_singletons(small_context):
    """Methods without group structure report zero-dispersion singletons."""
    result = evaluate_method("random", small_context)
    assert result.cycle_cov == 0.0
