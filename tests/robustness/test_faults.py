"""Tests for the fault-injection harness."""

import numpy as np
import pytest

from repro.profiling.csv_io import write_profile_csv
from repro.profiling.nsight import NsightComputeProfiler
from repro.profiling.nvbit import NVBitProfiler
from repro.robustness.faults import (
    FAULT_MODES,
    FaultPlan,
    FaultSpec,
    inject_csv_faults,
    inject_measurement_faults,
    inject_table_faults,
    parse_fault_plan,
)
from repro.robustness.validate import validate_profile_csv, validate_table
from repro.utils.errors import FaultInjectionError


def plan(mode, rate, seed=0):
    return FaultPlan(specs=(FaultSpec(mode=mode, rate=rate),), seed=seed)


@pytest.fixture(scope="module")
def pks_table(toy_run):
    table, _ = NsightComputeProfiler().profile(toy_run)
    return table


@pytest.fixture(scope="module")
def sieve_table(toy_run):
    table, _ = NVBitProfiler().profile(toy_run)
    return table


# ------------------------------------------------------------------ #
# Plan parsing


def test_parse_fault_plan():
    parsed = parse_fault_plan("drop:0.1, nan:0.05", seed=7)
    assert parsed.specs == (FaultSpec("drop", 0.1), FaultSpec("nan", 0.05))
    assert parsed.seed == 7
    assert parsed.describe() == "drop:0.1,nan:0.05"


@pytest.mark.parametrize("text", ["bogus:0.1", "drop", "drop:zero", ""])
def test_parse_fault_plan_rejects_malformed(text):
    with pytest.raises(FaultInjectionError):
        parse_fault_plan(text)


def test_rate_out_of_range_rejected():
    with pytest.raises(FaultInjectionError):
        FaultSpec("drop", 1.5)


# ------------------------------------------------------------------ #
# Table faults


@pytest.mark.parametrize("mode", sorted(
    m for m, surfaces in FAULT_MODES.items() if "table" in surfaces
))
def test_table_rate_zero_is_identity(pks_table, mode):
    corrupted, records = inject_table_faults(pks_table, plan(mode, 0.0))
    assert records == []
    assert np.array_equal(corrupted.insn_count, pks_table.insn_count)
    assert np.array_equal(corrupted.invocation_id, pks_table.invocation_id)
    assert np.array_equal(corrupted.metrics, pks_table.metrics)


def test_table_faults_are_deterministic(pks_table):
    p = plan("drop", 0.1, seed=3)
    a, records_a = inject_table_faults(pks_table, p)
    b, records_b = inject_table_faults(pks_table, p)
    assert records_a == records_b
    assert np.array_equal(a.insn_count, b.insn_count)
    # A different seed corrupts differently.
    c, records_c = inject_table_faults(pks_table, plan("drop", 0.1, seed=4))
    assert records_c != records_a


def test_table_faults_do_not_mutate_input(pks_table):
    before = pks_table.metrics.copy()
    inject_table_faults(pks_table, plan("nan", 0.2))
    assert np.array_equal(pks_table.metrics, before)


def test_drop_and_truncate_reduce_rows(pks_table):
    dropped, records = inject_table_faults(pks_table, plan("drop", 0.1))
    assert 0 < len(dropped) < len(pks_table)
    assert len(records) == len(pks_table) - len(dropped)
    truncated, _ = inject_table_faults(pks_table, plan("truncate", 0.25))
    assert len(truncated) == len(pks_table) - round(0.25 * len(pks_table))


def test_duplicate_adds_rows(pks_table):
    duplicated, records = inject_table_faults(pks_table, plan("duplicate", 0.1))
    assert len(duplicated) == len(pks_table) + len(records)
    assert len(records) > 0


def test_nan_mode_is_noop_without_metrics(sieve_table):
    corrupted, records = inject_table_faults(sieve_table, plan("nan", 0.2))
    assert records == []
    assert np.array_equal(corrupted.insn_count, sieve_table.insn_count)


@pytest.mark.parametrize("mode", ["drop", "duplicate", "nan", "negative"])
def test_validator_catches_every_table_fault(pks_table, mode):
    """No false negatives: every injected corruption surfaces as an issue.

    (Truncation is undetectable from a bare in-memory table — the CSV
    form carries the declared row count that makes it detectable; see
    test_validator_catches_every_csv_fault.)
    """
    corrupted, records = inject_table_faults(pks_table, plan(mode, 0.1))
    assert len(records) > 0
    report = validate_table(corrupted)
    kinds = set(report.counts_by_kind())
    expected = {
        "drop": "invocation-gap",
        "duplicate": "duplicate-invocation",
        "nan": "nonfinite-metric",
        "negative": "nonpositive-insn",
    }[mode]
    assert expected in kinds
    if mode in ("duplicate", "nan", "negative"):
        # Per-row faults map one-to-one onto per-row issues.
        assert report.counts_by_kind()[expected] >= len(records)


# ------------------------------------------------------------------ #
# CSV faults


@pytest.mark.parametrize("mode", sorted(
    m for m, surfaces in FAULT_MODES.items() if "csv" in surfaces
))
def test_csv_rate_zero_is_byte_identity(pks_table, tmp_path, mode):
    source = tmp_path / "clean.csv"
    target = tmp_path / "corrupt.csv"
    write_profile_csv(pks_table, source)
    records = inject_csv_faults(source, target, plan(mode, 0.0))
    assert records == []
    assert source.read_bytes() == target.read_bytes()


@pytest.mark.parametrize("mode", sorted(
    m for m, surfaces in FAULT_MODES.items() if "csv" in surfaces
))
def test_validator_catches_every_csv_fault(pks_table, tmp_path, mode):
    """Acceptance: validate on a fault-injected CSV reports every injected
    corruption — no false negatives at rate 0.1, seed-fixed."""
    source = tmp_path / "clean.csv"
    target = tmp_path / "corrupt.csv"
    write_profile_csv(pks_table, source)
    records = inject_csv_faults(source, target, plan(mode, 0.1, seed=1))
    assert len(records) > 0
    report, _ = validate_profile_csv(target)
    assert not report.clean
    kinds = report.counts_by_kind()
    if mode in ("drop", "truncate"):
        # Missing rows: declared-vs-actual count mismatch, plus id gaps
        # for non-tail drops.
        assert "row-count-mismatch" in kinds
    elif mode == "duplicate":
        assert kinds.get("duplicate-invocation", 0) + kinds.get(
            "row-count-mismatch", 0
        ) >= 1
        assert kinds.get("duplicate-invocation", 0) >= len(records)
    elif mode == "nan":
        assert kinds.get("nonfinite-metric", 0) >= len(records)
    elif mode == "negative":
        assert kinds.get("nonpositive-insn", 0) >= len(records)
    elif mode == "garble":
        assert kinds.get("malformed-row", 0) + kinds.get(
            "row-count-mismatch", 0
        ) >= 1


# ------------------------------------------------------------------ #
# Measurement faults


def test_measurement_rate_zero_is_identity(toy_measurement):
    for mode in ("cycle_noise", "clock_drift", "zero_cycles"):
        faulted, records = inject_measurement_faults(
            toy_measurement, plan(mode, 0.0)
        )
        assert records == []
        assert faulted.total_cycles == toy_measurement.total_cycles


def test_zero_cycles_zeroes_invocations(toy_measurement):
    faulted, records = inject_measurement_faults(
        toy_measurement, plan("zero_cycles", 0.1)
    )
    assert len(records) > 0
    zeroed = sum(
        int((m.cycles == 0).sum()) for m in faulted.per_kernel.values()
    )
    assert zeroed == len(records)
    assert faulted.total_cycles < toy_measurement.total_cycles


def test_clock_drift_inflates_cycles(toy_measurement):
    faulted, records = inject_measurement_faults(
        toy_measurement, plan("clock_drift", 0.2)
    )
    assert len(records) == len(toy_measurement.per_kernel)
    assert faulted.total_cycles > toy_measurement.total_cycles


def test_measurement_faults_are_deterministic(toy_measurement):
    p = plan("cycle_noise", 0.2, seed=9)
    a, _ = inject_measurement_faults(toy_measurement, p)
    b, _ = inject_measurement_faults(toy_measurement, p)
    assert a.total_cycles == b.total_cycles
