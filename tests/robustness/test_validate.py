"""Tests for profile-table validation and repair."""

import numpy as np
import pytest

from repro.profiling.csv_io import write_profile_csv
from repro.profiling.nsight import NsightComputeProfiler
from repro.profiling.table import ProfileTable
from repro.robustness.faults import FaultPlan, FaultSpec, inject_table_faults
from repro.robustness.validate import (
    repair_table,
    validate_profile_csv,
    validate_table,
)
from repro.utils.errors import ProfileError


@pytest.fixture(scope="module")
def pks_table(toy_run):
    table, _ = NsightComputeProfiler().profile(toy_run)
    return table


def small_table(**overrides):
    defaults = dict(
        workload="unit",
        kernel_names=("a", "b"),
        kernel_id=np.array([0, 0, 1, 1], dtype=np.int32),
        invocation_id=np.array([0, 1, 0, 1], dtype=np.int64),
        insn_count=np.array([100, 200, 300, 400], dtype=np.int64),
        cta_size=np.array([128, 128, 256, 256], dtype=np.int32),
        num_ctas=np.array([10, 10, 20, 20], dtype=np.int64),
    )
    defaults.update(overrides)
    return ProfileTable(**defaults)


def test_clean_table_validates_clean(pks_table):
    report = validate_table(pks_table)
    assert report.clean and report.ok
    assert report.rows_checked == len(pks_table)
    assert "OK" in report.summary()


def test_nonpositive_counters_flagged():
    table = small_table(
        insn_count=np.array([100, -5, 300, 0], dtype=np.int64),
        cta_size=np.array([128, 128, 0, 256], dtype=np.int32),
    )
    report = validate_table(table)
    kinds = report.counts_by_kind()
    assert kinds["nonpositive-insn"] == 2
    assert kinds["nonpositive-cta-size"] == 1
    assert not report.ok


def test_invocation_structure_flagged():
    table = small_table(
        invocation_id=np.array([0, 0, 3, 1], dtype=np.int64),
    )
    report = validate_table(table)
    kinds = report.counts_by_kind()
    assert kinds["duplicate-invocation"] == 1  # kernel a: 0, 0
    assert kinds["nonmonotonic-invocation"] == 1  # kernel b: 3 -> 1
    assert kinds["invocation-gap"] >= 1  # kernel b starts at 3


def test_declared_row_mismatch_is_warning():
    report = validate_table(small_table(), declared_rows=9)
    assert report.counts_by_kind() == {"row-count-mismatch": 1}
    assert report.ok and not report.clean  # missing data, not corruption


def test_empty_table_flagged():
    empty = small_table(
        kernel_id=np.array([], dtype=np.int32),
        invocation_id=np.array([], dtype=np.int64),
        insn_count=np.array([], dtype=np.int64),
        cta_size=np.array([], dtype=np.int32),
        num_ctas=np.array([], dtype=np.int64),
    )
    report = validate_table(empty)
    assert not report.ok
    assert "empty-table" in report.counts_by_kind()


# ------------------------------------------------------------------ #
# Repair


def test_repair_clean_table_is_noop(pks_table):
    result = repair_table(pks_table)
    assert not result.changed
    assert result.table is pks_table


def test_repair_drops_bad_rows_and_imputes_metrics():
    metrics = np.ones((4, 2))
    metrics[1, 0] = np.nan
    metrics[2, 1] = -3.0
    table = small_table(
        insn_count=np.array([100, 200, 300, -1], dtype=np.int64),
        metrics=metrics,
        metric_names=("m0", "m1"),
    )
    result = repair_table(table)
    kinds = {a.kind for a in result.actions}
    assert kinds == {"drop-row", "impute-metric", "clamp-metric"}
    assert len(result.table) == 3  # the insn=-1 row is gone
    assert np.isfinite(result.table.metrics).all()
    assert (result.table.metrics >= 0).all()
    assert validate_table(result.table).ok


def test_repair_drops_duplicates_keeping_first():
    table = small_table(
        invocation_id=np.array([0, 0, 0, 1], dtype=np.int64),
        insn_count=np.array([100, 999, 300, 400], dtype=np.int64),
    )
    result = repair_table(table)
    assert len(result.table) == 3
    # First occurrence of kernel a invocation 0 (insn=100) survives.
    assert 100 in result.table.insn_count
    assert 999 not in result.table.insn_count
    assert validate_table(result.table).ok


def test_repair_all_defective_raises():
    table = small_table(
        insn_count=np.array([-1, -2, -3, -4], dtype=np.int64),
    )
    with pytest.raises(ProfileError, match="every row is defective"):
        repair_table(table)


def test_repaired_fault_injected_table_validates(pks_table):
    plan = FaultPlan(
        specs=(
            FaultSpec("duplicate", 0.05),
            FaultSpec("nan", 0.05),
            FaultSpec("negative", 0.05),
        ),
        seed=2,
    )
    corrupted, records = inject_table_faults(pks_table, plan)
    assert len(records) > 0
    result = repair_table(corrupted)
    assert result.changed
    assert validate_table(result.table).ok


# ------------------------------------------------------------------ #
# Lenient CSV validation


def test_validate_csv_clean_round_trip(pks_table, tmp_path):
    path = tmp_path / "clean.csv"
    write_profile_csv(pks_table, path)
    report, table = validate_profile_csv(path)
    assert report.clean
    assert table is not None and len(table) == len(pks_table)


def test_validate_csv_salvages_around_malformed_rows(pks_table, tmp_path):
    path = tmp_path / "dirty.csv"
    write_profile_csv(pks_table, path)
    lines = path.read_text().splitlines()
    lines[5] = "garbage line"
    lines[7] = lines[7] + ",extra,fields"
    path.write_text("\n".join(lines) + "\n")
    report, table = validate_profile_csv(path)
    assert report.counts_by_kind()["malformed-row"] == 2
    assert table is not None
    assert len(table) == len(pks_table) - 2


def test_validate_csv_missing_file():
    report, table = validate_profile_csv("/nonexistent/profile.csv")
    assert table is None
    assert "unreadable-file" in report.counts_by_kind()


def test_validate_csv_empty_file(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    report, table = validate_profile_csv(path)
    assert table is None
    assert not report.ok
