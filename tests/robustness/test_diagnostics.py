"""Tests for the diagnostics channel."""

import pytest

from repro.robustness import diagnostics


def test_emit_records_and_str():
    with diagnostics.capture_diagnostics() as caught:
        record = diagnostics.emit("unit", "fallback taken", severity="info")
    assert caught == [record]
    assert record.severity == "info"
    assert "unit" in str(record) and "fallback taken" in str(record)


def test_emit_rejects_unknown_severity():
    with pytest.raises(ValueError, match="severity"):
        diagnostics.emit("unit", "boom", severity="catastrophic")


def test_capture_is_scoped():
    with diagnostics.capture_diagnostics() as outer:
        diagnostics.emit("unit", "one")
        with diagnostics.capture_diagnostics() as inner:
            diagnostics.emit("unit", "two")
        diagnostics.emit("unit", "three")
    assert [c.message for c in inner] == ["two"]
    assert [c.message for c in outer] == ["one", "two", "three"]


def test_records_are_retained_and_clearable():
    diagnostics.clear()
    diagnostics.emit("unit", "kept")
    assert any(r.message == "kept" for r in diagnostics.records())
    diagnostics.clear()
    assert diagnostics.records() == ()


def test_subscribe_and_unsubscribe():
    seen = []
    unsubscribe = diagnostics.subscribe(seen.append)
    diagnostics.emit("unit", "heard")
    unsubscribe()
    diagnostics.emit("unit", "unheard")
    assert [r.message for r in seen] == ["heard"]
