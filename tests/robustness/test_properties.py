"""Property-based tests for fault injection, validation and repair."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiling.csv_io import write_profile_csv
from repro.profiling.table import ProfileTable
from repro.robustness.faults import (
    FAULT_MODES,
    FaultPlan,
    FaultSpec,
    inject_csv_faults,
    inject_table_faults,
)
from repro.robustness.validate import repair_table, validate_table
from repro.utils.errors import ProfileError

_CSV_MODES = sorted(m for m, s in FAULT_MODES.items() if "csv" in s)
_TABLE_MODES = sorted(m for m, s in FAULT_MODES.items() if "table" in s)


def build_table(num_kernels: int, rows_per_kernel: int, with_metrics: bool):
    rng = np.random.default_rng(num_kernels * 1000 + rows_per_kernel)
    n = num_kernels * rows_per_kernel
    kernel_id = np.repeat(np.arange(num_kernels, dtype=np.int32), rows_per_kernel)
    invocation_id = np.tile(
        np.arange(rows_per_kernel, dtype=np.int64), num_kernels
    )
    return ProfileTable(
        workload="prop",
        kernel_names=tuple(f"k{i}" for i in range(num_kernels)),
        kernel_id=kernel_id,
        invocation_id=invocation_id,
        insn_count=rng.integers(1, 10**9, size=n).astype(np.int64),
        cta_size=rng.integers(32, 1024, size=n).astype(np.int32),
        num_ctas=rng.integers(1, 10**5, size=n).astype(np.int64),
        metrics=rng.random((n, 12)) if with_metrics else None,
    )


@settings(max_examples=20, deadline=None)
@given(
    mode=st.sampled_from(_CSV_MODES),
    seed=st.integers(min_value=0, max_value=10**6),
    num_kernels=st.integers(min_value=1, max_value=4),
    rows_per_kernel=st.integers(min_value=1, max_value=30),
    with_metrics=st.booleans(),
)
def test_any_mode_at_rate_zero_is_byte_identity(
    tmp_path_factory, mode, seed, num_kernels, rows_per_kernel, with_metrics
):
    """Satellite property: any fault mode at rate 0 leaves the CSV
    byte-identical."""
    table = build_table(num_kernels, rows_per_kernel, with_metrics)
    tmp = tmp_path_factory.mktemp("rate0")
    source, target = tmp / "in.csv", tmp / "out.csv"
    write_profile_csv(table, source)
    records = inject_csv_faults(
        source, target, FaultPlan((FaultSpec(mode, 0.0),), seed=seed)
    )
    assert records == []
    assert source.read_bytes() == target.read_bytes()


@settings(max_examples=25, deadline=None)
@given(
    modes=st.lists(
        st.sampled_from(_TABLE_MODES), min_size=1, max_size=4, unique=True
    ),
    rate=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10**6),
    num_kernels=st.integers(min_value=1, max_value=4),
    rows_per_kernel=st.integers(min_value=1, max_value=40),
    with_metrics=st.booleans(),
)
def test_repair_output_always_validates(
    modes, rate, seed, num_kernels, rows_per_kernel, with_metrics
):
    """Satellite property: repair() never emits a table violating its own
    validator, for any composition of fault modes."""
    table = build_table(num_kernels, rows_per_kernel, with_metrics)
    plan = FaultPlan(tuple(FaultSpec(m, rate) for m in modes), seed=seed)
    corrupted, _ = inject_table_faults(table, plan)
    try:
        result = repair_table(corrupted)
    except ProfileError:
        # Legal terminal outcome: every row was defective.
        return
    report = validate_table(result.table)
    assert report.ok, report.summary()


@settings(max_examples=15, deadline=None)
@given(
    rate=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_repair_is_idempotent(rate, seed):
    table = build_table(3, 25, True)
    plan = FaultPlan(
        (FaultSpec("duplicate", rate), FaultSpec("nan", rate),
         FaultSpec("negative", rate)),
        seed=seed,
    )
    corrupted, _ = inject_table_faults(table, plan)
    once = repair_table(corrupted)
    twice = repair_table(once.table)
    assert not twice.changed
    assert np.array_equal(once.table.insn_count, twice.table.insn_count)
