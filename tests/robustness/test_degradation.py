"""Graceful-degradation tests: dirty input degrades, never crashes."""

import dataclasses

import numpy as np
import pytest

from repro.baselines.pks import PksPipeline
from repro.core.config import SieveConfig
from repro.core.pipeline import SievePipeline
from repro.core.stratify import stratify_table
from repro.evaluation.context import build_context
from repro.profiling.nsight import NsightComputeProfiler
from repro.profiling.nvbit import NVBitProfiler
from repro.robustness import diagnostics
from repro.robustness.faults import FaultPlan, FaultSpec
from repro.utils.errors import PredictionError


def zeroed_measurement(measurement, kernel_name, invocation):
    """A copy of ``measurement`` with one invocation's cycles zeroed."""
    kernel = measurement.per_kernel[kernel_name]
    cycles = kernel.cycles.copy()
    cycles[invocation] = 0
    per_kernel = dict(measurement.per_kernel)
    per_kernel[kernel_name] = dataclasses.replace(kernel, cycles=cycles)
    return dataclasses.replace(measurement, per_kernel=per_kernel)


def all_zero_measurement(measurement):
    per_kernel = {
        name: dataclasses.replace(k, cycles=np.zeros_like(k.cycles))
        for name, k in measurement.per_kernel.items()
    }
    return dataclasses.replace(measurement, per_kernel=per_kernel)


def test_sieve_predict_imputes_zero_cycle_representative(
    toy_run, toy_measurement
):
    table, _ = NVBitProfiler().profile(toy_run)
    pipeline = SievePipeline()
    selection = pipeline.select(table)
    rep = selection.representatives[0]
    dirty = zeroed_measurement(
        toy_measurement, rep.kernel_name, rep.invocation_id
    )
    with diagnostics.capture_diagnostics() as caught:
        prediction = pipeline.predict(selection, dirty)
    assert np.isfinite(prediction.predicted_cycles)
    assert prediction.predicted_cycles > 0
    assert any("imputed kernel-mean IPC" in c.message for c in caught)
    # The imputation keeps the prediction close to the clean one.
    clean = pipeline.predict(selection, toy_measurement)
    assert prediction.predicted_cycles == pytest.approx(
        clean.predicted_cycles, rel=0.25
    )


def test_sieve_predict_all_unusable_raises_prediction_error(
    toy_run, toy_measurement
):
    table, _ = NVBitProfiler().profile(toy_run)
    pipeline = SievePipeline()
    selection = pipeline.select(table)
    with pytest.raises(PredictionError, match="no representative"):
        pipeline.predict(selection, all_zero_measurement(toy_measurement))


def test_pks_predict_imputes_zero_cycle_representative(
    toy_run, toy_measurement
):
    table, _ = NsightComputeProfiler().profile(toy_run)
    pipeline = PksPipeline()
    selection = pipeline.select(table, toy_measurement)
    rep = selection.representatives[0]
    dirty = zeroed_measurement(
        toy_measurement, rep.kernel_name, rep.invocation_id
    )
    with diagnostics.capture_diagnostics() as caught:
        prediction = pipeline.predict(selection, dirty)
    assert np.isfinite(prediction.predicted_cycles)
    assert prediction.predicted_cycles > 0
    assert any("imputed kernel-mean cycles" in c.message for c in caught)


def test_pks_predict_all_unusable_raises_prediction_error(
    toy_run, toy_measurement
):
    table, _ = NsightComputeProfiler().profile(toy_run)
    pipeline = PksPipeline()
    selection = pipeline.select(table, toy_measurement)
    with pytest.raises(PredictionError, match="no representative"):
        pipeline.predict(selection, all_zero_measurement(toy_measurement))


def test_pks_select_survives_nan_metrics(toy_run, toy_measurement):
    table, _ = NsightComputeProfiler().profile(toy_run)
    metrics = table.metrics.copy()
    rng = np.random.default_rng(0)
    rows = rng.integers(len(table), size=50)
    cols = rng.integers(metrics.shape[1], size=50)
    metrics[rows, cols] = np.nan
    dirty = dataclasses.replace(table, metrics=metrics)
    with diagnostics.capture_diagnostics() as caught:
        selection = PksPipeline().select(dirty, toy_measurement)
    assert selection.num_representatives >= 1
    assert any("non-finite metric cells" in c.message for c in caught)


def test_stratify_clamps_nonpositive_insn(toy_run):
    table, _ = NVBitProfiler().profile(toy_run)
    insn = table.insn_count.copy()
    insn[:5] = -1
    dirty = dataclasses.replace(table, insn_count=insn)
    with diagnostics.capture_diagnostics() as caught:
        strata = stratify_table(dirty, SieveConfig())
    assert len(strata) >= 1
    assert all(s.insn_total > 0 for s in strata)
    assert any("clamped" in c.message for c in caught)


@pytest.mark.parametrize("rate", [0.1, 0.2])
def test_full_pipelines_survive_composite_faults(rate):
    """Acceptance: at fault rates up to 0.2 neither pipeline crashes and
    every degraded path returns a finite prediction plus diagnostics."""
    plan = FaultPlan(
        specs=tuple(
            FaultSpec(mode, rate)
            for mode in ("drop", "duplicate", "nan", "negative",
                         "zero_cycles", "cycle_noise", "clock_drift")
        ),
        seed=5,
    )
    from repro.evaluation.runner import evaluate_pks, evaluate_sieve

    context = build_context("cactus/gru", max_invocations=1500, fault_plan=plan)
    with diagnostics.capture_diagnostics() as caught:
        sieve = evaluate_sieve(context)
        pks = evaluate_pks(context)
    for result in (sieve, pks):
        assert np.isfinite(result.predicted_cycles)
        assert result.predicted_cycles > 0
        assert np.isfinite(result.error)
    assert len(caught) > 0


def test_fault_free_plan_reproduces_clean_results():
    """Acceptance: a rate-0 plan reproduces the clean errors exactly."""
    from repro.evaluation.runner import evaluate_pks, evaluate_sieve

    clean = build_context("cactus/gru", max_invocations=1500)
    plan = FaultPlan(specs=(FaultSpec("drop", 0.0), FaultSpec("nan", 0.0)))
    faulted = build_context("cactus/gru", max_invocations=1500, fault_plan=plan)
    assert evaluate_sieve(faulted).error == evaluate_sieve(clean).error
    assert evaluate_pks(faulted).error == evaluate_pks(clean).error
