"""Lineage walking: selectors, per-version log, bisect hints."""

import pytest

from repro.perfstore.lineage import (
    bisect_hint,
    extract_metric,
    parse_selector,
    perf_log,
    render_bisect_hint,
    render_perf_log,
    version_order,
)
from repro.perfstore.store import PerfStore
from repro.utils.errors import PerfStoreError

from .conftest import make_manifest

JITTER = (0.97, 1.00, 1.03)


def seeded_store(tmp_path):
    """v-old and v-mid run at 1x, v-new at 2x; three runs each."""
    store = PerfStore(tmp_path)
    for version, factor in (("v-old", 1.0), ("v-mid", 1.0), ("v-new", 2.0)):
        for j in JITTER:
            store.ingest(
                make_manifest(
                    total=2.0 * factor * j,
                    stages=(("stratify", 1.2 * factor * j),),
                    aggregates={"sieve_avg": 0.01 * factor},
                    workloads=[{"workload": "w", "sieve_error": 0.01 * factor}],
                ),
                version=version,
            )
    return store


def test_parse_selector_accepts_the_four_kinds():
    assert parse_selector("total") == ("total", "")
    assert parse_selector("stage:stratify") == ("stage", "stratify")
    assert parse_selector("agg:sieve_avg") == ("agg", "sieve_avg")
    assert parse_selector("workload:w.sieve_error") == ("workload", "w.sieve_error")
    with pytest.raises(PerfStoreError):
        parse_selector("stage:")
    with pytest.raises(PerfStoreError):
        parse_selector("bogus")


def test_extract_metric_per_selector():
    manifest = make_manifest(
        total=2.0,
        stages=(("stratify", 1.2),),
        aggregates={"sieve_avg": 0.01},
        workloads=[{"workload": "w", "sieve_error": 0.03}],
    )
    assert extract_metric(manifest, "total") == 2.0
    assert extract_metric(manifest, "stage:stratify") == 1.2
    assert extract_metric(manifest, "stage:nope") is None
    assert extract_metric(manifest, "agg:sieve_avg") == 0.01
    assert extract_metric(manifest, "agg:nope") is None
    assert extract_metric(manifest, "workload:w.sieve_error") == 0.03
    assert extract_metric(manifest, "workload:other.sieve_error") is None
    with pytest.raises(PerfStoreError):
        extract_metric(manifest, "workload:w")  # missing .key


def test_version_order_falls_back_to_ingest_order(tmp_path):
    # These labels are not commits of this repo, so git ranking knows
    # nothing about them and first-ingest order must survive.
    store = seeded_store(tmp_path)
    assert version_order(store) == ["v-old", "v-mid", "v-new"]
    assert version_order(store, "fig3") == ["v-old", "v-mid", "v-new"]
    assert version_order(store, "fig9") == []


def test_perf_log_reports_distributions_and_gaps(tmp_path):
    store = seeded_store(tmp_path)
    store.ingest(make_manifest(total=1.0, stages=()), version="v-gap")
    entries = perf_log(store, "fig3", selector="stage:stratify")
    assert [e["version"] for e in entries] == ["v-old", "v-mid", "v-new", "v-gap"]
    assert [e["n"] for e in entries] == [3, 3, 3, 0]
    assert entries[-1]["summary"] is None  # gap is visible, not dropped
    assert entries[0]["summary"]["median"] == pytest.approx(1.2)
    assert entries[2]["summary"]["median"] == pytest.approx(2.4)

    limited = perf_log(store, "fig3", limit=2)
    assert [e["version"] for e in limited] == ["v-new", "v-gap"]

    text = render_perf_log(entries)
    assert "median" in text and "(no data)" in text
    assert render_perf_log([]) == "(no stored versions)"


def test_bisect_hint_names_the_first_regressed_transition(tmp_path):
    store = seeded_store(tmp_path)
    hint = bisect_hint(store, "fig3")
    verdicts = [t["verdict"] for t in hint["transitions"]]
    assert verdicts == ["indistinguishable", "regressed"]
    first = hint["first_regression"]
    assert (first["from"], first["to"]) == ("v-mid", "v-new")
    text = render_bisect_hint(hint)
    assert "v-mid" in text and "(bad)" in text and "git bisect" in text


def test_bisect_hint_clean_lineage_and_selector_gaps(tmp_path):
    store = PerfStore(tmp_path)
    for version in ("a1", "b2"):
        for j in JITTER:
            store.ingest(make_manifest(total=1.0 * j), version=version)
    hint = bisect_hint(store, "fig3")
    assert hint["first_regression"] is None
    assert "no regressed transition" in render_bisect_hint(hint)

    gappy = bisect_hint(store, "fig3", selector="stage:never-ran")
    assert all(t["verdict"] == "no-data" for t in gappy["transitions"])


def test_bisect_hint_needs_two_versions(tmp_path):
    store = PerfStore(tmp_path)
    store.ingest(make_manifest(), version="only")
    with pytest.raises(PerfStoreError, match="at least two"):
        bisect_hint(store, "fig3")
