"""Distribution summaries, the exact rank test and the degradation gate.

The acceptance-bar property lives here: an injected 2x slowdown over 3
runs must flag, three re-runs of the same distribution must not, and the
false-positive rate over repeated same-distribution draws stays bounded.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.perfstore.stats import (
    DistributionSummary,
    bootstrap_ci,
    degradation_test,
    mann_whitney_p,
    summarize,
)
#: The self-test's jitter shapes: +-3% scheduler noise around a median.
BASE_JITTER = (0.97, 1.00, 1.03)
RERUN_JITTER = (0.98, 1.01, 1.02)

finite_values = st.lists(
    st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
    min_size=1,
    max_size=10,
)


def test_exact_test_floor_is_one_twentieth_at_3v3():
    # Three cleanly separated runs per side: the smallest one-sided p the
    # exact test can produce is 1 / C(6, 3) = 0.05 — exactly alpha.
    p = mann_whitney_p([2.0, 2.1, 2.2], [1.0, 1.1, 1.2])
    assert p == pytest.approx(1.0 / 20.0)


def test_two_runs_per_side_cannot_reach_significance():
    # 1 / C(4, 2) ~ 0.167 > 0.05: two clean runs are not enough evidence.
    p = mann_whitney_p([2.0, 2.1], [1.0, 1.1])
    assert p > 0.05


def test_all_tied_samples_give_p_one():
    assert mann_whitney_p([1.0, 1.0], [1.0, 1.0]) == pytest.approx(1.0)


def test_normal_approximation_kicks_in_for_large_pools():
    base = [1.0 + 0.01 * i for i in range(12)]
    cur = [2.0 + 0.01 * i for i in range(12)]
    p = mann_whitney_p(cur, base)  # pool of 24 > EXACT_POOL_LIMIT
    assert p < 1e-3
    assert mann_whitney_p(base, cur) > 0.99


def test_summary_round_trips_and_brackets_the_sample():
    summary = summarize([1.0, 1.2, 0.9, 1.1])
    assert summary.n == 4
    assert summary.min <= summary.ci_low <= summary.ci_high <= summary.max
    assert DistributionSummary.from_dict(summary.to_dict()) == summary


def test_single_value_summary_is_degenerate():
    summary = summarize([2.5])
    assert summary.mad == 0.0
    assert summary.ci_low == summary.ci_high == 2.5


def test_bootstrap_is_deterministic_for_identical_data():
    values = [1.0, 1.05, 0.98, 1.02, 1.01]
    assert bootstrap_ci(values) == bootstrap_ci(list(values))


@settings(deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(values=finite_values, seed=st.integers(0, 2**16))
def test_summarize_is_order_invariant(values, seed):
    shuffled = list(values)
    random.Random(seed).shuffle(shuffled)
    assert summarize(shuffled) == summarize(values)


@settings(deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(values=finite_values)
def test_identical_samples_never_regress(values):
    verdict = degradation_test(values, list(values))
    assert verdict.verdict == "indistinguishable"


def test_injected_2x_slowdown_over_3_runs_is_flagged():
    base = [f * 1.0 for f in BASE_JITTER]
    slowed = [f * 2.0 for f in RERUN_JITTER]
    verdict = degradation_test(base, slowed)
    assert verdict.regressed
    assert verdict.mode == "rank"
    assert verdict.p_slower == pytest.approx(0.05)
    assert "p=" in verdict.detail


def test_same_distribution_reruns_are_not_flagged():
    base = [f * 1.0 for f in BASE_JITTER]
    rerun = [f * 1.0 for f in RERUN_JITTER]
    verdict = degradation_test(base, rerun)
    assert verdict.verdict == "indistinguishable"
    assert verdict.mode == "rank"


def test_significant_but_tiny_shift_is_practically_insignificant():
    # p = 0.05 (clean separation) but the median only moved 3% — below
    # the 10% practical floor, so the gate must not fire.
    base = [1.000, 1.001, 1.002]
    cur = [1.030, 1.031, 1.032]
    verdict = degradation_test(base, cur)
    assert verdict.verdict == "indistinguishable"
    assert "practical floor" in verdict.detail


def test_improvement_is_the_mirror_image():
    base = [f * 2.0 for f in BASE_JITTER]
    fast = [f * 1.0 for f in RERUN_JITTER]
    verdict = degradation_test(base, fast)
    assert verdict.verdict == "improved"


def test_single_sample_fallback_uses_ratio_heuristic():
    regressed = degradation_test([1.0], [1.3])
    assert regressed.regressed
    assert regressed.mode == "single-sample"
    assert regressed.p_slower is None
    assert degradation_test([1.0], [1.2]).verdict == "indistinguishable"
    assert degradation_test([1.3], [1.0]).verdict == "improved"


def test_empty_samples_rejected():
    with pytest.raises(ValueError):
        summarize([])
    with pytest.raises(ValueError):
        mann_whitney_p([], [1.0])


def test_false_positive_rate_is_bounded():
    """Repeated same-distribution 3v3 draws almost never fire the gate.

    The practical floor (10% median movement) stacks on top of alpha, so
    with 5% multiplicative noise the observed FP rate sits well under
    the 5% that significance alone would allow.
    """
    rng = np.random.default_rng(20230805)
    trials, false_positives = 200, 0
    for _ in range(trials):
        base = 1.0 + rng.uniform(-0.05, 0.05, size=3)
        cur = 1.0 + rng.uniform(-0.05, 0.05, size=3)
        if degradation_test(base, cur).regressed:
            false_positives += 1
    assert false_positives / trials <= 0.05


def test_power_is_total_at_2x_separation():
    rng = np.random.default_rng(20230806)
    for _ in range(50):
        base = 1.0 + rng.uniform(-0.05, 0.05, size=3)
        cur = 2.0 * (1.0 + rng.uniform(-0.05, 0.05, size=3))
        assert degradation_test(base, cur).regressed
